#!/usr/bin/env bash
# check_thread_spawn.sh — enforce the one-worker-lifecycle-layer rule
# (DESIGN.md §13): every worker thread in the tree is constructed by
# sec::exec::WorkerPool, never by a raw std::thread.
#
# Fails (exit 1) when `std::thread(` appears anywhere under include/, src/,
# tests/, or bench/ outside the allowlist:
#   * include/exec/ and src/exec_*        — the WorkerPool implementation
#     itself (the one place allowed to spawn).
#   * src/adaptive.cpp                    — the AdaptiveController's single
#     long-lived controller thread. It predates WorkerPool, is not a
#     worker (no barrier, no placement, no counters), and migrating it
#     would couple the adaptive layer to exec for no behavioural gain.
#
# Run from the repository root:  scripts/check_thread_spawn.sh
set -u

allow='^(include/exec/|src/exec_|src/adaptive\.cpp:)'

hits=$(grep -rn 'std::thread(' include src tests bench 2>/dev/null |
       grep -Ev "$allow")

if [ -n "$hits" ]; then
    echo "check_thread_spawn: raw std::thread( outside sec::exec:" >&2
    echo "$hits" >&2
    echo "" >&2
    echo "Spawn workers through sec::exec::WorkerPool (include/exec/" >&2
    echo "worker_pool.hpp) so tid registration, placement, QSBR hooks," >&2
    echo "and perf counters stay in one layer. If a new non-worker" >&2
    echo "thread genuinely needs a raw std::thread, extend the" >&2
    echo "allowlist here and document why in DESIGN.md §13." >&2
    exit 1
fi

echo "check_thread_spawn: ok (std::thread( only in sec::exec + allowlist)"
