// net_iouring.cpp — the batched-submission io_uring event backend
// (net/event_loop.hpp), built only under -DSEC_IOURING=ON.
//
// Implemented over the raw io_uring_setup/io_uring_enter syscalls and the
// kernel uapi header — no liburing dependency. The backend keeps one
// oneshot IORING_OP_POLL_ADD in flight per registered descriptor; wait()
// re-arms every descriptor whose poll completed (or whose interest changed)
// by queueing the POLL_ADD SQEs locally and submitting them all in a single
// io_uring_enter that also reaps the next completion batch. That single
// syscall per batch — N arms + M completions amortized over one kernel
// crossing — is the io_uring twin of the epoll readiness batch, and both
// map onto the SEC aggregator batch the server drains them into.
#if defined(SEC_IOURING)

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_map>

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "net/event_loop.hpp"

namespace sec::net {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                      min_complete, flags, nullptr, 0));
}

// user_data sentinels for SQEs that are ring plumbing, not fd polls.
constexpr std::uint64_t kTimeoutToken = ~std::uint64_t{0};
constexpr std::uint64_t kCancelToken = ~std::uint64_t{0} - 1;

class IoUringBackend final : public EventBackend {
public:
    static std::unique_ptr<EventBackend> create(std::string* err) {
        io_uring_params params{};
        const int ring_fd = sys_io_uring_setup(kEntries, &params);
        if (ring_fd < 0) {
            if (err != nullptr) {
                *err = std::string("io_uring_setup: ") + std::strerror(errno);
            }
            return nullptr;
        }
        auto backend =
            std::unique_ptr<IoUringBackend>(new IoUringBackend(ring_fd));
        if (!backend->map_rings(params, err)) return nullptr;
        return backend;
    }

    ~IoUringBackend() override {
        if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
            ::munmap(sq_ring_, sq_ring_bytes_);
        }
        if (cq_ring_ != MAP_FAILED && cq_ring_ != nullptr) {
            ::munmap(cq_ring_, cq_ring_bytes_);
        }
        if (sqes_ != MAP_FAILED && sqes_ != nullptr) {
            ::munmap(sqes_, sqe_bytes_);
        }
        ::close(ring_fd_);
    }

    bool add(int fd, bool want_write, std::string* err) override {
        (void)err;
        interest_[fd] = Interest{want_write, /*armed=*/false};
        return true;  // the poll arms on the next wait()'s batched submit
    }

    bool modify(int fd, bool want_write) override {
        const auto it = interest_.find(fd);
        if (it == interest_.end()) return false;
        if (it->second.want_write == want_write) return true;
        it->second.want_write = want_write;
        if (it->second.armed) {
            // Cancel the in-flight poll; its -ECANCELED completion unarms
            // the fd and the next wait() re-arms it with the new mask.
            queue_cancel(fd);
        }
        return true;
    }

    void remove(int fd) override {
        const auto it = interest_.find(fd);
        if (it == interest_.end()) return;
        if (it->second.armed) queue_cancel(fd);
        interest_.erase(it);
        // A late completion for this fd no longer matches interest_ and is
        // dropped in wait().
    }

    int wait(IoEvent* out, std::size_t cap, int timeout_ms) override {
        if (cap == 0) return 0;
        // Arm every registered-but-unarmed descriptor; one SQE each, all
        // submitted by the single enter below.
        for (auto& [fd, in] : interest_) {
            if (!in.armed) {
                if (!queue_poll(fd, in.want_write)) return -1;
                in.armed = true;
            }
        }
        // A oneshot timeout SQE bounds the enter; its own completion wakes
        // us with zero events (the epoll_wait timeout contract). At most one
        // is ever in flight: a wait() that returned early on poll
        // completions leaves the old timeout armed and reuses it rather
        // than stacking a fresh one per call — stale timeouts would
        // otherwise accumulate and their completions could overflow the CQ.
        // The previous arm is at most timeout_ms old, so the stop-flag
        // check bound still holds.
        if (!timeout_armed_) {
            timeout_ts_.tv_sec = timeout_ms / 1000;
            timeout_ts_.tv_nsec =
                static_cast<long long>(timeout_ms % 1000) * 1'000'000;
            io_uring_sqe* sqe = next_sqe();
            if (sqe == nullptr) return -1;
            sqe->opcode = IORING_OP_TIMEOUT;
            sqe->fd = -1;
            sqe->addr = reinterpret_cast<std::uint64_t>(&timeout_ts_);
            sqe->len = 1;
            sqe->user_data = kTimeoutToken;
            timeout_armed_ = true;
        }

        int rc;
        do {
            rc = sys_io_uring_enter(ring_fd_, flush_sq(), 1,
                                    IORING_ENTER_GETEVENTS);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) return -1;
        return reap(out, cap);
    }

    std::string_view name() const noexcept override { return "iouring"; }

private:
    static constexpr unsigned kEntries = 256;

    struct Interest {
        bool want_write = false;
        bool armed = false;
    };

    explicit IoUringBackend(int ring_fd) : ring_fd_(ring_fd) {}

    bool map_rings(const io_uring_params& p, std::string* err) {
        auto fail = [&](const char* what) {
            if (err != nullptr) {
                *err = std::string(what) + ": " + std::strerror(errno);
            }
            return false;
        };
        sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
        cq_ring_bytes_ =
            p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
        sqe_bytes_ = p.sq_entries * sizeof(io_uring_sqe);

        sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_SQ_RING);
        if (sq_ring_ == MAP_FAILED) return fail("mmap(sq_ring)");
        cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_,
                          IORING_OFF_CQ_RING);
        if (cq_ring_ == MAP_FAILED) return fail("mmap(cq_ring)");
        sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
        if (sqes_ == MAP_FAILED) return fail("mmap(sqes)");

        auto* sq = static_cast<std::uint8_t*>(sq_ring_);
        sq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
            sq + p.sq_off.head);
        sq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
            sq + p.sq_off.tail);
        sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq + p.sq_off.ring_mask);
        sq_array_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.array);
        auto* cq = static_cast<std::uint8_t*>(cq_ring_);
        cq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
            cq + p.cq_off.head);
        cq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
            cq + p.cq_off.tail);
        cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq + p.cq_off.ring_mask);
        cq_overflow_ = reinterpret_cast<std::atomic<std::uint32_t>*>(
            cq + p.cq_off.overflow);
        cqes_ptr_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
        return true;
    }

    // Next free SQE slot, nullptr when the pending batch already fills the
    // ring (kEntries far exceeds any realistic connection count here).
    io_uring_sqe* next_sqe() {
        const std::uint32_t head =
            sq_head_->load(std::memory_order_acquire);
        if (pending_tail_ - head >= kEntries) return nullptr;
        const std::uint32_t idx = pending_tail_ & sq_mask_;
        io_uring_sqe* sqe =
            &static_cast<io_uring_sqe*>(sqes_)[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sq_array_[idx] = idx;
        ++pending_tail_;
        return sqe;
    }

    bool queue_poll(int fd, bool want_write) {
        io_uring_sqe* sqe = next_sqe();
        if (sqe == nullptr) return false;
        sqe->opcode = IORING_OP_POLL_ADD;
        sqe->fd = fd;
        sqe->poll_events = static_cast<std::uint16_t>(
            POLLIN | (want_write ? POLLOUT : 0));
        sqe->user_data = static_cast<std::uint64_t>(fd);
        return true;
    }

    void queue_cancel(int fd) {
        io_uring_sqe* sqe = next_sqe();
        if (sqe == nullptr) return;  // ring full: the stale poll resolves on
                                     // its own completion instead
        sqe->opcode = IORING_OP_POLL_REMOVE;
        sqe->addr = static_cast<std::uint64_t>(fd);
        sqe->user_data = kCancelToken;
    }

    // Publish pending SQEs to the kernel; returns the to_submit count.
    unsigned flush_sq() {
        const std::uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
        const unsigned n = pending_tail_ - tail;
        if (n > 0) sq_tail_->store(pending_tail_, std::memory_order_release);
        return n;
    }

    int reap(IoEvent* out, std::size_t cap) {
        // A dropped completion is unrecoverable for a oneshot-poll design:
        // the fd whose POLL_ADD completion was lost stays unarmed forever
        // and its connection stalls. Fail loudly instead (the server loop
        // exits on a negative wait()).
        if (cq_overflow_ != nullptr &&
            cq_overflow_->load(std::memory_order_relaxed) != 0) {
            return -1;
        }
        int n = 0;
        std::uint32_t head = cq_head_->load(std::memory_order_relaxed);
        const std::uint32_t tail = cq_tail_->load(std::memory_order_acquire);
        while (head != tail && static_cast<std::size_t>(n) < cap) {
            const io_uring_cqe& cqe = cqes_ptr_[head & cq_mask_];
            ++head;
            if (cqe.user_data == kTimeoutToken) {
                timeout_armed_ = false;  // fired; re-arm on the next wait()
                continue;
            }
            if (cqe.user_data == kCancelToken) {
                continue;  // ring plumbing, not an fd event
            }
            const int fd = static_cast<int>(cqe.user_data);
            const auto it = interest_.find(fd);
            if (it == interest_.end()) continue;  // removed; stale poll
            it->second.armed = false;  // oneshot fired; re-arm next wait
            if (cqe.res == -ECANCELED) continue;  // modify()'s cancel
            IoEvent& ev = out[n++];
            ev.fd = fd;
            if (cqe.res < 0) {
                ev.error = true;
            } else {
                ev.readable = (cqe.res & POLLIN) != 0;
                ev.writable = (cqe.res & POLLOUT) != 0;
                ev.error = (cqe.res & (POLLERR | POLLHUP)) != 0;
            }
        }
        cq_head_->store(head, std::memory_order_release);
        return n;
    }

    int ring_fd_;
    void* sq_ring_ = nullptr;
    void* cq_ring_ = nullptr;
    void* sqes_ = nullptr;
    std::size_t sq_ring_bytes_ = 0, cq_ring_bytes_ = 0, sqe_bytes_ = 0;
    std::atomic<std::uint32_t>* sq_head_ = nullptr;
    std::atomic<std::uint32_t>* sq_tail_ = nullptr;
    std::uint32_t sq_mask_ = 0;
    std::uint32_t* sq_array_ = nullptr;
    std::atomic<std::uint32_t>* cq_head_ = nullptr;
    std::atomic<std::uint32_t>* cq_tail_ = nullptr;
    std::uint32_t cq_mask_ = 0;
    std::atomic<std::uint32_t>* cq_overflow_ = nullptr;
    io_uring_cqe* cqes_ptr_ = nullptr;
    // Local (unpublished) SQ tail: SQEs queued since the last flush_sq().
    std::uint32_t pending_tail_ = 0;
    // True while a oneshot IORING_OP_TIMEOUT is in flight; cleared when its
    // completion is reaped. Keeps exactly one timeout armed at a time.
    bool timeout_armed_ = false;
    __kernel_timespec timeout_ts_{};
    std::unordered_map<int, Interest> interest_;
};

}  // namespace

namespace detail {

std::unique_ptr<EventBackend> make_iouring_backend(std::string* err) {
    return IoUringBackend::create(err);
}

}  // namespace detail
}  // namespace sec::net

#endif  // SEC_IOURING
