// serve.cpp — the open-loop service harness (workload/service.hpp):
// arrival-schedule generation, the producer/consumer lane coordinator, and
// the sustainable-load knee finder. Thread plumbing mirrors the other
// any_runner coordinators; the measured lanes themselves live behind one
// virtual call each (phase_serve_produce / phase_serve_consume in
// workload/runner.hpp), so push/pop inline against the concrete stack type.
#include "workload/service.hpp"

#include <barrier>
#include <cmath>
#include <vector>

#include "core/common.hpp"
#include "exec/worker_pool.hpp"
#include "workload/runner.hpp"

namespace sec::bench {
namespace {

// Uniform double in (0, 1] — never 0, so -log(u) is finite.
double uniform01(Xoshiro256& rng) {
    return (static_cast<double>(rng.next() >> 11) + 1.0) * 0x1.0p-53;
}

// Exponential inter-arrival draw for a Poisson process of `rate_per_ns`.
double exp_gap_ns(Xoshiro256& rng, double rate_per_ns) {
    return -std::log(uniform01(rng)) / rate_per_ns;
}

}  // namespace

std::optional<ArrivalKind> parse_arrival(std::string_view name) {
    if (name == "poisson") return ArrivalKind::kPoisson;
    if (name == "burst") return ArrivalKind::kBurst;
    return std::nullopt;
}

std::string_view arrival_name(ArrivalKind kind) noexcept {
    return kind == ArrivalKind::kPoisson ? "poisson" : "burst";
}

std::vector<std::uint64_t> make_arrival_schedule(const ServiceConfig& cfg,
                                                 double lane_ops_s,
                                                 std::uint64_t seed) {
    std::vector<std::uint64_t> out;
    if (lane_ops_s <= 0) return out;
    const double horizon_ns =
        std::chrono::duration<double, std::nano>(cfg.duration).count();
    const double rate_per_ns = lane_ops_s * 1e-9;
    Xoshiro256 rng(seed);

    if (cfg.arrival == ArrivalKind::kPoisson) {
        out.reserve(static_cast<std::size_t>(rate_per_ns * horizon_ns * 1.2) +
                    16);
        for (double t = exp_gap_ns(rng, rate_per_ns); t < horizon_ns;
             t += exp_gap_ns(rng, rate_per_ns)) {
            out.push_back(static_cast<std::uint64_t>(t));
        }
        return out;
    }

    // Bursty: a Poisson process at rate/duty, gated to the first
    // duty-fraction of every period — same mean rate, compressed arrivals.
    const double period_ns = std::chrono::duration<double, std::nano>(
                                 cfg.burst_period)
                                 .count();
    const double duty =
        std::min(std::max(cfg.burst_duty, 1e-3), 1.0);  // keep rate finite
    const double on_ns = period_ns * duty;
    const double burst_rate = rate_per_ns / duty;
    out.reserve(static_cast<std::size_t>(rate_per_ns * horizon_ns * 1.2) +
                16);
    for (double p0 = 0; p0 < horizon_ns; p0 += period_ns) {
        for (double t = p0 + exp_gap_ns(rng, burst_rate);
             t < p0 + on_ns && t < horizon_ns;
             t += exp_gap_ns(rng, burst_rate)) {
            out.push_back(static_cast<std::uint64_t>(t));
        }
    }
    return out;
}

ServiceResult run_service_any(const AnyStackFactory& make,
                              const ServiceConfig& cfg) {
    using Clock = std::chrono::steady_clock;
    ServiceResult res;
    if (cfg.producers == 0 || cfg.consumers == 0 || cfg.load_kops <= 0) {
        return res;
    }
    AnyStack stack = make();

    // Disjoint deterministic schedules per lane (salt 3: distinct from the
    // prefill/measured/phased salts in the closed-loop runners).
    const double lane_ops_s = cfg.load_kops * 1000.0 / cfg.producers;
    std::vector<std::vector<std::uint64_t>> lanes(cfg.producers);
    for (unsigned p = 0; p < cfg.producers; ++p) {
        lanes[p] =
            make_arrival_schedule(cfg, lane_ops_s, phase_seed(cfg.seed, p, 0, 3));
        res.produced += lanes[p].size();
    }
    const double duration_s =
        std::chrono::duration<double>(cfg.duration).count();
    res.offered_kops = duration_s > 0 ? static_cast<double>(res.produced) /
                                            duration_s / 1000.0
                                      : 0.0;

    std::atomic<bool> stop{false};
    std::vector<CacheAligned<LatencyHistogram>> sojourns(cfg.consumers);
    std::vector<CacheAligned<LatencyHistogram>> services(cfg.consumers);
    std::vector<CacheAligned<std::uint64_t>> completed(cfg.consumers);
    std::vector<CacheAligned<Clock::time_point>> ends(cfg.consumers);
    // All lanes + the coordinator rendezvous twice: once so every thread is
    // running before the epoch is taken (thread-spawn cost must not charge
    // the first requests), once so the coordinator's epoch write is visible
    // before any lane reads it.
    std::barrier sync(
        static_cast<std::ptrdiff_t>(cfg.producers + cfg.consumers) + 1);
    Clock::time_point epoch;

    // Two pools sharing the external barrier above (the pools' own
    // barriers cover only their own workers, and this rendezvous spans
    // both lanes plus the coordinator). Under a pin policy the consumer
    // pool plans from slot `producers` of the cpu order, so the lanes
    // occupy disjoint cpus until the machine is full.
    exec::PoolOptions popts;
    popts.pin = cfg.pin;
    popts.coordinator_in_barrier = false;
    exec::WorkerPool producer_pool(cfg.producers, popts);
    exec::PoolOptions copts = popts;
    copts.plan_offset = cfg.producers;
    exec::WorkerPool consumer_pool(cfg.consumers, copts);

    producer_pool.start([&](exec::WorkerContext& wc) {
        const unsigned p = wc.index;
        sync.arrive_and_wait();
        sync.arrive_and_wait();
        ServeProduceArgs args;
        args.schedule = lanes[p].data();
        args.count = lanes[p].size();
        args.epoch = epoch;
        stack.serve_produce(args);
    });
    consumer_pool.start([&](exec::WorkerContext& wc) {
        const unsigned c = wc.index;
        sync.arrive_and_wait();
        sync.arrive_and_wait();
        ServeConsumeArgs args;
        args.epoch = epoch;
        if (c == 0) {
            args.stall_after_op = cfg.stall_after_op;
            args.stall_ns = cfg.stall_ns;
        }
        *completed[c] =
            stack.serve_consume(stop, args, *sojourns[c], *services[c]);
        *ends[c] = Clock::now();
    });

    sync.arrive_and_wait();
    epoch = Clock::now();
    sync.arrive_and_wait();
    // Producers exit when their schedules are exhausted; only then may the
    // consumers treat an empty buffer as drained.
    producer_pool.join();
    stop.store(true, std::memory_order_relaxed);
    consumer_pool.join();

    Clock::time_point last = epoch;
    for (unsigned c = 0; c < cfg.consumers; ++c) {
        res.completed += *completed[c];
        res.sojourn.merge_from(*sojourns[c]);
        res.service.merge_from(*services[c]);
        if (*ends[c] > last) last = *ends[c];
    }
    res.window_s = std::chrono::duration<double>(last - epoch).count();
    res.achieved_kops = res.window_s > 0
                            ? static_cast<double>(res.completed) /
                                  res.window_s / 1000.0
                            : 0.0;
    return res;
}

KneeResult find_service_knee(const AnyStackFactory& make, ServiceConfig cfg,
                             const KneeConfig& knee,
                             const KneeProbeHook& on_probe) {
    KneeResult result;
    if (knee.start_kops <= 0) return result;

    auto probe = [&](double kops) {
        cfg.load_kops = kops;
        const ServiceResult r = run_service_any(make, cfg);
        const double p99 =
            static_cast<double>(r.sojourn.quantile_ns(0.99));
        // A lane that produced nothing (or a buffer that failed to drain)
        // is not a sustainable operating point, whatever its p99 says.
        const bool ok = r.produced > 0 && r.completed == r.produced &&
                        p99 <= static_cast<double>(knee.p99_limit_ns);
        if (on_probe) {
            KneeProbe p;
            p.index = result.probes;
            p.offered_kops = kops;
            p.achieved_kops = r.achieved_kops;
            p.p99_ns = p99;
            p.sustainable = ok;
            on_probe(p);
        }
        ++result.probes;
        return std::pair<bool, double>{ok, p99};
    };

    // Doubling phase: find the first unsustainable load.
    double lo = 0, hi = 0;
    for (double load = knee.start_kops; load <= knee.max_kops; load *= 2) {
        const auto [ok, p99] = probe(load);
        if (!ok) {
            hi = load;
            break;
        }
        lo = load;
        result.sustainable_kops = load;
        result.p99_ns_at_knee = p99;
    }
    if (hi == 0 || lo == 0) return result;  // never exploded / never held

    // Bisection between the last good and first bad probe.
    for (unsigned i = 0; i < knee.refine_steps; ++i) {
        const double mid = (lo + hi) / 2;
        const auto [ok, p99] = probe(mid);
        if (ok) {
            lo = mid;
            result.sustainable_kops = mid;
            result.p99_ns_at_knee = p99;
        } else {
            hi = mid;
        }
    }
    return result;
}

}  // namespace sec::bench
