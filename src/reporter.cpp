// reporter.cpp — Table printing.
#include "workload/reporter.hpp"

#include <cstdio>

namespace sec::bench {

Table::Table(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

void Table::add(unsigned threads, std::string_view column, double value) {
    rows_[threads][std::string(column)] = value;
}

void Table::print() const {
    std::printf("\n== %s (Mops/s) ==\n", name_.c_str());
    std::printf("%-8s", "threads");
    for (const auto& c : columns_) std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (const auto& [threads, cells] : rows_) {
        std::printf("%-8u", threads);
        for (const auto& c : columns_) {
            const auto it = cells.find(c);
            if (it != cells.end()) {
                std::printf(" %12.2f", it->second);
            } else {
                std::printf(" %12s", "-");
            }
        }
        std::printf("\n");
    }
    for (const auto& [threads, cells] : rows_) {
        for (const auto& c : columns_) {
            const auto it = cells.find(c);
            if (it != cells.end()) {
                std::printf("CSV,%s,%u,%s,%.4f\n", name_.c_str(), threads,
                            c.c_str(), it->second);
            }
        }
    }
    std::fflush(stdout);
}

}  // namespace sec::bench
