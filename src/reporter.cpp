// reporter.cpp — Table printing.
#include "workload/reporter.hpp"

#include <cstdio>

namespace sec::bench {

Table::Table(std::string name, std::vector<std::string> columns,
             std::string unit)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      unit_(std::move(unit)) {}

void Table::add(unsigned threads, std::string_view column, double value) {
    auto [it, inserted] = rows_[threads].emplace(column, value);
    if (!inserted) {
        if (duplicates_ == 0) {
            std::fprintf(stderr,
                         "Table '%s': duplicate cell (threads=%u, column=%s) "
                         "overwritten — almost always a scenario bug\n",
                         name_.c_str(), threads, std::string(column).c_str());
        }
        ++duplicates_;
        it->second = value;
    }
}

void Table::print() const {
    std::printf("\n== %s (%s) ==\n", name_.c_str(), unit_.c_str());
    std::printf("%-8s", "threads");
    for (const auto& c : columns_) std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (const auto& [threads, cells] : rows_) {
        std::printf("%-8u", threads);
        for (const auto& c : columns_) {
            const auto it = cells.find(c);
            if (it != cells.end()) {
                std::printf(" %12.2f", it->second);
            } else {
                std::printf(" %12s", "-");
            }
        }
        std::printf("\n");
    }
    for (const auto& [threads, cells] : rows_) {
        for (const auto& c : columns_) {
            const auto it = cells.find(c);
            if (it != cells.end()) {
                std::printf("CSV,%s,%u,%s,%.4f\n", name_.c_str(), threads,
                            c.c_str(), it->second);
            }
        }
    }
    std::fflush(stdout);
}

void Table::write_csv(std::FILE* out) const {
    for (const auto& [threads, cells] : rows_) {
        for (const auto& c : columns_) {
            const auto it = cells.find(c);
            if (it != cells.end()) {
                std::fprintf(out, "%s,%u,%s,%.4f\n", name_.c_str(), threads,
                             c.c_str(), it->second);
            }
        }
    }
    std::fflush(out);
}

void Table::write_csv_header(std::FILE* out) {
    // `key` is the thread count for throughput tables; other scenarios put
    // their natural row key there (mix, "ALGO@tN", ...).
    std::fprintf(out, "table,key,column,value\n");
}

void progress_line(std::string_view column, unsigned threads, double mops) {
    std::fprintf(stderr, "  %-10.*s t=%-4u %8.2f Mops/s\n",
                 static_cast<int>(column.size()), column.data(), threads, mops);
}

}  // namespace sec::bench
