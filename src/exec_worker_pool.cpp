// exec_worker_pool.cpp — the ONE thread-construction site for the
// workload/net/test layers (scripts/check_thread_spawn.sh enforces it; the
// only other allowed site is the adaptive controller's background thread).
#include "exec/worker_pool.hpp"

#include <barrier>
#include <utility>

#include "core/common.hpp"
#include "exec/placement.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace sec::exec {

// ---- per-thread placement (exec/placement.hpp) -----------------------------

namespace detail {
ThreadPlacement& mutable_thread_placement() noexcept {
    thread_local ThreadPlacement placement;
    return placement;
}
}  // namespace detail

const ThreadPlacement& this_thread_placement() noexcept {
    return detail::mutable_thread_placement();
}

// ---- WorkerContext ---------------------------------------------------------

struct WorkerPool::Barrier {
    explicit Barrier(std::ptrdiff_t parties) : b(parties) {}
    std::barrier<> b;
};

void WorkerContext::sync() { pool_->barrier_->b.arrive_and_wait(); }

void WorkerContext::counters_restart() {
    if (perf_ != nullptr) perf_->start();  // start() = reset + enable
}

// ---- WorkerPool ------------------------------------------------------------

WorkerPool::WorkerPool(unsigned workers, PoolOptions opts)
    : workers_(workers),
      opts_(opts),
      topology_(opts.topology != nullptr ? opts.topology
                                         : &topo::Topology::system()),
      plan_(topology_->plan(opts.pin, workers, opts.plan_offset)),
      barrier_(std::make_unique<Barrier>(
          static_cast<std::ptrdiff_t>(workers) +
          (opts.coordinator_in_barrier ? 1 : 0))) {}

WorkerPool::~WorkerPool() { join(); }

int WorkerPool::planned_cpu(unsigned t) const noexcept {
    return t < plan_.size() ? plan_[t] : -1;
}

void WorkerPool::start(std::function<void(WorkerContext&)> body) {
    body_ = std::move(body);
    threads_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t) {
        threads_.emplace_back([this, t] { worker_main(t); });
    }
}

void WorkerPool::sync() { barrier_->b.arrive_and_wait(); }

void WorkerPool::join() {
    for (auto& th : threads_) {
        if (th.joinable()) th.join();
    }
    threads_.clear();
}

void WorkerPool::run(unsigned workers, PoolOptions opts,
                     std::function<void(WorkerContext&)> body) {
    // No coordinating thread participates, so the barrier (if the body
    // syncs at all) is workers-only.
    opts.coordinator_in_barrier = false;
    WorkerPool pool(workers, opts);
    pool.start(std::move(body));
    pool.join();
}

void WorkerPool::worker_main(unsigned t) {
    WorkerContext ctx;
    ctx.index = t;
    ctx.pool_ = this;

#if defined(__linux__)
    if (t < plan_.size() && plan_[t] >= 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(plan_[t]), &set);
        // Best-effort: a container that refuses affinity (restricted
        // cpuset, seccomp) leaves the worker unpinned, not the run failed.
        if (::sched_setaffinity(0, sizeof set, &set) == 0) {
            ctx.cpu = plan_[t];
            ThreadPlacement& placement = detail::mutable_thread_placement();
            placement.cpu = plan_[t];
            if (const topo::CpuInfo* info =
                    topology_->find_cpu(static_cast<unsigned>(plan_[t]))) {
                placement.package = info->package;
                placement.core = info->core;
                placement.l3 = info->l3;
            }
        }
    }
#endif

    // Register with the thread registry up front: slot assignment must not
    // land inside a measured span, and per-thread counter slots (sharded
    // stacks, stats) key off this id.
    (void)sec::detail::tid();

    PerfGroup perf;
    if (opts_.counters && perf.open()) {
        ctx.perf_ = &perf;
        perf.start();
    }

    body_(ctx);

    if (ctx.perf_ != nullptr) {
        const PerfSample sample = perf.stop_and_read();
        const std::lock_guard<std::mutex> lock(totals_mu_);
        totals_.add(sample);
    }
}

}  // namespace sec::exec
