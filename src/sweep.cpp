// sweep.cpp — SweepSpec parsing and the cross-product sweep engine behind
// `secbench --sweep` (workload/sweep.hpp).
#include "workload/sweep.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "workload/any_runner.hpp"

namespace sec::bench {
namespace {

bool parse_u64(std::string_view s, std::uint64_t& out) {
    if (s.empty()) return false;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
}

// A sweep is a benchmark grid, not a data set: more points than this is a
// malformed spec, and bounding the expansion also caps the work the
// overflow-safe loops below can do.
constexpr std::size_t kMaxValuesPerKnob = 64;

// "lo", "lo:hi", or "lo:hi:step" into an inclusive value list. Without an
// explicit step, `agg` ranges step by 1 and `backoff` ranges double from
// the 64ns quantum (a 0 lower bound contributes the backoff-disabled
// point) — the ladder the adaptive controller climbs, so a sweep covers
// exactly the points the controller can reach. Every loop is bounded by
// kMaxValuesPerKnob and guarded against std::uint64_t wrap-around, so a
// hostile range errors out instead of hanging or exhausting memory.
bool expand_range(std::string_view field, bool geometric,
                  std::vector<std::uint64_t>& out) {
    const auto c1 = field.find(':');
    if (c1 == std::string_view::npos) {
        std::uint64_t v = 0;
        if (!parse_u64(field, v)) return false;
        out.push_back(v);
        return true;
    }
    const auto c2 = field.find(':', c1 + 1);
    std::uint64_t lo = 0, hi = 0, step = 0;
    if (!parse_u64(field.substr(0, c1), lo)) return false;
    const std::string_view hi_part =
        c2 == std::string_view::npos
            ? field.substr(c1 + 1)
            : field.substr(c1 + 1, c2 - c1 - 1);
    if (!parse_u64(hi_part, hi) || hi < lo) return false;
    if (c2 != std::string_view::npos) {
        if (!parse_u64(field.substr(c2 + 1), step) || step == 0) return false;
        for (std::uint64_t v = lo;; v += step) {
            if (out.size() >= kMaxValuesPerKnob) return false;
            out.push_back(v);
            if (hi - v < step) break;  // next value exceeds hi (or wraps)
        }
        return true;
    }
    if (!geometric) {
        if (hi - lo >= kMaxValuesPerKnob) return false;
        for (std::uint64_t v = lo; v <= hi; ++v) out.push_back(v);
        return true;
    }
    constexpr std::uint64_t kQuantum = 64;
    std::uint64_t v = lo;
    if (v == 0) {
        out.push_back(0);
        v = kQuantum;
    }
    while (v <= hi) {
        if (out.size() >= kMaxValuesPerKnob) return false;
        out.push_back(v);
        if (v > hi / 2) break;  // v * 2 would exceed hi (or wrap)
        v *= 2;
    }
    return true;
}

void set_error(std::string* error, std::string message) {
    if (error != nullptr) *error = std::move(message);
}

// A knob's field: one or more '+'-separated segments, each a value or a
// range ("0+64:256+4096"). Every segment expands through expand_range, then
// the union is sorted and deduped — a list like "4096+0:256+64" would
// otherwise inflate the cross-product with duplicate columns and emit the
// grid out of order (duplicate CSV rows downstream tooling then
// double-counts).
bool expand_field(std::string_view field, bool geometric,
                  std::vector<std::uint64_t>& out) {
    std::string_view rest = field;
    while (true) {
        const auto plus = rest.find('+');
        const std::string_view segment = rest.substr(0, plus);
        if (segment.empty() ||
            !expand_range(segment, geometric, out)) {
            return false;
        }
        if (plus == std::string_view::npos) break;
        rest = rest.substr(plus + 1);
    }
    if (out.size() > kMaxValuesPerKnob) return false;
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return !out.empty();
}

}  // namespace

std::optional<SweepSpec> SweepSpec::parse(std::string_view spec,
                                          std::string* error) {
    SweepSpec out;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string_view knob = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (knob.empty()) continue;
        const auto eq = knob.find('=');
        if (eq == std::string_view::npos) {
            set_error(error, "sweep: knob without '=': " + std::string(knob));
            return std::nullopt;
        }
        const std::string_view name = knob.substr(0, eq);
        const std::string_view field = knob.substr(eq + 1);
        std::vector<std::uint64_t> values;
        if (name == "agg") {
            if (!out.aggs.empty()) {
                set_error(error, "sweep: duplicate 'agg' knob");
                return std::nullopt;
            }
            if (!expand_field(field, /*geometric=*/false, values)) {
                set_error(error, "sweep: bad agg range: " + std::string(field));
                return std::nullopt;
            }
            for (std::uint64_t v : values) {
                if (v < 1 || v > kMaxAggregators) {
                    set_error(error,
                              "sweep: agg values must be in [1, " +
                                  std::to_string(kMaxAggregators) + "]");
                    return std::nullopt;
                }
                out.aggs.push_back(static_cast<std::size_t>(v));
            }
        } else if (name == "backoff") {
            if (!out.backoffs.empty()) {
                set_error(error, "sweep: duplicate 'backoff' knob");
                return std::nullopt;
            }
            if (!expand_field(field, /*geometric=*/true, values)) {
                set_error(error,
                          "sweep: bad backoff range: " + std::string(field));
                return std::nullopt;
            }
            for (std::uint64_t v : values) {
                // Config::freezer_backoff_ns's legal range (validate()
                // enforces the same bound on the direct-Config path).
                if (v > kMaxFreezerBackoffNs) {
                    set_error(error,
                              "sweep: backoff values must be < 2^48 ns");
                    return std::nullopt;
                }
            }
            out.backoffs = std::move(values);
        } else {
            set_error(error,
                      "sweep: unknown knob '" + std::string(name) +
                          "' (have: agg, backoff)");
            return std::nullopt;
        }
    }
    const Config defaults;
    if (out.aggs.empty()) out.aggs.push_back(defaults.num_aggregators);
    if (out.backoffs.empty()) {
        out.backoffs.push_back(defaults.freezer_backoff_ns);
    }
    return out;
}

int run_sweep(const ScenarioContext& ctx, const SweepSpec& spec) {
    // Sweep the SEC family: the variant from the current selection when one
    // was selected (so --reclaim hp sweeps SEC@hp), plain SEC otherwise.
    const AlgoSpec* sec_algo = nullptr;
    for (const AlgoSpec* a : ctx.algos) {
        if (a->base == "SEC") {
            sec_algo = a;
            break;
        }
    }
    if (sec_algo == nullptr) {
        sec_algo = AlgorithmRegistry::instance().find("SEC");
    }

    std::vector<std::string> columns;
    for (std::size_t a : spec.aggs) {
        for (std::uint64_t b : spec.backoffs) {
            columns.push_back("agg" + std::to_string(a) + "_bo" +
                              std::to_string(b));
        }
    }
    std::fprintf(stderr,
                 "sweep: %zu combinations (%zu agg x %zu backoff) x %zu "
                 "thread counts, algorithm %s, upd100 mix\n",
                 spec.combinations(), spec.aggs.size(), spec.backoffs.size(),
                 ctx.env.threads.size(), sec_algo->name.c_str());

    Table table("sweep", columns);
    // argmax per thread count, for the summary lines below.
    std::vector<std::pair<std::string, double>> best(ctx.env.threads.size(),
                                                     {"", -1.0});
    std::size_t ci = 0;
    for (std::size_t aggs : spec.aggs) {
        // More aggregators than publication slots is a degenerate config
        // (idle aggregators that only add freezer scan work); say what
        // actually ran instead of silently mislabelling the column — once
        // per (agg, thread count), not once per grid point.
        for (const unsigned t : ctx.env.threads) {
            const std::size_t bound = tid_bound(t);
            if (aggs > bound) {
                std::fprintf(stderr,
                             "sweep: agg=%zu exceeds max_threads=%zu at "
                             "t=%u; clamping to %zu\n",
                             aggs, bound, t, bound);
            }
        }
        for (std::uint64_t backoff : spec.backoffs) {
            const std::string& column = columns[ci++];
            for (std::size_t ti = 0; ti < ctx.env.threads.size(); ++ti) {
                const unsigned t = ctx.env.threads[ti];
                Config cfg;
                cfg.max_threads = tid_bound(t);
                cfg.num_aggregators =
                    std::min<std::size_t>(aggs, cfg.max_threads);
                cfg.freezer_backoff_ns = backoff;
                StackParams params;
                params.threads = t;
                params.config = &cfg;
                const RunResult r = run_throughput_any(
                    [&] { return sec_algo->make(params); },
                    ctx.run_config(t, kUpdateHeavy));
                table.add(t, column, r.mops);
                progress_line(column, t, r.mops);
                if (r.mops > best[ti].second) best[ti] = {column, r.mops};
            }
        }
    }
    ctx.emit(table);
    for (std::size_t ti = 0; ti < ctx.env.threads.size(); ++ti) {
        std::printf("# sweep best @ t=%-4u %s (%.2f Mops/s)\n",
                    ctx.env.threads[ti], best[ti].first.c_str(),
                    best[ti].second);
        ctx.csv_row("sweep_best", std::to_string(ctx.env.threads[ti]),
                    best[ti].first, best[ti].second);
    }
    return 0;
}

}  // namespace sec::bench
