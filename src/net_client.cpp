// net_client.cpp — the loopback client driver (net/client.hpp).
//
// Per connection: one sender thread pacing a deterministic arrival
// schedule (workload/service.hpp; lane seed phase_seed(seed, lane, 0, 4) —
// salt 4 keeps the wire lanes' streams disjoint from the in-process
// service lanes' salt 3) and one receiver thread charging replies. The
// sender stamps every frame's tag with the request's schedule index; the
// receiver resolves the tag back to the scheduled arrival (sojourn) and to
// the atomically-published actual send time (RTT). All cross-thread state —
// send timestamps, per-lane counters — is atomic, so the driver is clean
// under TSan (tests/net_loopback_test.cpp runs under it in CI).
#include "net/client.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/common.hpp"
#include "exec/worker_pool.hpp"
#include "net/protocol.hpp"
#include "workload/runner.hpp"

namespace sec::net {
namespace {

using Clock = std::chrono::steady_clock;

int connect_to(const std::string& host, std::uint16_t port,
               std::string* err) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *err = "bad host '" + host + "'";
        ::close(fd);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bound receiver reads so the drain-grace deadline is checked even when
    // the server goes silent.
    timeval tv{};
    tv.tv_usec = 50 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
    while (len > 0) {
        // MSG_NOSIGNAL: a server-side drop mid-run must read as a failed
        // send (lost replies in the result), not SIGPIPE for the process.
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

// State shared between one connection's sender and receiver.
struct Lane {
    int fd = -1;
    std::vector<std::uint64_t> schedule;  // ns offsets from epoch
    std::vector<MsgType> kinds;           // kPushReq / kPopReq per index
    // Actual send time (ns since epoch), published by the sender, read by
    // the receiver for the RTT histogram. 0 = not sent yet.
    std::unique_ptr<std::atomic<std::uint64_t>[]> send_ns;
    std::atomic<std::uint64_t> sent{0};
    std::atomic<bool> sender_done{false};
    std::atomic<std::uint64_t> sender_done_ns{0};  // since epoch

    // Receiver-owned results (read by the main thread after join).
    std::uint64_t replies = 0;
    std::uint64_t pop_hits = 0;
    std::uint64_t pop_empties = 0;
    std::uint64_t last_reply_ns = 0;  // since epoch
    bench::LatencyHistogram sojourn;
    bench::LatencyHistogram rtt;
};

std::uint64_t since(Clock::time_point epoch) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
}

void sender_main(Lane& lane, Clock::time_point epoch) {
    std::vector<std::uint8_t> frame;
    for (std::size_t i = 0; i < lane.schedule.size(); ++i) {
        std::this_thread::sleep_until(
            epoch + std::chrono::nanoseconds(lane.schedule[i]));
        Message req;
        req.type = lane.kinds[i];
        req.tag = i;
        req.value = i + 1;  // nonzero payload; identity lives in the tag
        frame.clear();
        encode(req, frame);
        lane.send_ns[i].store(since(epoch), std::memory_order_release);
        if (!write_all(lane.fd, frame.data(), frame.size())) break;
        lane.sent.fetch_add(1, std::memory_order_release);
    }
    lane.sender_done_ns.store(since(epoch), std::memory_order_release);
    lane.sender_done.store(true, std::memory_order_release);
}

void receiver_main(Lane& lane, Clock::time_point epoch,
                   std::chrono::milliseconds grace) {
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[16 * 1024];
    const std::uint64_t grace_ns =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(grace)
                .count());
    for (;;) {
        // done is loaded BEFORE sent: the sender publishes its final sent
        // count before setting done, so done=true (acquire) guarantees the
        // subsequent sent load sees the final count. The reverse order could
        // pair a stale sent with done=true and under-count outstanding
        // replies, mis-reporting them as lost.
        const bool done = lane.sender_done.load(std::memory_order_acquire);
        const std::uint64_t sent = lane.sent.load(std::memory_order_acquire);
        if (done && lane.replies >= sent) break;  // every reply charged
        if (done) {
            const std::uint64_t done_ns =
                lane.sender_done_ns.load(std::memory_order_acquire);
            if (since(epoch) > done_ns + grace_ns) break;  // lost replies
        }
        const ssize_t n = ::read(lane.fd, chunk, sizeof(chunk));
        if (n == 0) break;  // server closed
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
                continue;  // SO_RCVTIMEO tick: re-check the deadline
            }
            break;
        }
        buf.insert(buf.end(), chunk, chunk + n);
        std::size_t off = 0;
        while (off < buf.size()) {
            Message resp;
            const DecodeResult r =
                decode(buf.data() + off, buf.size() - off, resp);
            if (r.status == DecodeStatus::kNeedMore) break;
            if (r.status == DecodeStatus::kError) return;  // desync: bail
            off += r.consumed;
            const std::uint64_t now_ns = since(epoch);
            const std::uint64_t idx = resp.tag;
            if (idx >= lane.schedule.size()) continue;  // unknown tag
            ++lane.replies;
            lane.last_reply_ns = now_ns;
            const std::uint64_t sched = lane.schedule[idx];
            lane.sojourn.record(now_ns > sched ? now_ns - sched : 0);
            const std::uint64_t sent_at =
                lane.send_ns[idx].load(std::memory_order_acquire);
            lane.rtt.record(now_ns > sent_at ? now_ns - sent_at : 0);
            if (resp.type == MsgType::kPopResp) {
                if (resp.ok) {
                    ++lane.pop_hits;
                } else {
                    ++lane.pop_empties;
                }
            }
        }
        if (off > 0) buf.erase(buf.begin(), buf.begin() + off);
    }
}

}  // namespace

LoopbackClientResult run_loopback_client(const LoopbackClientConfig& cfg) {
    LoopbackClientResult res;
    if (cfg.connections == 0) {
        res.error = "connections must be >= 1";
        return res;
    }
    if (cfg.port == 0) {
        res.error = "port must be set";
        return res;
    }

    // Schedules reuse the service harness's generator verbatim, so the wire
    // path offers the same arrival process the in-process lanes measure.
    bench::ServiceConfig svc;
    svc.load_kops = cfg.load_kops;
    svc.duration = cfg.duration;
    svc.arrival = cfg.arrival;
    svc.burst_period = cfg.burst_period;
    svc.burst_duty = cfg.burst_duty;
    svc.seed = cfg.seed;
    const double lane_ops_s =
        cfg.load_kops * 1000.0 / static_cast<double>(cfg.connections);

    std::vector<std::unique_ptr<Lane>> lanes;
    for (unsigned c = 0; c < cfg.connections; ++c) {
        auto lane = std::make_unique<Lane>();
        lane->fd = connect_to(cfg.host, cfg.port, &res.error);
        if (lane->fd < 0) {
            for (auto& l : lanes) ::close(l->fd);
            return res;
        }
        lane->schedule = bench::make_arrival_schedule(
            svc, lane_ops_s, bench::phase_seed(cfg.seed, c, 0, 4));
        lane->kinds.reserve(lane->schedule.size());
        Xoshiro256 rng(bench::phase_seed(cfg.seed, c, 0, 5));
        for (std::size_t i = 0; i < lane->schedule.size(); ++i) {
            const bool push = rng.next_below(100) < cfg.push_pct;
            lane->kinds.push_back(push ? MsgType::kPushReq
                                       : MsgType::kPopReq);
            if (push) ++res.pushes;
        }
        lane->send_ns = std::make_unique<std::atomic<std::uint64_t>[]>(
            lane->schedule.size());
        for (std::size_t i = 0; i < lane->schedule.size(); ++i) {
            lane->send_ns[i].store(0, std::memory_order_relaxed);
        }
        res.sent += lane->schedule.size();
        lanes.push_back(std::move(lane));
    }

    // One epoch for every lane, taken after all sockets are connected so no
    // lane starts its schedule while another is still in connect().
    const Clock::time_point epoch = Clock::now() + std::chrono::milliseconds(5);

    // One pool worker per lane endpoint: even indices send, odd indices
    // receive, so lane i's pair sits at slots 2i / 2i+1.
    exec::WorkerPool::run(
        static_cast<unsigned>(lanes.size() * 2),
        [&lanes, epoch, grace = cfg.drain_grace](exec::WorkerContext& wc) {
            Lane& lane = *lanes[wc.index / 2];
            if (wc.index % 2 == 0) {
                sender_main(lane, epoch);
            } else {
                receiver_main(lane, epoch, grace);
            }
        });

    std::uint64_t last_reply_ns = 0;
    for (auto& lane : lanes) {
        res.replies += lane->replies;
        res.pop_hits += lane->pop_hits;
        res.pop_empties += lane->pop_empties;
        res.sojourn.merge_from(lane->sojourn);
        res.rtt.merge_from(lane->rtt);
        if (lane->last_reply_ns > last_reply_ns) {
            last_reply_ns = lane->last_reply_ns;
        }
        ::close(lane->fd);
    }
    // A send that failed mid-write still counts as lost: it was scheduled.
    res.lost = res.sent - res.replies;
    res.window_s = static_cast<double>(last_reply_ns) / 1e9;
    const double horizon_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            cfg.duration)
            .count();
    res.offered_kops = horizon_s > 0
                           ? static_cast<double>(res.sent) / horizon_s / 1000.0
                           : 0.0;
    res.achieved_kops =
        res.window_s > 0
            ? static_cast<double>(res.replies) / res.window_s / 1000.0
            : 0.0;
    res.ok = true;
    return res;
}

}  // namespace sec::net
