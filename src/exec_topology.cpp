// exec_topology.cpp — sysfs cpu-topology parsing and placement planning
// (exec/topology.hpp). Pure file reading + sorting; no syscalls beyond
// open/read, so the same code parses the live /sys tree and the canned
// fixture trees the tests write.
#include "exec/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

namespace sec::topo {
namespace {

// Whole small file → string, without the trailing newline sysfs appends.
// nullopt when the file is absent or unreadable.
std::optional<std::string> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::string out;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
    }
    return out;
}

std::optional<long> read_long(const std::string& path) {
    const auto text = read_file(path);
    if (!text || text->empty()) return std::nullopt;
    char* end = nullptr;
    const long v = std::strtol(text->c_str(), &end, 10);
    if (end == text->c_str()) return std::nullopt;
    return v;
}

// Parse a sysfs cpu list ("0-3,8,10-11") into ascending cpu ids. Returns
// an empty vector on malformed input — callers treat that as "unknown".
std::vector<unsigned> parse_cpu_list(std::string_view text) {
    std::vector<unsigned> out;
    std::size_t i = 0;
    auto number = [&](unsigned& v) -> bool {
        if (i >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[i]))) {
            return false;
        }
        unsigned long acc = 0;
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
            acc = acc * 10 + static_cast<unsigned long>(text[i] - '0');
            ++i;
        }
        v = static_cast<unsigned>(acc);
        return true;
    };
    while (i < text.size()) {
        unsigned lo = 0;
        if (!number(lo)) return {};
        unsigned hi = lo;
        if (i < text.size() && text[i] == '-') {
            ++i;
            if (!number(hi) || hi < lo) return {};
        }
        for (unsigned c = lo; c <= hi; ++c) out.push_back(c);
        if (i < text.size()) {
            if (text[i] != ',') return {};
            ++i;
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string cpu_dir(const std::string& root, unsigned cpu) {
    return root + "/cpu" + std::to_string(cpu);
}

// The cpus to parse: the `online` list when present, else every cpuN
// directory that has a topology/package_id (fixtures may omit `online`).
std::vector<unsigned> online_cpus(const std::string& root) {
    if (const auto text = read_file(root + "/online")) {
        const std::vector<unsigned> cpus = parse_cpu_list(*text);
        if (!cpus.empty()) return cpus;
    }
    std::vector<unsigned> cpus;
    unsigned misses = 0;
    for (unsigned c = 0; misses < 64; ++c) {  // cpu ids may have small holes
        if (read_long(cpu_dir(root, c) + "/topology/package_id")) {
            cpus.push_back(c);
            misses = 0;
        } else {
            ++misses;
        }
    }
    return cpus;
}

// The L3 domain key of one cpu: the shared_cpu_list of its level-3 cache,
// canonicalized to the lowest cpu in the list. -1 when the tree has no L3
// entry (callers fall back to the package as the domain).
long l3_key(const std::string& root, unsigned cpu) {
    for (unsigned idx = 0; idx < 10; ++idx) {
        const std::string base =
            cpu_dir(root, cpu) + "/cache/index" + std::to_string(idx);
        const auto level = read_long(base + "/level");
        if (!level) break;  // cache indices are dense; first gap ends them
        if (*level != 3) continue;
        if (const auto list = read_file(base + "/shared_cpu_list")) {
            const std::vector<unsigned> cpus = parse_cpu_list(*list);
            if (!cpus.empty()) return static_cast<long>(cpus.front());
        }
    }
    return -1;
}

}  // namespace

std::optional<PinPolicy> parse_pin_policy(std::string_view name) noexcept {
    if (name == "none") return PinPolicy::kNone;
    if (name == "compact") return PinPolicy::kCompact;
    if (name == "scatter") return PinPolicy::kScatter;
    if (name == "smt" || name == "smt-aware") return PinPolicy::kSmtAware;
    return std::nullopt;
}

std::string_view pin_policy_name(PinPolicy policy) noexcept {
    switch (policy) {
        case PinPolicy::kCompact: return "compact";
        case PinPolicy::kScatter: return "scatter";
        case PinPolicy::kSmtAware: return "smt";
        case PinPolicy::kNone: break;
    }
    return "none";
}

void Topology::derive() {
    // Dense renumbering in first-appearance order over ascending cpu id:
    // raw sysfs ids (package 0/1, core_id with per-socket gaps, L3 keyed by
    // its lowest member) become 0..n-1 indices.
    std::map<int, int> package_index;
    std::map<std::pair<int, int>, int> core_index;  // (package raw, core raw)
    std::map<int, int> l3_index;
    unsigned width = 1;
    std::map<int, int> smt_seen;  // dense core -> siblings assigned so far
    for (CpuInfo& c : cpus_) {
        const auto p = package_index.emplace(
            c.package, static_cast<int>(package_index.size()));
        const auto k = core_index.emplace(
            std::make_pair(c.package, c.core),
            static_cast<int>(core_index.size()));
        const auto d =
            l3_index.emplace(c.l3, static_cast<int>(l3_index.size()));
        c.package = p.first->second;
        c.core = k.first->second;
        c.l3 = d.first->second;
        c.smt = smt_seen[c.core]++;
        width = std::max(width, static_cast<unsigned>(c.smt + 1));
    }
    packages_ = static_cast<unsigned>(package_index.size());
    cores_ = static_cast<unsigned>(core_index.size());
    l3_domains_ = static_cast<unsigned>(l3_index.size());
    smt_width_ = width;
}

Topology Topology::flat(unsigned cpus) {
    Topology t;
    t.synthetic_ = true;
    t.cpus_.reserve(cpus);
    for (unsigned c = 0; c < cpus; ++c) {
        t.cpus_.push_back(CpuInfo{c, 0, static_cast<int>(c), 0, 0});
    }
    t.derive();
    return t;
}

std::optional<Topology> Topology::parse(const std::string& root,
                                        std::string* err) {
    Topology t;
    const std::vector<unsigned> cpus = online_cpus(root);
    if (cpus.empty()) {
        if (err != nullptr) *err = "no cpus under '" + root + "'";
        return std::nullopt;
    }
    for (unsigned c : cpus) {
        const std::string topo = cpu_dir(root, c) + "/topology";
        const auto package = read_long(topo + "/package_id");
        const auto core = read_long(topo + "/core_id");
        if (!package || !core) {
            // A cpu in `online` without topology files (mid-hotplug, or a
            // sparse fixture) is skipped, not fatal.
            continue;
        }
        CpuInfo info;
        info.cpu = c;
        info.package = static_cast<int>(*package);
        info.core = static_cast<int>(*core);
        const long l3 = l3_key(root, c);
        // No L3 description: the package is the closest honest domain.
        // Offset real keys so the two namespaces cannot collide.
        info.l3 = l3 >= 0 ? static_cast<int>(l3)
                          : -(info.package + 2);
        t.cpus_.push_back(info);
    }
    if (t.cpus_.empty()) {
        if (err != nullptr) {
            *err = "no cpu under '" + root + "' carries topology files";
        }
        return std::nullopt;
    }
    std::sort(t.cpus_.begin(), t.cpus_.end(),
              [](const CpuInfo& a, const CpuInfo& b) { return a.cpu < b.cpu; });
    // SMT ranks follow sibling-list order == ascending cpu id (derive
    // assigns ranks in iteration order), which matches
    // thread_siblings_list's ascending convention.
    t.derive();
    return t;
}

Topology Topology::detect() {
    if (auto t = parse("/sys/devices/system/cpu")) return std::move(*t);
    return flat(std::max(1u, std::thread::hardware_concurrency()));
}

const Topology& Topology::system() {
    static const Topology topo = detect();
    return topo;
}

const CpuInfo* Topology::find_cpu(unsigned os_cpu) const noexcept {
    const auto it = std::lower_bound(
        cpus_.begin(), cpus_.end(), os_cpu,
        [](const CpuInfo& c, unsigned v) { return c.cpu < v; });
    return it != cpus_.end() && it->cpu == os_cpu ? &*it : nullptr;
}

std::vector<int> Topology::plan(PinPolicy policy, unsigned workers,
                                unsigned offset) const {
    if (policy == PinPolicy::kNone || cpus_.empty() || workers == 0) {
        return {};
    }

    // The policy's cpu ORDER; a plan is `workers` consecutive slots of it
    // (wrapping), starting at `offset`.
    std::vector<const CpuInfo*> order;
    order.reserve(cpus_.size());
    for (const CpuInfo& c : cpus_) order.push_back(&c);

    const auto compact_less = [](const CpuInfo* a, const CpuInfo* b) {
        return std::tie(a->package, a->l3, a->core, a->smt, a->cpu) <
               std::tie(b->package, b->l3, b->core, b->smt, b->cpu);
    };
    switch (policy) {
        case PinPolicy::kCompact:
            std::sort(order.begin(), order.end(), compact_less);
            break;
        case PinPolicy::kSmtAware:
            // All first siblings (one per physical core) in compact order,
            // then the second siblings, and so on.
            std::sort(order.begin(), order.end(),
                      [&](const CpuInfo* a, const CpuInfo* b) {
                          if (a->smt != b->smt) return a->smt < b->smt;
                          return compact_less(a, b);
                      });
            break;
        case PinPolicy::kScatter: {
            // Round-robin across packages, compact order within each: the
            // k-th worker of P packages lands on package k mod P.
            std::sort(order.begin(), order.end(), compact_less);
            std::vector<std::vector<const CpuInfo*>> per_package(packages_);
            for (const CpuInfo* c : order) {
                per_package[static_cast<std::size_t>(c->package)].push_back(c);
            }
            order.clear();
            for (std::size_t round = 0; order.size() < cpus_.size();
                 ++round) {
                for (const auto& pkg : per_package) {
                    if (round < pkg.size()) order.push_back(pkg[round]);
                }
            }
            break;
        }
        case PinPolicy::kNone: break;  // unreachable
    }

    std::vector<int> plan(workers, -1);
    for (unsigned t = 0; t < workers; ++t) {
        plan[t] = static_cast<int>(
            order[(offset + t) % order.size()]->cpu);
    }
    return plan;
}

}  // namespace sec::topo
