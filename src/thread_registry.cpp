// thread_registry.cpp — recycled small thread ids (see core/common.hpp).
#include "core/common.hpp"

#include <bitset>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sec::detail {
namespace {

std::mutex g_mutex;
std::bitset<kMaxThreads> g_in_use;
std::atomic<std::size_t> g_hwm{0};  // see tid_hwm()

std::size_t acquire_id() {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        if (!g_in_use.test(i)) {
            g_in_use.set(i);
            if (i + 1 > g_hwm.load(std::memory_order_relaxed)) {
                g_hwm.store(i + 1, std::memory_order_relaxed);
            }
            return i;
        }
    }
    std::fprintf(stderr,
                 "sec: more than %zu live threads; raise sec::kMaxThreads\n",
                 kMaxThreads);
    std::abort();
}

void release_id(std::size_t id) noexcept {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_in_use.reset(id);
}

struct TidHolder {
    std::size_t id = acquire_id();
    ~TidHolder() { release_id(id); }
};

}  // namespace

std::size_t tid() noexcept {
    thread_local TidHolder holder;
    return holder.id;
}

std::size_t tid_hwm() noexcept {
    return g_hwm.load(std::memory_order_relaxed);
}

}  // namespace sec::detail
