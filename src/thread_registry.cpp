// thread_registry.cpp — recycled small thread ids (see core/common.hpp).
#include "core/common.hpp"

#include <bitset>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sec::detail {
namespace {

std::mutex g_mutex;
std::bitset<kMaxThreads> g_in_use;

std::size_t acquire_id() {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        if (!g_in_use.test(i)) {
            g_in_use.set(i);
            return i;
        }
    }
    std::fprintf(stderr,
                 "sec: more than %zu live threads; raise sec::kMaxThreads\n",
                 kMaxThreads);
    std::abort();
}

void release_id(std::size_t id) noexcept {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_in_use.reset(id);
}

struct TidHolder {
    std::size_t id = acquire_id();
    ~TidHolder() { release_id(id); }
};

}  // namespace

std::size_t tid() noexcept {
    thread_local TidHolder holder;
    return holder.id;
}

}  // namespace sec::detail
