// shard.cpp — sec::shard non-template pieces (ShardStats metrics) and the
// SEC@shard{2,4,8} (x reclamation scheme) registry variants: a ShardedStack
// of K independent SecStacks, each with its OWN private reclamation domain,
// behind the same type-erased factory surface as every other algorithm.
#include "core/sharded_stack.hpp"

#include <algorithm>
#include <string>

#include "core/sec_stack.hpp"
#include "reclaim/reclaim.hpp"
#include "workload/registry.hpp"

namespace sec::shard {

double ShardStats::imbalance() const noexcept {
    if (shard_ops.empty()) return 1.0;
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    for (std::uint64_t ops : shard_ops) {
        total += ops;
        max = std::max(max, ops);
    }
    if (total == 0) return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(shard_ops.size());
    return static_cast<double>(max) / mean;
}

double ShardStats::steal_pct() const noexcept {
    return pops ? 100.0 * static_cast<double>(steals) /
                      static_cast<double>(pops)
                : 0.0;
}

}  // namespace sec::shard

namespace sec::bench {
namespace {

// K SecStacks behind the shard façade. p.domain is deliberately ignored:
// the whole point of per-shard reclamation is that each shard owns a
// PRIVATE domain (drain/limbo accounting stays per-shard), so an external
// shared domain cannot be honoured — the specs register with
// supports_domain=false and the reclamation scenario's external-domain
// matrix skips them.
template <reclaim::Reclaimer R>
AnyStack make_sharded_sec(const StackParams& p, std::size_t num_shards) {
    using Inner = SecStack<Value, R>;
    const Config cfg = effective_stack_config(p);
    shard::ShardConfig scfg;
    scfg.num_shards = num_shards;
    scfg.max_threads = cfg.max_threads;
    return erase_stack(std::make_unique<shard::ShardedStack<Inner>>(
        scfg, [&cfg](std::size_t) { return std::make_unique<Inner>(cfg); }));
}

template <reclaim::Reclaimer R>
void register_shard_variants(AlgorithmRegistry& reg, int rank,
                             const char* scheme_suffix) {
    for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
        // Base is "SEC@shardK" (set explicitly — the default '@' split
        // would read "shard4" as a reclamation scheme), so --reclaim
        // resolves SEC@shardK to SEC@shardK@scheme like any other family.
        std::string base = "SEC@shard" + std::to_string(k);
        std::string name = base + scheme_suffix;
        std::string desc = "SEC across " + std::to_string(k) +
                           " shards (tid affinity + pop stealing, per-shard " +
                           std::string(R::kName) + " domains)";
        reg.add({std::move(name), std::move(desc), rank++, false, false,
                 [k](const StackParams& p) {
                     return make_sharded_sec<R>(p, k);
                 },
                 std::move(base), std::string(R::kName)});
    }
}

}  // namespace

namespace detail {

void register_shard_algorithms(AlgorithmRegistry& reg) {
    // Plain names bind to EBR (the library-wide convention); the scheme
    // variants compose sharding with --reclaim hp/qsbr/leak.
    register_shard_variants<reclaim::EpochDomain>(reg, 60, "");
    register_shard_variants<reclaim::HazardDomain>(reg, 63, "@hp");
    register_shard_variants<reclaim::QsbrDomain>(reg, 66, "@qsbr");
    register_shard_variants<reclaim::LeakyDomain>(reg, 69, "@leak");
}

}  // namespace detail
}  // namespace sec::bench
