// any_runner.cpp — timed-window, latency, and churn runners over AnyStack.
// Worker lifecycle (spawn, tid registration, pinning, counters, join) is
// sec::exec::WorkerPool's; the measured loops themselves live behind one
// virtual phase call per worker (see core/stack_concept.hpp).
#include "workload/any_runner.hpp"

#include <thread>
#include <vector>

#include "core/common.hpp"
#include "exec/worker_pool.hpp"

namespace sec::bench {
namespace {

exec::PoolOptions pool_options(const RunConfig& cfg) {
    exec::PoolOptions opts;
    opts.pin = cfg.pin;
    opts.counters = cfg.counters;
    return opts;
}

// One timed window on `stack`; accumulates into `result`. Workers time
// their own measured span (one_phased_round's trick, below): ops completed
// between the coordinator's stop store and the worker's exit are real work,
// and charging them against the coordinator's sleep window — which excludes
// that overshoot — used to inflate short-window results by a scheduling-
// dependent amount.
void one_round(AnyStack& stack, const RunConfig& cfg, unsigned run,
               RunResult& result) {
    using Clock = std::chrono::steady_clock;
    std::atomic<bool> stop{false};
    std::vector<CacheAligned<std::uint64_t>> ops(cfg.threads);
    std::vector<CacheAligned<Clock::time_point>> begins(cfg.threads);
    std::vector<CacheAligned<Clock::time_point>> ends(cfg.threads);

    exec::WorkerPool pool(cfg.threads, pool_options(cfg));
    pool.start([&, run](exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        PhaseArgs args;
        args.value_range = cfg.value_range;
        args.mix = cfg.mix;
        args.seed = phase_seed(cfg.seed, t, run, 1);
        stack.prefill(prefill_share(cfg.prefill, cfg.threads, t), args);
        wc.sync();
        wc.counters_restart();  // measured span only, not the prefill
        *begins[t] = Clock::now();
        args.seed = phase_seed(cfg.seed, t, run);
        *ops[t] = stack.mixed_until(stop, args);
        *ends[t] = Clock::now();
    });

    pool.sync();
    std::this_thread::sleep_for(cfg.duration);
    stop.store(true, std::memory_order_relaxed);
    pool.join();
    result.perf.merge(pool.counters());

    std::uint64_t total = 0;
    for (const auto& c : ops) total += *c;
    Clock::time_point start = *begins[0];
    Clock::time_point end = *ends[0];
    for (unsigned t = 1; t < cfg.threads; ++t) {
        if (*begins[t] < start) start = *begins[t];
        if (*ends[t] > end) end = *ends[t];
    }
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    result.total_ops += total;
    result.mops += us > 0 ? static_cast<double>(total) / us : 0.0;
}

// One phase-shifting window: workers run phases[0..n) back to back on the
// same structure, each until its own stop flag; the coordinator trips the
// flags at equal sub-window boundaries. Workers time their own measured
// span (run_churn_any's trick): on an oversubscribed host the ops a worker
// completes between the coordinator's last stop store and the join are real
// work, and charging them against a window that excludes that overshoot
// would inflate short-window results by a scheduling-dependent amount.
void one_phased_round(AnyStack& stack, const RunConfig& cfg,
                      const std::vector<OpMix>& phases, unsigned run,
                      RunResult& result) {
    using Clock = std::chrono::steady_clock;
    const std::size_t n = phases.size();
    std::vector<std::atomic<bool>> stops(n);
    for (auto& s : stops) s.store(false, std::memory_order_relaxed);
    std::vector<CacheAligned<std::uint64_t>> ops(cfg.threads);
    std::vector<CacheAligned<Clock::time_point>> begins(cfg.threads);
    std::vector<CacheAligned<Clock::time_point>> ends(cfg.threads);

    exec::WorkerPool pool(cfg.threads, pool_options(cfg));
    pool.start([&, run](exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        PhaseArgs args;
        args.value_range = cfg.value_range;
        args.seed = phase_seed(cfg.seed, t, run, 1);
        stack.prefill(prefill_share(cfg.prefill, cfg.threads, t), args);
        wc.sync();
        wc.counters_restart();
        *begins[t] = Clock::now();
        std::uint64_t local = 0;
        for (std::size_t p = 0; p < n; ++p) {
            args.mix = phases[p];
            // Distinct salt per sub-window: each phase replays its own
            // deterministic op sequence under --seed.
            args.seed = phase_seed(cfg.seed, t, run, 2 + p);
            local += stack.mixed_until(stops[p], args);
        }
        *ends[t] = Clock::now();
        *ops[t] = local;
    });

    pool.sync();
    for (std::size_t p = 0; p < n; ++p) {
        std::this_thread::sleep_for(cfg.duration / n);
        stops[p].store(true, std::memory_order_relaxed);
    }
    pool.join();
    result.perf.merge(pool.counters());

    std::uint64_t total = 0;
    for (const auto& c : ops) total += *c;
    Clock::time_point start = *begins[0];
    Clock::time_point end = *ends[0];
    for (unsigned t = 1; t < cfg.threads; ++t) {
        if (*begins[t] < start) start = *begins[t];
        if (*ends[t] > end) end = *ends[t];
    }
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    result.total_ops += total;
    result.mops += us > 0 ? static_cast<double>(total) / us : 0.0;
}

}  // namespace

RunResult run_throughput_any(const AnyStackFactory& make,
                             const RunConfig& cfg) {
    RunResult result;
    if (cfg.threads == 0) return result;  // see RunConfig::threads
    for (unsigned run = 0; run < cfg.runs; ++run) {
        AnyStack stack = make();
        one_round(stack, cfg, run, result);
    }
    result.mops /= cfg.runs;
    return result;
}

RunResult run_throughput_any(AnyStack& stack, const RunConfig& cfg) {
    RunResult result;
    if (cfg.threads == 0) return result;  // see RunConfig::threads
    for (unsigned run = 0; run < cfg.runs; ++run) {
        one_round(stack, cfg, run, result);
    }
    result.mops /= cfg.runs;
    return result;
}

RunResult run_phased_any(const AnyStackFactory& make, const RunConfig& cfg,
                         const std::vector<OpMix>& phases) {
    RunResult result;
    if (cfg.threads == 0 || phases.empty()) return result;
    for (unsigned run = 0; run < cfg.runs; ++run) {
        AnyStack stack = make();
        one_phased_round(stack, cfg, phases, run, result);
    }
    result.mops /= cfg.runs;
    return result;
}

LatencyHistogram run_latency_any(AnyStack& stack, const RunConfig& cfg) {
    LatencyHistogram merged;
    if (cfg.threads == 0) return merged;
    std::atomic<bool> stop{false};
    std::vector<CacheAligned<LatencyHistogram>> hists(cfg.threads);

    exec::WorkerPool pool(cfg.threads, pool_options(cfg));
    pool.start([&](exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        PhaseArgs args;
        args.value_range = cfg.value_range;
        args.mix = cfg.mix;
        args.seed = phase_seed(cfg.seed, t, 0, 1);
        stack.prefill(prefill_share(cfg.prefill, cfg.threads, t), args);
        wc.sync();
        wc.counters_restart();
        args.seed = phase_seed(cfg.seed, t, 0);
        stack.timed_until(stop, args, *hists[t]);
    });
    pool.sync();
    std::this_thread::sleep_for(cfg.duration);
    stop.store(true, std::memory_order_relaxed);
    pool.join();

    for (const auto& h : hists) merged.merge_from(*h);
    return merged;
}

double run_churn_any(AnyStack& stack, unsigned threads,
                     std::uint64_t ops_per_thread, std::size_t value_range,
                     std::uint64_t seed) {
    if (threads == 0) return 0.0;
    using Clock = std::chrono::steady_clock;
    // Workers rendezvous among themselves (thread spawn cost must not
    // deflate smoke-scale numbers) and time their own measured phase: a
    // clock read on the coordinating thread can be descheduled behind the
    // workers on an oversubscribed host, shrinking the window to near zero.
    std::vector<CacheAligned<Clock::time_point>> begins(threads);
    std::vector<CacheAligned<Clock::time_point>> ends(threads);
    exec::WorkerPool::run(threads, [&](exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        PhaseArgs args;
        args.value_range = value_range;
        args.mix = kUpdateHeavy;  // balanced push/pop churn
        args.seed = phase_seed(seed, t, 0);
        wc.sync();
        *begins[t] = Clock::now();
        stack.mixed_ops(ops_per_thread, args);
        *ends[t] = Clock::now();
    });
    Clock::time_point start = *begins[0];
    Clock::time_point end = *ends[0];
    for (unsigned t = 1; t < threads; ++t) {
        if (*begins[t] < start) start = *begins[t];
        if (*ends[t] > end) end = *ends[t];
    }
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count();
    const double total =
        static_cast<double>(threads) * static_cast<double>(ops_per_thread);
    return us > 0 ? total / us : 0.0;
}

}  // namespace sec::bench
