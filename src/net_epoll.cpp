// net_epoll.cpp — the always-built epoll(7) event backend plus the backend
// name registry (net/event_loop.hpp). Level-triggered on purpose: the
// server drains a ready socket to EAGAIN inside the batch anyway, and
// level-triggering keeps the "re-notify until drained" invariant without
// edge-trigger resubscription subtleties.
#include <cerrno>
#include <cstring>
#include <string>

#include <sys/epoll.h>
#include <unistd.h>

#include "net/event_loop.hpp"

namespace sec::net {
namespace {

class EpollBackend final : public EventBackend {
public:
    explicit EpollBackend(int epfd) : epfd_(epfd) {}
    ~EpollBackend() override { ::close(epfd_); }

    bool add(int fd, bool want_write, std::string* err) override {
        epoll_event ev{};
        ev.events = interest(want_write);
        ev.data.fd = fd;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            if (err != nullptr) {
                *err = std::string("epoll_ctl(ADD): ") + std::strerror(errno);
            }
            return false;
        }
        return true;
    }

    bool modify(int fd, bool want_write) override {
        epoll_event ev{};
        ev.events = interest(want_write);
        ev.data.fd = fd;
        return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
    }

    void remove(int fd) override {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }

    int wait(IoEvent* out, std::size_t cap, int timeout_ms) override {
        if (cap == 0) return 0;
        epoll_event evs[kBatchCap];
        const int want = static_cast<int>(cap < kBatchCap ? cap : kBatchCap);
        int n;
        do {
            n = ::epoll_wait(epfd_, evs, want, timeout_ms);
        } while (n < 0 && errno == EINTR);
        if (n < 0) return -1;
        for (int i = 0; i < n; ++i) {
            out[i].fd = evs[i].data.fd;
            out[i].readable = (evs[i].events & EPOLLIN) != 0;
            out[i].writable = (evs[i].events & EPOLLOUT) != 0;
            out[i].error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        }
        return n;
    }

    std::string_view name() const noexcept override { return "epoll"; }

private:
    static constexpr std::size_t kBatchCap = 128;

    static std::uint32_t interest(bool want_write) noexcept {
        return EPOLLIN | (want_write ? EPOLLOUT : 0u);
    }

    int epfd_;
};

}  // namespace

namespace detail {

std::unique_ptr<EventBackend> make_epoll_backend(std::string* err) {
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0) {
        if (err != nullptr) {
            *err = std::string("epoll_create1: ") + std::strerror(errno);
        }
        return nullptr;
    }
    return std::make_unique<EpollBackend>(epfd);
}

}  // namespace detail

std::vector<BackendInfo> backend_infos() {
    return {
        {"epoll", "level-triggered readiness batches (always built)", true},
        {"iouring",
         "batched-submission io_uring poll ring (-DSEC_IOURING=ON)",
#if defined(SEC_IOURING)
         true},
#else
         false},
#endif
    };
}

bool backend_known(std::string_view name) noexcept {
    return name == "epoll" || name == "iouring";
}

bool backend_available(std::string_view name) noexcept {
#if defined(SEC_IOURING)
    return backend_known(name);
#else
    return name == "epoll";
#endif
}

std::unique_ptr<EventBackend> make_event_backend(std::string_view name,
                                                 std::string* err) {
    if (name.empty() || name == "epoll") {
        return detail::make_epoll_backend(err);
    }
    if (name == "iouring") {
#if defined(SEC_IOURING)
        return detail::make_iouring_backend(err);
#else
        if (err != nullptr) {
            *err = "backend 'iouring' is not built; configure with "
                   "-DSEC_IOURING=ON";
        }
        return nullptr;
#endif
    }
    if (err != nullptr) {
        *err = "unknown event backend '" + std::string(name) +
               "' (epoll, iouring)";
    }
    return nullptr;
}

}  // namespace sec::net
