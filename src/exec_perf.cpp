// exec_perf.cpp — the raw perf_event_open plumbing behind
// exec/perf_counters.hpp. glibc exposes no wrapper, so the group is built
// with syscall(2) directly; every failure path collapses to "unavailable"
// rather than erroring, because benchmark results must not depend on the
// container's seccomp mood.
#include "exec/perf_counters.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SEC_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#else
#define SEC_HAVE_PERF_EVENT 0
#endif

namespace sec::exec {

#if SEC_HAVE_PERF_EVENT

namespace {

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.type = type;
    attr.size = sizeof attr;
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0;  // group toggles via the leader
    attr.exclude_kernel = 1;               // works under paranoid=2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    // this thread only, any cpu — follows the worker across migrations
    return static_cast<int>(::syscall(__NR_perf_event_open, &attr, 0, -1,
                                      group_fd, 0UL));
}

}  // namespace

PerfGroup::~PerfGroup() { close_all(); }

void PerfGroup::close_all() {
    if (llc_ >= 0) ::close(llc_);
    if (instructions_ >= 0) ::close(instructions_);
    if (leader_ >= 0) ::close(leader_);
    leader_ = instructions_ = llc_ = -1;
}

bool PerfGroup::open() {
    if (leader_ >= 0) return true;
    // Test hook: force the denied path even where the syscall would work.
    if (const char* off = std::getenv("SEC_PERF_DISABLE");
        off != nullptr && off[0] != '\0' && off[0] != '0') {
        return false;
    }
    leader_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader_ < 0) {
        leader_ = -1;
        return false;
    }
    instructions_ =
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader_);
    llc_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader_);
    if (instructions_ < 0 || llc_ < 0) {
        // Partial groups (odd PMU multiplexing limits) aren't worth
        // reporting: three numbers or none.
        close_all();
        return false;
    }
    return true;
}

void PerfGroup::start() {
    if (leader_ < 0) return;
    ::ioctl(leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfGroup::stop_and_read() {
    PerfSample s;
    if (leader_ < 0) return s;
    ::ioctl(leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    // PERF_FORMAT_GROUP layout: nr, then one value per event in creation
    // order (cycles, instructions, llc).
    std::uint64_t buf[1 + 3] = {};
    const ssize_t n = ::read(leader_, buf, sizeof buf);
    if (n != static_cast<ssize_t>(sizeof buf) || buf[0] != 3) return s;
    s.cycles = buf[1];
    s.instructions = buf[2];
    s.llc_misses = buf[3];
    s.valid = true;
    return s;
}

#else  // !SEC_HAVE_PERF_EVENT — non-Linux or headerless build: always deny.

PerfGroup::~PerfGroup() = default;
void PerfGroup::close_all() {}
bool PerfGroup::open() { return false; }
void PerfGroup::start() {}
PerfSample PerfGroup::stop_and_read() { return {}; }

#endif

}  // namespace sec::exec
