// registry.cpp — AlgorithmRegistry (the six stacks + the ElimPool adapter
// self-register here, plus the algo@reclaimer cross-product),
// ReclaimerRegistry (the four sec::reclaim schemes), ScenarioRegistry, and
// the shared scenario pipeline (ScenarioContext helpers, run_scenario, the
// legacy-stub entry point).
#include "workload/registry.hpp"

#include <cstdio>

#include "core/adaptive.hpp"
#include "core/elim_pool.hpp"
#include "reclaim/reclaim.hpp"
#include "sec.hpp"
#include "workload/any_runner.hpp"
#include "workload/bench_json.hpp"

namespace sec::bench {
namespace {

// ---- algorithm factories ---------------------------------------------------

// Containers with no reclamation domain (CcStack/FcStack/FcQueue: combining
// designs reclaim through their combiner, so `domain` is ignored for them).
template <ConcurrentContainer S>
AnyStack make_plain_stack(const StackParams& p) {
    return erase_stack(make_stack<S>(tid_bound(p.threads)));
}

// Thread-bound containers whose reclaimer is baked into S; an external domain
// of the matching scheme is borrowed when the handle carries one.
template <ConcurrentContainer S>
AnyStack make_bound_stack(const StackParams& p) {
    using R = typename S::reclaimer_type;
    if (p.domain != nullptr) {
        if (R* d = p.domain->get<R>()) {
            return erase_stack(
                std::make_unique<S>(tid_bound(p.threads), *d));
        }
    }
    return erase_stack(make_stack<S>(tid_bound(p.threads)));
}

template <reclaim::Reclaimer R>
AnyStack make_sec(const StackParams& p) {
    const Config cfg = effective_stack_config(p);
    if (p.domain != nullptr) {
        if (R* d = p.domain->get<R>()) {
            return erase_stack(std::make_unique<SecStack<Value, R>>(cfg, *d));
        }
    }
    return erase_stack(std::make_unique<SecStack<Value, R>>(cfg));
}

// Same Config plumbing as make_sec; SecQueue itself forces eliminate off.
template <reclaim::Reclaimer R>
AnyStack make_sec_queue(const StackParams& p) {
    const Config cfg = effective_stack_config(p);
    if (p.domain != nullptr) {
        if (R* d = p.domain->get<R>()) {
            return erase_stack(std::make_unique<SecQueue<Value, R>>(cfg, *d));
        }
    }
    return erase_stack(std::make_unique<SecQueue<Value, R>>(cfg));
}

// ElimPool behind the stack concept: the SEC machinery on per-aggregator
// spines, LIFO order dropped (pools don't peek).
template <reclaim::Reclaimer R>
struct PoolStackAdapter {
    using value_type = Value;
    static constexpr ContainerShape kShape = ContainerShape::unordered;
    explicit PoolStackAdapter(Config cfg) : pool(std::move(cfg)) {}
    PoolStackAdapter(Config cfg, R& d) : pool(std::move(cfg), d) {}
    bool push(const value_type& v) { return pool.insert(v); }
    std::optional<value_type> pop() { return pool.extract(); }
    std::optional<value_type> peek() { return std::nullopt; }
    bool put(const value_type& v) { return pool.insert(v); }
    std::optional<value_type> take() { return pool.extract(); }
    void quiesce() { pool.quiesce(); }
    void reclaim_offline() { pool.reclaim_offline(); }
    ElimPool<value_type, R> pool;
};

template <reclaim::Reclaimer R>
AnyStack make_pool(const StackParams& p) {
    const Config cfg = effective_stack_config(p);
    if (p.domain != nullptr) {
        if (R* d = p.domain->get<R>()) {
            return erase_stack(
                std::make_unique<PoolStackAdapter<R>>(cfg, *d));
        }
    }
    return erase_stack(std::make_unique<PoolStackAdapter<R>>(cfg));
}

// SEC plus the sec::adapt runtime controller, as one self-contained stack:
// the TuningState the hot path reads, the stack wired to it, and the
// background controller sampling the stack's degree counters every epoch.
// Member order is the lifetime contract — the controller is declared last,
// so it stops (joins) before the stack and the tuning state it reads die.
struct AdaptiveSecStack {
    using value_type = Value;
    static constexpr ContainerShape kShape = ContainerShape::lifo;

    static Config wire(Config cfg, const TuningState* tuning) {
        cfg.collect_stats = true;  // the controller's feedback signal
        cfg.tuning = tuning;
        return cfg;
    }

    explicit AdaptiveSecStack(const Config& cfg)
        : tuning(static_cast<std::uint32_t>(cfg.num_aggregators),
                 cfg.freezer_backoff_ns),
          stack(wire(cfg, &tuning)),
          controller(
              tuning, [this] { return stack.stats(); },
              cfg.num_aggregators) {
        controller.start();
    }

    bool push(const value_type& v) { return stack.push(v); }
    std::optional<value_type> pop() { return stack.pop(); }
    std::optional<value_type> peek() const { return stack.peek(); }
    bool put(const value_type& v) { return stack.push(v); }
    std::optional<value_type> take() { return stack.pop(); }
    void quiesce() { stack.quiesce(); }
    void reclaim_offline() { stack.reclaim_offline(); }
    StatsSnapshot stats() const { return stack.stats(); }

    TuningState tuning;
    SecStack<Value> stack;
    adapt::AdaptiveController controller;
};

AnyStack make_adaptive_sec(const StackParams& p) {
    return erase_stack(
        std::make_unique<AdaptiveSecStack>(effective_stack_config(p)));
}

// One "BASE@scheme" spec per reclaimer-capable structure: the cross-product
// the `--reclaim` flag and the reclamation scenario's matrix select from.
// TSI is blanket-only (see core/tsi_stack.hpp), so it has no @hp variant.
template <reclaim::Reclaimer R>
void register_reclaim_variants(AlgorithmRegistry& reg, int rank) {
    // Built with append rather than operator+ to dodge GCC 12's -Wrestrict
    // false positive on char* + std::string concatenation.
    auto variant = [](const char* base) {
        std::string s(base);
        s += '@';
        s += R::kName;
        return s;
    };
    auto desc = [](const char* base) {
        std::string s(base);
        s += " over the ";
        s += R::kName;
        s += " reclaimer";
        return s;
    };
    reg.add({variant("EB"), desc("EB"), rank + 0, false, true,
             make_bound_stack<EbStack<Value, R>>});
    reg.add({variant("SEC"), desc("SEC"), rank + 1, false, true,
             make_sec<R>});
    reg.add({variant("TRB"), desc("TRB"), rank + 2, false, true,
             make_bound_stack<TreiberStack<Value, R>>});
    if constexpr (R::kBlanketProtection) {
        reg.add({variant("TSI"), desc("TSI"), rank + 3, false, true,
                 make_bound_stack<TsiStack<Value, R>>});
    }
    reg.add({variant("POOL"), desc("POOL"), rank + 4, false, true,
             make_pool<R>, {}, {}, ContainerShape::unordered});
    reg.add({variant("SEC_Q"), desc("SEC_Q"), rank + 5, false, true,
             make_sec_queue<R>, {}, {}, ContainerShape::fifo});
    reg.add({variant("MS"), desc("MS"), rank + 6, false, true,
             make_bound_stack<MsQueue<Value, R>>, {}, {},
             ContainerShape::fifo});
}

void register_builtin_algorithms(AlgorithmRegistry& reg) {
    // The paper's six plus POOL — EBR-backed, names/columns unchanged.
    reg.add({"CC", "CC-Synch combining stack", 0, true, false,
             make_plain_stack<CcStack<Value>>});
    reg.add({"EB", "Treiber + elimination-backoff collision array", 1, true,
             true, make_bound_stack<EbStack<Value>>});
    reg.add({"FC", "flat-combining stack", 2, true, false,
             make_plain_stack<FcStack<Value>>});
    reg.add({"SEC", "sharded elimination-combining stack (the paper)", 3, true,
             true, make_sec<reclaim::EpochDomain>});
    reg.add({"TRB", "Treiber stack (single-CAS top)", 4, true, true,
             make_bound_stack<TreiberStack<Value>>});
    reg.add({"TSI", "timestamped stack (per-thread pools)", 5, true, true,
             make_bound_stack<TsiStack<Value>>});
    reg.add({"POOL", "ElimPool — SEC machinery, unordered, per-aggregator spines",
             10, false, true, make_pool<reclaim::EpochDomain>, {}, {},
             ContainerShape::unordered});
    // The FIFO competitor trio (ROADMAP item 2): same registry, same
    // reclaim cross-product, selected by the `queue` scenario. Not in the
    // Figure-2 default set — that set is the paper's six stacks.
    reg.add({"SEC_Q",
             "sharded combining FIFO queue — SEC batching, no elimination",
             12, false, true, make_sec_queue<reclaim::EpochDomain>, {}, {},
             ContainerShape::fifo});
    reg.add({"MS", "Michael-Scott queue (CAS per op on head/tail lines)", 13,
             false, true, make_bound_stack<MsQueue<Value>>, {}, {},
             ContainerShape::fifo});
    reg.add({"FCQ", "flat-combining queue", 14, false, false,
             make_plain_stack<FcQueue<Value>>, {}, {}, ContainerShape::fifo});
    // SEC under the sec::adapt runtime controller. base is set to the full
    // name on purpose: adaptivity is not a reclamation scheme, so --reclaim
    // must not silently rebind SEC@adaptive to SEC@hp (it reports "no
    // variant" and drops it instead).
    reg.add({"SEC@adaptive",
             "SEC self-tuning active aggregators + freezer backoff at runtime",
             20, false, false, make_adaptive_sec, "SEC@adaptive", "ebr"});
    // The algo@reclaimer cross-product. The plain names above ARE the @ebr
    // bindings (no duplicate "@ebr" specs), so existing scenario keys and
    // CSV output are unchanged.
    register_reclaim_variants<reclaim::HazardDomain>(reg, 30);
    register_reclaim_variants<reclaim::QsbrDomain>(reg, 40);
    register_reclaim_variants<reclaim::LeakyDomain>(reg, 50);
}

void register_builtin_reclaimers(ReclaimerRegistry& reg) {
    reg.add({"ebr", "epoch-based (DEBRA-style) — the paper's §4 default",
             [] { return reclaim::DomainHandle::make<reclaim::EpochDomain>(); }});
    reg.add({"hp", "hazard pointers — per-thread slots, scan-and-free batches",
             [] { return reclaim::DomainHandle::make<reclaim::HazardDomain>(); }});
    reg.add({"qsbr",
             "quiescent-state — runner announces quiescence per iteration",
             [] { return reclaim::DomainHandle::make<reclaim::QsbrDomain>(); }});
    reg.add({"leak", "no-op baseline — frees only at domain destruction",
             [] { return reclaim::DomainHandle::make<reclaim::LeakyDomain>(); }});
}

}  // namespace

Config effective_stack_config(const StackParams& p) {
    Config cfg = p.config != nullptr ? *p.config : Config{};
    if (p.config == nullptr) cfg.max_threads = tid_bound(p.threads);
    cfg.max_threads =
        std::min(std::max<std::size_t>(cfg.max_threads, 1), kMaxThreads);
    cfg.num_aggregators = std::min(cfg.num_aggregators, cfg.max_threads);
    return cfg;
}

// ---- AlgorithmRegistry -----------------------------------------------------

AlgorithmRegistry::AlgorithmRegistry() {
    register_builtin_algorithms(*this);
    detail::register_shard_algorithms(*this);
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
    static AlgorithmRegistry reg;
    return reg;
}

void AlgorithmRegistry::add(AlgoSpec spec) {
    // Derive the family / scheme split from the "BASE@scheme" naming
    // convention unless the registrant set them explicitly.
    if (spec.base.empty()) {
        const auto at = spec.name.find('@');
        spec.base = spec.name.substr(0, at);
        if (spec.reclaim.empty()) {
            spec.reclaim = at == std::string::npos
                               ? (spec.supports_domain ? "ebr" : "")
                               : spec.name.substr(at + 1);
        }
    }
    const auto pos = std::find_if(
        specs_.begin(), specs_.end(),
        [&spec](const std::unique_ptr<AlgoSpec>& s) {
            return s->legend_rank > spec.legend_rank;
        });
    specs_.insert(pos, std::make_unique<AlgoSpec>(std::move(spec)));
}

const AlgoSpec* AlgorithmRegistry::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s->name == name) return s.get();
    }
    return nullptr;
}

const AlgoSpec* AlgorithmRegistry::find_variant(
    std::string_view base, std::string_view scheme) const {
    if (scheme.empty() || scheme == "ebr") return find(base);
    std::string name(base);
    name += '@';
    name += scheme;
    return find(name);
}

std::vector<const AlgoSpec*> AlgorithmRegistry::all() const {
    std::vector<const AlgoSpec*> out;
    for (const auto& s : specs_) out.push_back(s.get());
    return out;
}

std::vector<const AlgoSpec*> AlgorithmRegistry::default_set() const {
    std::vector<const AlgoSpec*> out;
    for (const auto& s : specs_) {
        if (s->default_set) out.push_back(s.get());
    }
    return out;
}

std::string AlgorithmRegistry::names_csv() const {
    std::string out;
    for (const auto& s : specs_) {
        if (!out.empty()) out += ", ";
        out += s->name;
    }
    return out;
}

// ---- ReclaimerRegistry -----------------------------------------------------

ReclaimerRegistry::ReclaimerRegistry() { register_builtin_reclaimers(*this); }

ReclaimerRegistry& ReclaimerRegistry::instance() {
    static ReclaimerRegistry reg;
    return reg;
}

void ReclaimerRegistry::add(ReclaimerSpec spec) {
    specs_.push_back(std::make_unique<ReclaimerSpec>(std::move(spec)));
}

const ReclaimerSpec* ReclaimerRegistry::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s->name == name) return s.get();
    }
    return nullptr;
}

std::vector<const ReclaimerSpec*> ReclaimerRegistry::all() const {
    std::vector<const ReclaimerSpec*> out;
    for (const auto& s : specs_) out.push_back(s.get());
    return out;
}

std::string ReclaimerRegistry::names_csv() const {
    std::string out;
    for (const auto& s : specs_) {
        if (!out.empty()) out += ", ";
        out += s->name;
    }
    return out;
}

// ---- ScenarioRegistry ------------------------------------------------------

ScenarioRegistry::ScenarioRegistry() {
    detail::register_builtin_scenarios(*this);
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry reg;
    return reg;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
    specs_.push_back(std::make_unique<ScenarioSpec>(std::move(spec)));
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s->name == name) return s.get();
    }
    return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::all() const {
    std::vector<const ScenarioSpec*> out;
    for (const auto& s : specs_) out.push_back(s.get());
    return out;
}

// ---- ScenarioContext pipeline ----------------------------------------------

std::vector<std::string> ScenarioContext::columns() const {
    std::vector<std::string> out;
    for (const AlgoSpec* a : algos) out.push_back(a->name);
    return out;
}

RunConfig ScenarioContext::run_config(unsigned threads,
                                      const OpMix& mix) const {
    return run_config(threads, mix, env);
}

RunConfig ScenarioContext::run_config(unsigned threads, const OpMix& mix,
                                      const EnvConfig& e) const {
    RunConfig cfg;
    cfg.threads = threads;
    cfg.duration = std::chrono::milliseconds(e.duration_ms);
    cfg.prefill = e.prefill;
    cfg.mix = mix;
    cfg.value_range = e.value_range;
    cfg.runs = e.runs;
    cfg.seed = e.seed;
    cfg.pin = topo::parse_pin_policy(e.pin).value_or(topo::PinPolicy::kNone);
    cfg.counters = e.counters;
    return cfg;
}

void ScenarioContext::series(Table& table, const AlgoSpec& algo,
                             const OpMix& mix) const {
    series(table, algo, mix, env);
}

void ScenarioContext::series(Table& table, const AlgoSpec& algo,
                             const OpMix& mix, const EnvConfig& e) const {
    for (unsigned t : e.threads) {
        const RunConfig cfg = run_config(t, mix, e);
        StackParams params;
        params.threads = t;
        const RunResult r =
            run_throughput_any([&] { return algo.make(params); }, cfg);
        table.add(t, algo.name, r.mops);
        progress_line(algo.name, t, r.mops);
        // Hardware-counter evidence next to the Mops cell, when the kernel
        // granted the counter groups. Unit-less csv_row cells: reported by
        // the snapshot compare but never gated (counter rates move with
        // the host's PMU, not with codegen alone).
        if (r.perf.any() && r.total_ops > 0) {
            const double ops = static_cast<double>(r.total_ops);
            const std::string perf_table = std::string(table.name()) + "_perf";
            csv_row(perf_table, std::to_string(t), algo.name + ":cycles_per_op",
                    static_cast<double>(r.perf.cycles) / ops);
            csv_row(perf_table, std::to_string(t), algo.name + ":instr_per_op",
                    static_cast<double>(r.perf.instructions) / ops);
            csv_row(perf_table, std::to_string(t),
                    algo.name + ":llc_miss_per_kop",
                    static_cast<double>(r.perf.llc_misses) * 1000.0 / ops);
        }
    }
}

void ScenarioContext::emit(const Table& table) const {
    table.print();
    if (csv != nullptr) table.write_csv(csv);
    if (json != nullptr) {
        table.for_each_cell([&](unsigned t, const std::string& col, double v) {
            json->add(table.name(), std::to_string(t), col, table.unit(), v);
        });
    }
}

void ScenarioContext::csv_row(std::string_view table, std::string_view key,
                              std::string_view column, double value) const {
    // csv_row cells carry no unit, so the snapshot compare reports but
    // never gates them (workload/bench_json.hpp).
    if (json != nullptr) json->add(table, key, column, "", value);
    if (csv == nullptr) return;
    std::fprintf(csv, "%.*s,%.*s,%.*s,%.4f\n", static_cast<int>(table.size()),
                 table.data(), static_cast<int>(key.size()), key.data(),
                 static_cast<int>(column.size()), column.data(), value);
}

// ---- entry points ----------------------------------------------------------

int run_scenario(std::string_view name, const ScenarioContext& ctx) {
    const ScenarioSpec* spec = ScenarioRegistry::instance().find(name);
    if (spec == nullptr) {
        std::string available;
        for (const ScenarioSpec* s : ScenarioRegistry::instance().all()) {
            if (!available.empty()) available += ", ";
            available += s->name;
        }
        std::fprintf(stderr, "secbench: unknown scenario '%.*s'; available: %s\n",
                     static_cast<int>(name.size()), name.data(),
                     available.c_str());
        return 2;
    }
    print_preamble(std::string("secbench ") + spec->name + " — " + spec->title,
                   ctx.env);
    const int rc = spec->run(ctx);
    // Decorrelate the NEXT scenario's per-worker RNG streams from this
    // one's (see phase_seed): advancing after the body keeps stream 0 — and
    // with it the historical seeding — for the first scenario of every
    // invocation and for every direct runner call in the tests.
    advance_seed_stream();
    return rc;
}

int run_legacy_scenario(std::string_view name) {
    ScenarioContext ctx;
    ctx.env = EnvConfig::load();
    ctx.algos = AlgorithmRegistry::instance().default_set();
    return run_scenario(name, ctx);
}

}  // namespace sec::bench
