// registry.cpp — AlgorithmRegistry (the six stacks + the ElimPool adapter
// self-register here), ScenarioRegistry, and the shared scenario pipeline
// (ScenarioContext helpers, run_scenario, the legacy-stub entry point).
#include "workload/registry.hpp"

#include <cstdio>

#include "core/elim_pool.hpp"
#include "sec.hpp"
#include "workload/any_runner.hpp"

namespace sec::bench {
namespace {

// ---- algorithm factories ---------------------------------------------------

// A Config honouring params: explicit config wins; otherwise default Config
// sized to the run's thread bound. Aggregators never exceed max_threads.
Config effective_config(const StackParams& p) {
    Config cfg = p.config != nullptr ? *p.config : Config{};
    if (p.config == nullptr) cfg.max_threads = tid_bound(p.threads);
    cfg.max_threads =
        std::min(std::max<std::size_t>(cfg.max_threads, 1), kMaxThreads);
    cfg.num_aggregators = std::min(cfg.num_aggregators, cfg.max_threads);
    return cfg;
}

// Stacks constructed from a thread bound, with or without an external EBR
// domain (CcStack/FcStack have no domain constructor — combining designs
// reclaim through their combiner, so `domain` is ignored for them).
template <ConcurrentStack S>
AnyStack make_bound_stack(const StackParams& p) {
    if constexpr (std::is_constructible_v<S, std::size_t, ebr::Domain&>) {
        if (p.domain != nullptr) {
            return erase_stack(
                std::make_unique<S>(tid_bound(p.threads), *p.domain));
        }
    }
    return erase_stack(make_stack<S>(tid_bound(p.threads)));
}

AnyStack make_sec(const StackParams& p) {
    const Config cfg = effective_config(p);
    if (p.domain != nullptr) {
        return erase_stack(std::make_unique<SecStack<Value>>(cfg, *p.domain));
    }
    return erase_stack(std::make_unique<SecStack<Value>>(cfg));
}

// ElimPool behind the stack concept: the SEC machinery on per-aggregator
// spines, LIFO order dropped (pools don't peek).
struct PoolStackAdapter {
    using value_type = Value;
    explicit PoolStackAdapter(Config cfg) : pool(std::move(cfg)) {}
    bool push(const value_type& v) { return pool.insert(v); }
    std::optional<value_type> pop() { return pool.extract(); }
    std::optional<value_type> peek() { return std::nullopt; }
    ElimPool<value_type> pool;
};

AnyStack make_pool(const StackParams& p) {
    return erase_stack(std::make_unique<PoolStackAdapter>(effective_config(p)));
}

void register_builtin_algorithms(AlgorithmRegistry& reg) {
    reg.add({"CC", "CC-Synch combining stack", 0, true, false,
             make_bound_stack<CcStack<Value>>});
    reg.add({"EB", "Treiber + elimination-backoff collision array", 1, true,
             true, make_bound_stack<EbStack<Value>>});
    reg.add({"FC", "flat-combining stack", 2, true, false,
             make_bound_stack<FcStack<Value>>});
    reg.add({"SEC", "sharded elimination-combining stack (the paper)", 3, true,
             true, make_sec});
    reg.add({"TRB", "Treiber stack (single-CAS top)", 4, true, true,
             make_bound_stack<TreiberStack<Value>>});
    reg.add({"TSI", "timestamped stack (per-thread pools)", 5, true, true,
             make_bound_stack<TsiStack<Value>>});
    reg.add({"POOL", "ElimPool — SEC machinery, unordered, per-aggregator spines",
             10, false, false, make_pool});
}

}  // namespace

// ---- AlgorithmRegistry -----------------------------------------------------

AlgorithmRegistry::AlgorithmRegistry() { register_builtin_algorithms(*this); }

AlgorithmRegistry& AlgorithmRegistry::instance() {
    static AlgorithmRegistry reg;
    return reg;
}

void AlgorithmRegistry::add(AlgoSpec spec) {
    const auto pos = std::find_if(
        specs_.begin(), specs_.end(),
        [&spec](const std::unique_ptr<AlgoSpec>& s) {
            return s->legend_rank > spec.legend_rank;
        });
    specs_.insert(pos, std::make_unique<AlgoSpec>(std::move(spec)));
}

const AlgoSpec* AlgorithmRegistry::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s->name == name) return s.get();
    }
    return nullptr;
}

std::vector<const AlgoSpec*> AlgorithmRegistry::all() const {
    std::vector<const AlgoSpec*> out;
    for (const auto& s : specs_) out.push_back(s.get());
    return out;
}

std::vector<const AlgoSpec*> AlgorithmRegistry::default_set() const {
    std::vector<const AlgoSpec*> out;
    for (const auto& s : specs_) {
        if (s->default_set) out.push_back(s.get());
    }
    return out;
}

std::string AlgorithmRegistry::names_csv() const {
    std::string out;
    for (const auto& s : specs_) {
        if (!out.empty()) out += ", ";
        out += s->name;
    }
    return out;
}

// ---- ScenarioRegistry ------------------------------------------------------

ScenarioRegistry::ScenarioRegistry() {
    detail::register_builtin_scenarios(*this);
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry reg;
    return reg;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
    specs_.push_back(std::make_unique<ScenarioSpec>(std::move(spec)));
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s->name == name) return s.get();
    }
    return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::all() const {
    std::vector<const ScenarioSpec*> out;
    for (const auto& s : specs_) out.push_back(s.get());
    return out;
}

// ---- ScenarioContext pipeline ----------------------------------------------

std::vector<std::string> ScenarioContext::columns() const {
    std::vector<std::string> out;
    for (const AlgoSpec* a : algos) out.push_back(a->name);
    return out;
}

RunConfig ScenarioContext::run_config(unsigned threads,
                                      const OpMix& mix) const {
    return run_config(threads, mix, env);
}

RunConfig ScenarioContext::run_config(unsigned threads, const OpMix& mix,
                                      const EnvConfig& e) const {
    RunConfig cfg;
    cfg.threads = threads;
    cfg.duration = std::chrono::milliseconds(e.duration_ms);
    cfg.prefill = e.prefill;
    cfg.mix = mix;
    cfg.value_range = e.value_range;
    cfg.runs = e.runs;
    return cfg;
}

void ScenarioContext::series(Table& table, const AlgoSpec& algo,
                             const OpMix& mix) const {
    series(table, algo, mix, env);
}

void ScenarioContext::series(Table& table, const AlgoSpec& algo,
                             const OpMix& mix, const EnvConfig& e) const {
    for (unsigned t : e.threads) {
        const RunConfig cfg = run_config(t, mix, e);
        StackParams params;
        params.threads = t;
        const RunResult r =
            run_throughput_any([&] { return algo.make(params); }, cfg);
        table.add(t, algo.name, r.mops);
        progress_line(algo.name, t, r.mops);
    }
}

void ScenarioContext::emit(const Table& table) const {
    table.print();
    if (csv != nullptr) table.write_csv(csv);
}

void ScenarioContext::csv_row(std::string_view table, std::string_view key,
                              std::string_view column, double value) const {
    if (csv == nullptr) return;
    std::fprintf(csv, "%.*s,%.*s,%.*s,%.4f\n", static_cast<int>(table.size()),
                 table.data(), static_cast<int>(key.size()), key.data(),
                 static_cast<int>(column.size()), column.data(), value);
}

// ---- entry points ----------------------------------------------------------

int run_scenario(std::string_view name, const ScenarioContext& ctx) {
    const ScenarioSpec* spec = ScenarioRegistry::instance().find(name);
    if (spec == nullptr) {
        std::string available;
        for (const ScenarioSpec* s : ScenarioRegistry::instance().all()) {
            if (!available.empty()) available += ", ";
            available += s->name;
        }
        std::fprintf(stderr, "secbench: unknown scenario '%.*s'; available: %s\n",
                     static_cast<int>(name.size()), name.data(),
                     available.c_str());
        return 2;
    }
    print_preamble(std::string("secbench ") + spec->name + " — " + spec->title,
                   ctx.env);
    return spec->run(ctx);
}

int run_legacy_scenario(std::string_view name) {
    ScenarioContext ctx;
    ctx.env = EnvConfig::load();
    ctx.algos = AlgorithmRegistry::instance().default_set();
    return run_scenario(name, ctx);
}

}  // namespace sec::bench
