// epoch_core.cpp — epoch advancement and limbo sweeping for the grace-period
// engine behind EpochDomain (EBR) and QsbrDomain.
#include "reclaim/epoch_core.hpp"

namespace sec::reclaim::detail {

EpochCore::~EpochCore() {
    for (std::size_t i = 0; i < kMaxThreads; ++i) sweep(i, kInactive);
}

void EpochCore::validated_announce(std::atomic<std::uint64_t>& slot) noexcept {
    // Announce the current epoch; re-read to close the window where the
    // global epoch moves between our load and our announcement (an advancing
    // peer that sampled our slot as inactive may already be sweeping).
    std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    for (;;) {
        slot.store(e, std::memory_order_seq_cst);
        const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
    }
}

void EpochCore::enter() noexcept {
    Reservation& res = reservations_[sec::detail::tid()];
    if (res.nesting++ > 0) return;
    validated_announce(res.epoch);
}

void EpochCore::exit() noexcept {
    Reservation& res = reservations_[sec::detail::tid()];
    if (--res.nesting > 0) return;
    res.epoch.store(kInactive, std::memory_order_release);
}

void EpochCore::quiescent() noexcept {
    Reservation& res = reservations_[sec::detail::tid()];
    if (res.epoch.load(std::memory_order_relaxed) == kInactive) {
        // Offline -> online needs the full validated announce: while
        // inactive we were invisible to advancement, exactly like an EBR
        // enter. Once online the slot only ever moves forward, so the
        // refresh below needs no validation loop.
        validated_announce(res.epoch);
        return;
    }
    res.epoch.store(global_epoch_.load(std::memory_order_acquire),
                    std::memory_order_seq_cst);
}

void EpochCore::set_offline() noexcept {
    reservations_[sec::detail::tid()].epoch.store(kInactive,
                                                  std::memory_order_release);
}

bool EpochCore::try_advance() noexcept {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const Reservation& res : reservations_) {
        const std::uint64_t v = res.epoch.load(std::memory_order_seq_cst);
        if (v != kInactive && v != e) return false;  // straggler in an old epoch
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_acq_rel);
    return true;  // someone advanced past e (us or a peer)
}

bool EpochCore::any_active() const noexcept {
    for (const Reservation& res : reservations_) {
        if (res.epoch.load(std::memory_order_seq_cst) != kInactive) return true;
    }
    return false;
}

void EpochCore::sweep(std::size_t i, std::uint64_t limit) {
    LimboList& list = limbo_[i];
    Chunk* reclaim = nullptr;
    {
        SpinLockGuard lock(list.lock);
        if (limit == kInactive) {
            reclaim = list.head;
            list.head = list.tail = nullptr;
        } else {
            // Chunks are oldest-first and epochs non-decreasing, so detach
            // whole head chunks whose NEWEST entry already cleared the
            // grace period. The bound is strict (`+ 2 <`): the retire-time
            // epoch read may lag the global epoch by one on weakly-ordered
            // hardware, so two observed advances are not proof of a full
            // grace period for a stamp that was already stale.
            Chunk** out = &reclaim;
            while (list.head != nullptr && list.head->count > 0 &&
                   list.head->entries[list.head->count - 1].epoch + 2 <
                       limit) {
                Chunk* chunk = list.head;
                list.head = chunk->next;
                if (list.head == nullptr) list.tail = nullptr;
                chunk->next = nullptr;
                *out = chunk;
                out = &chunk->next;
            }
        }
    }
    std::uint64_t freed = 0;
    while (reclaim != nullptr) {
        Chunk* next = reclaim->next;
        for (std::uint32_t k = 0; k < reclaim->count; ++k) {
            reclaim->entries[k].deleter(reclaim->entries[k].p);
        }
        freed += reclaim->count;
        delete reclaim;
        reclaim = next;
    }
    counters_.note_freed(freed);
}

void EpochCore::retire_erased(void* p, void (*deleter)(void*)) {
    const std::size_t id = sec::detail::tid();
    const std::uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
    // Count before the entry is appended (and thus freeable by a concurrent
    // sweep); see Accounting::note_retired.
    counters_.note_retired();
    bool scan = false;
    {
        LimboList& list = limbo_[id];
        SpinLockGuard lock(list.lock);
        if (list.tail == nullptr || list.tail->count == kChunkSize) {
            auto* chunk = new Chunk;  // default-init: skip zeroing entries[]
            if (list.tail != nullptr) {
                list.tail->next = chunk;
            } else {
                list.head = chunk;
            }
            list.tail = chunk;
        }
        list.tail->entries[list.tail->count++] = {p, deleter, epoch};
        if (++list.retires_since_scan >= kScanInterval) {
            list.retires_since_scan = 0;
            scan = true;
        }
    }
    if (scan) {
        try_advance();
        sweep(id, global_epoch_.load(std::memory_order_acquire));
    }
}

void EpochCore::drain_all() {
    // A handful of advance attempts walks the 3-epoch pipeline fully forward
    // when there are no (or only current-epoch) readers.
    for (int i = 0; i < 4; ++i) try_advance();
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    const bool quiescent = !any_active();
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
        sweep(i, quiescent ? kInactive : e);
    }
}

}  // namespace sec::reclaim::detail
