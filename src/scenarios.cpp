// scenarios.cpp — the paper's experiments as registry-driven scenario
// functions. Each is a short composition of the shared ScenarioContext
// pipeline (selection, thread-grid series, Table/CSV emission); the per-
// figure binaries under bench/ are two-line stubs over these, and
// bench/secbench.cpp drives them from the command line.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/elim_pool.hpp"
#include "core/sharded_stack.hpp"
#include "exec/topology.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "reclaim/reclaim.hpp"
#include "sec.hpp"
#include "workload/any_runner.hpp"
#include "workload/histogram.hpp"
#include "workload/registry.hpp"
#include "workload/service.hpp"
#include "workload/sweep.hpp"

namespace sec::bench {
namespace {

// Prefill proportional to expected pop volume so pop-heavy windows measure
// real pops rather than EMPTY returns (the paper's fixed 1000-node prefill
// drains within milliseconds; see EXPERIMENTS.md).
EnvConfig with_pop_prefill(EnvConfig env) {
    const std::size_t volume = static_cast<std::size_t>(
        25e6 * (static_cast<double>(env.duration_ms) / 1000.0) * 1.3);
    env.prefill = std::min<std::size_t>(
        std::max<std::size_t>(env.prefill, volume), 40'000'000);
    return env;
}

// SEC Config for one grid point with explicit knob overrides.
Config sec_config(unsigned threads) {
    Config cfg;
    cfg.max_threads = tid_bound(threads);
    cfg.num_aggregators = std::min(cfg.num_aggregators, cfg.max_threads);
    return cfg;
}

// ---- fig2: EXP1 — throughput vs thread count, 3 mixes, all algorithms ------

int fig2(const ScenarioContext& ctx) {
    for (const OpMix& mix : kStandardMixes) {
        Table table(std::string("fig2_") + std::string(mix.name),
                    ctx.columns());
        std::fprintf(stderr, "workload %s (%u%% updates)\n", mix.name.data(),
                     mix.update_pct());
        for (const AlgoSpec* a : ctx.algos) ctx.series(table, *a, mix);
        ctx.emit(table);
    }
    return 0;
}

// ---- queue: the FIFO matrix — fig2's op-mix grid over queue algorithms -----

int queue(const ScenarioContext& ctx) {
    // Run on the FIFO members of the current selection. When the caller left
    // the (all-lifo) Figure-2 default set in place — `secbench all`, plain
    // `--scenario queue` — fall back to the queue trio; an explicitly
    // shape-mixed --algos set never gets this far (the driver rejects it).
    std::vector<const AlgoSpec*> fifo;
    for (const AlgoSpec* a : ctx.algos) {
        if (a->shape == ContainerShape::fifo) fifo.push_back(a);
    }
    if (fifo.empty()) {
        const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
        for (const char* name : {"SEC_Q", "MS", "FCQ"}) {
            if (const AlgoSpec* a = reg.find(name)) fifo.push_back(a);
        }
        std::fprintf(stderr,
                     "queue: no FIFO algorithms selected; using the default "
                     "trio (SEC_Q, MS, FCQ)\n");
    }
    ScenarioContext qctx = ctx;
    qctx.algos = fifo;
    for (const OpMix& mix : kStandardMixes) {
        Table table(std::string("queue_") + std::string(mix.name),
                    qctx.columns());
        std::fprintf(stderr, "workload %s (%u%% updates)\n", mix.name.data(),
                     mix.update_pct());
        for (const AlgoSpec* a : qctx.algos) qctx.series(table, *a, mix);
        qctx.emit(table);
    }
    return 0;
}

// ---- fig3: EXP2 — asymmetric push-only / pop-only workloads ----------------

int fig3(const ScenarioContext& ctx) {
    {
        Table table("fig3_push_only", ctx.columns());
        std::fprintf(stderr, "workload push-only\n");
        for (const AlgoSpec* a : ctx.algos) ctx.series(table, *a, kPushOnly);
        ctx.emit(table);
    }
    {
        const EnvConfig pop_env = with_pop_prefill(ctx.env);
        Table table("fig3_pop_only", ctx.columns());
        std::fprintf(stderr, "workload pop-only (prefill=%zu)\n",
                     pop_env.prefill);
        for (const AlgoSpec* a : ctx.algos) {
            ctx.series(table, *a, kPopOnly, pop_env);
        }
        ctx.emit(table);
    }
    return 0;
}

// ---- fig4: EXP3 — SEC self-comparison with 1..5 aggregators ----------------

void fig4_series(const ScenarioContext& ctx, Table& table, const OpMix& mix,
                 const EnvConfig& env, const AlgoSpec& sec_algo) {
    for (std::size_t aggs = 1; aggs <= kMaxAggregators; ++aggs) {
        const std::string column = "SEC_Agg" + std::to_string(aggs);
        for (unsigned t : env.threads) {
            Config cfg = sec_config(t);
            cfg.num_aggregators = std::min<std::size_t>(aggs, cfg.max_threads);
            StackParams params;
            params.threads = t;
            params.config = &cfg;
            const RunResult r = run_throughput_any(
                [&] { return sec_algo.make(params); },
                ctx.run_config(t, mix, env));
            table.add(t, column, r.mops);
            progress_line(column, t, r.mops);
        }
    }
}

int fig4(const ScenarioContext& ctx) {
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    std::vector<std::string> columns;
    for (std::size_t a = 1; a <= kMaxAggregators; ++a) {
        columns.push_back("SEC_Agg" + std::to_string(a));
    }
    for (const OpMix& mix : kStandardMixes) {
        Table table(std::string("fig4_") + std::string(mix.name), columns);
        std::fprintf(stderr, "workload %s\n", mix.name.data());
        fig4_series(ctx, table, mix, ctx.env, sec_algo);
        ctx.emit(table);
    }
    {
        Table table("fig4_push_only", columns);
        std::fprintf(stderr, "workload push-only\n");
        fig4_series(ctx, table, kPushOnly, ctx.env, sec_algo);
        ctx.emit(table);
    }
    {
        Table table("fig4_pop_only", columns);
        std::fprintf(stderr, "workload pop-only\n");
        fig4_series(ctx, table, kPopOnly, with_pop_prefill(ctx.env), sec_algo);
        ctx.emit(table);
    }
    return 0;
}

// ---- table1: EXP4 — SEC degree metrics -------------------------------------

struct DegreeRow {
    double batching = 0;
    double elim_pct = 0;
    double comb_pct = 0;
};

DegreeRow table1_measure(const ScenarioContext& ctx, const AlgoSpec& sec_algo,
                         const OpMix& mix) {
    DegreeRow row;
    unsigned points = 0;
    for (unsigned t : ctx.env.threads) {
        Config cfg = sec_config(t);
        cfg.collect_stats = true;
        StackParams params;
        params.threads = t;
        params.config = &cfg;
        AnyStack stack = sec_algo.make(params);

        RunConfig rcfg = ctx.run_config(t, mix);
        rcfg.runs = 1;
        (void)run_throughput_any(stack, rcfg);

        const StatsSnapshot s = stack.stats();
        if (s.batches == 0) continue;
        row.batching += s.batching_degree();
        row.elim_pct += s.elimination_pct();
        row.comb_pct += s.combining_pct();
        ++points;
        std::fprintf(stderr, "  %s t=%-4u batch=%.1f elim=%.0f%% comb=%.0f%%\n",
                     mix.name.data(), t, s.batching_degree(),
                     s.elimination_pct(), s.combining_pct());
    }
    if (points > 0) {
        row.batching /= points;
        row.elim_pct /= points;
        row.comb_pct /= points;
    }
    return row;
}

int table1(const ScenarioContext& ctx) {
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    DegreeRow rows[3];
    int i = 0;
    for (const OpMix& mix : kStandardMixes) {
        rows[i++] = table1_measure(ctx, sec_algo, mix);
    }

    std::printf("\n== Table 1: SEC degree metrics ==\n");
    std::printf("%-18s %10s %10s %10s\n", "Workload ->", "100% upd", "50% upd",
                "10% upd");
    std::printf("%-18s %10.1f %10.1f %10.1f\n", "Batching Degree",
                rows[0].batching, rows[1].batching, rows[2].batching);
    std::printf("%-18s %9.0f%% %9.0f%% %9.0f%%\n", "%Elimination",
                rows[0].elim_pct, rows[1].elim_pct, rows[2].elim_pct);
    std::printf("%-18s %9.0f%% %9.0f%% %9.0f%%\n", "%Combining",
                rows[0].comb_pct, rows[1].comb_pct, rows[2].comb_pct);
    for (i = 0; i < 3; ++i) {
        std::printf("CSV,table1,%s,batching,%.2f\n",
                    kStandardMixes[i].name.data(), rows[i].batching);
        std::printf("CSV,table1,%s,elimination_pct,%.2f\n",
                    kStandardMixes[i].name.data(), rows[i].elim_pct);
        std::printf("CSV,table1,%s,combining_pct,%.2f\n",
                    kStandardMixes[i].name.data(), rows[i].comb_pct);
        ctx.csv_row("table1", kStandardMixes[i].name, "batching",
                    rows[i].batching);
        ctx.csv_row("table1", kStandardMixes[i].name, "elimination_pct",
                    rows[i].elim_pct);
        ctx.csv_row("table1", kStandardMixes[i].name, "combining_pct",
                    rows[i].comb_pct);
    }
    return 0;
}

// ---- latency: per-op latency percentiles (paper §1 fairness claim) ---------

int latency(const ScenarioContext& ctx) {
    std::printf("# columns: mean, p50, p99, p999 per-op latency, upd100 mix\n");
    for (unsigned t : ctx.env.threads) {
        for (const AlgoSpec* a : ctx.algos) {
            StackParams params;
            params.threads = t;
            AnyStack stack = a->make(params);
            RunConfig cfg = ctx.run_config(t, kUpdateHeavy);
            const LatencyHistogram merged = run_latency_any(stack, cfg);
            std::printf(
                "%-6s t=%-4u ops=%-10llu mean=%8.0fns p50=%8lluns "
                "p99=%8lluns p999=%9lluns\n",
                a->name.c_str(), t,
                static_cast<unsigned long long>(merged.total()),
                merged.mean_ns(),
                static_cast<unsigned long long>(merged.quantile_ns(0.50)),
                static_cast<unsigned long long>(merged.quantile_ns(0.99)),
                static_cast<unsigned long long>(merged.quantile_ns(0.999)));
            std::printf("CSV,latency_upd100,%s,%u,%.0f,%llu,%llu,%llu\n",
                        a->name.c_str(), t, merged.mean_ns(),
                        static_cast<unsigned long long>(merged.quantile_ns(0.50)),
                        static_cast<unsigned long long>(merged.quantile_ns(0.99)),
                        static_cast<unsigned long long>(
                            merged.quantile_ns(0.999)));
            const std::string key = a->name + "@t" + std::to_string(t);
            ctx.csv_row("latency_upd100", key, "mean_ns", merged.mean_ns());
            ctx.csv_row("latency_upd100", key, "p50_ns",
                        static_cast<double>(merged.quantile_ns(0.50)));
            ctx.csv_row("latency_upd100", key, "p99_ns",
                        static_cast<double>(merged.quantile_ns(0.99)));
            ctx.csv_row("latency_upd100", key, "p999_ns",
                        static_cast<double>(merged.quantile_ns(0.999)));
        }
    }
    return 0;
}

// ---- reclamation: algo x reclaimer scheme-comparison matrix (paper §4) -----

// One churn run of `spec` over a fresh domain of `scheme`; reports what the
// amortised in-run path achieved, the limbo high-water mark, and the cost of
// draining the backlog once the workers are quiet.
void reclamation_cell(const ScenarioContext& ctx, const ReclaimerSpec& scheme,
                      const AlgoSpec& spec, unsigned t, std::uint64_t ops,
                      std::uint64_t& scheme_hwm) {
    reclaim::DomainHandle domain = scheme.make_domain();
    double mops = 0;
    reclaim::Stats before;
    double drain_us = 0;
    reclaim::Stats after;
    {
        StackParams params;
        params.threads = t;
        params.domain = &domain;
        AnyStack stack = spec.make(params);
        mops = run_churn_any(stack, t, ops, ctx.env.value_range, ctx.env.seed);
        // Snapshot BEFORE draining: what the amortised path achieved.
        before = domain.stats();
        const auto d0 = std::chrono::steady_clock::now();
        domain.drain_all();
        const auto d1 = std::chrono::steady_clock::now();
        drain_us =
            std::chrono::duration<double, std::micro>(d1 - d0).count();
        after = domain.stats();
    }
    scheme_hwm = std::max(scheme_hwm, before.limbo_hwm);

    const double freed_pct =
        before.retired ? 100.0 * static_cast<double>(before.freed) /
                             static_cast<double>(before.retired)
                       : 100.0;
    std::printf(
        "%-10s t=%-3u %7.2f Mops/s retired=%-9llu freed-in-run=%-9llu "
        "(%5.1f%%) limbo-hwm=%-8llu drain=%8.1fus limbo-after=%llu\n",
        spec.name.c_str(), t, mops,
        static_cast<unsigned long long>(before.retired),
        static_cast<unsigned long long>(before.freed), freed_pct,
        static_cast<unsigned long long>(before.limbo_hwm), drain_us,
        static_cast<unsigned long long>(after.in_limbo()));
    std::printf("CSV,reclamation,%s,%u,%llu,%llu,%llu\n", spec.name.c_str(),
                t, static_cast<unsigned long long>(before.retired),
                static_cast<unsigned long long>(before.freed),
                static_cast<unsigned long long>(before.in_limbo()));
    const std::string key = spec.name + "@t" + std::to_string(t);
    ctx.csv_row("reclamation", key, "retired",
                static_cast<double>(before.retired));
    // Historical column name for the default scheme's rows; the matrix rows
    // get the scheme-neutral name.
    ctx.csv_row("reclamation", key,
                scheme.name == "ebr" ? "freed_by_epochs" : "freed_in_run",
                static_cast<double>(before.freed));
    ctx.csv_row("reclamation", key, "limbo_at_quiesce",
                static_cast<double>(before.in_limbo()));
    ctx.csv_row("reclamation", key, "limbo_hwm",
                static_cast<double>(before.limbo_hwm));
    ctx.csv_row("reclamation", key, "drain_us", drain_us);
    ctx.csv_row("reclamation", key, "limbo_after_drain",
                static_cast<double>(after.in_limbo()));
    ctx.csv_row("reclamation", key, "churn_mops", mops);
}

int reclamation(const ScenarioContext& ctx) {
    const std::uint64_t ops =
        static_cast<std::uint64_t>(ctx.env.duration_ms) * 2000;
    std::printf(
        "# balanced push/pop churn per reclamation scheme; 'freed-in-run' is\n"
        "# reclamation DURING the run (amortised advancement / scan batches),\n"
        "# 'limbo-hwm' the peak unreclaimed backlog, 'drain' the cost of\n"
        "# drain_all() once the workers are quiet (a no-op for 'leak')\n");
    const std::vector<unsigned> grid =
        ctx.smoke ? std::vector<unsigned>{2u} : std::vector<unsigned>{4u, 16u};
    // The selected algorithms' families, deduped in legend order (selecting
    // "SEC@hp" measures the SEC family across every scheme).
    std::vector<std::string> bases;
    for (const AlgoSpec* a : ctx.algos) {
        if (std::find(bases.begin(), bases.end(), a->base) == bases.end()) {
            bases.push_back(a->base);
        }
    }
    auto& algo_reg = AlgorithmRegistry::instance();
    for (const ReclaimerSpec* scheme : ReclaimerRegistry::instance().all()) {
        // --reclaim narrows the matrix to the requested scheme (the
        // selection was already rebound to that scheme's variants, so
        // sweeping the others would mislabel the comparison).
        if (!ctx.reclaim.empty() && scheme->name != ctx.reclaim) continue;
        std::fprintf(stderr, "scheme %s — %s\n", scheme->name.c_str(),
                     scheme->description.c_str());
        std::uint64_t scheme_hwm = 0;
        unsigned cells = 0;
        for (const std::string& base : bases) {
            const AlgoSpec* spec = algo_reg.find_variant(base, scheme->name);
            if (spec == nullptr || !spec->supports_domain) continue;
            for (unsigned t : grid) {
                reclamation_cell(ctx, *scheme, *spec, t, ops, scheme_hwm);
                ++cells;
            }
        }
        if (cells > 0) {
            std::printf("# scheme %-5s limbo high-water max=%llu over %u runs\n",
                        scheme->name.c_str(),
                        static_cast<unsigned long long>(scheme_hwm), cells);
            ctx.csv_row("reclamation_summary", scheme->name, "limbo_hwm_max",
                        static_cast<double>(scheme_hwm));
        }
    }
    return 0;
}

// ---- sweep: (agg x backoff) tuning-surface cross-product (DESIGN.md §5) ----

int sweep(const ScenarioContext& ctx) {
    std::string error;
    // Default grid: small but 2-D, so the scenario is meaningful (and
    // cheap) even without --sweep; smoke shrinks it further.
    const std::string raw =
        !ctx.sweep_spec.empty()
            ? ctx.sweep_spec
            : (ctx.smoke ? std::string("agg=1:2,backoff=0:256")
                         : std::string("agg=1:4,backoff=0:1024"));
    const auto spec = SweepSpec::parse(raw, &error);
    if (!spec) {
        std::fprintf(stderr, "secbench: %s\n", error.c_str());
        return 2;
    }
    return run_sweep(ctx, *spec);
}

// ---- tuning: static-best vs adaptive on a phase-shifting workload (§5) -----

// The workload no single static config wins: push-heavy, then mixed, then
// pop-heavy inside ONE measured window. The scenario reports each selected
// algorithm on it, plus the best static SEC over all aggregator counts, and
// closes with the adaptive/static-best ratio when SEC@adaptive is selected.
int tuning(const ScenarioContext& ctx) {
    static const std::vector<OpMix> kShiftingPhases = {
        {"push_heavy", 80, 20},
        {"mixed", 50, 50},
        {"pop_heavy", 20, 80},
    };
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    std::vector<std::string> columns = ctx.columns();
    columns.push_back("SEC_static_best");
    Table table("tuning_phase_shift", columns);
    std::fprintf(stderr,
                 "phase-shifting workload: push80/20 -> 50/50 -> 20/80 in "
                 "one window\n");
    // Worst-case adaptive/static-best ratio across thread counts: adaptive
    // must hold up at every operating point, so maxima taken at different
    // thread counts must never be compared with each other.
    double worst_ratio = -1.0;
    double worst_adaptive = 0.0, worst_static = 0.0;
    for (unsigned t : ctx.env.threads) {
        RunConfig rcfg = ctx.run_config(t, kUpdateHeavy);
        // Static-best is an argmax over noisy samples, which inflates with
        // single-run noise; at least two runs per data point keeps the
        // comparison against the adaptive mean honest on jittery hosts.
        rcfg.runs = std::max(rcfg.runs, 2u);
        // Deep enough that the pop-heavy tail can't drain the stack: a
        // drained window degenerates into measuring EMPTY-pop returns,
        // whose much higher rate turns "did the drain finish in time" into
        // the dominant (and luck-driven) term. ~60% of a 25 Mops/s
        // pop-heavy sub-window is the worst-case net drain.
        const auto net_drain = static_cast<std::size_t>(
            25e6 * (static_cast<double>(ctx.env.duration_ms) / 1000.0) * 0.6);
        rcfg.prefill = std::min<std::size_t>(
            std::max(rcfg.prefill, net_drain), 40'000'000);
        double adaptive_at_t = -1.0;
        for (const AlgoSpec* a : ctx.algos) {
            StackParams params;
            params.threads = t;
            const RunResult r = run_phased_any(
                [&] { return a->make(params); }, rcfg, kShiftingPhases);
            table.add(t, a->name, r.mops);
            progress_line(a->name, t, r.mops);
            if (a->name == "SEC@adaptive") adaptive_at_t = r.mops;
        }
        // Static baseline: every aggregator count, default backoff — the
        // best hand-pick a user could freeze into a Config.
        double best = 0.0;
        std::size_t best_aggs = 1;
        for (std::size_t aggs = 1; aggs <= kMaxAggregators; ++aggs) {
            Config cfg = sec_config(t);
            cfg.num_aggregators = std::min<std::size_t>(aggs, cfg.max_threads);
            StackParams params;
            params.threads = t;
            params.config = &cfg;
            const RunResult r = run_phased_any(
                [&] { return sec_algo.make(params); }, rcfg, kShiftingPhases);
            if (r.mops > best) {
                best = r.mops;
                best_aggs = aggs;
            }
        }
        table.add(t, "SEC_static_best", best);
        std::fprintf(stderr, "  t=%-4u static best: agg=%zu (%.2f Mops/s)\n",
                     t, best_aggs, best);
        if (adaptive_at_t >= 0.0 && best > 0.0) {
            const double ratio = adaptive_at_t / best;
            ctx.csv_row("tuning_summary", std::to_string(t),
                        "adaptive_over_static_best", ratio);
            if (worst_ratio < 0.0 || ratio < worst_ratio) {
                worst_ratio = ratio;
                worst_adaptive = adaptive_at_t;
                worst_static = best;
            }
        }
    }
    ctx.emit(table);
    if (worst_ratio >= 0.0) {
        std::printf(
            "# adaptive/static-best = %.2f worst-case across the grid "
            "(adaptive %.2f vs static best %.2f Mops/s)%s\n",
            worst_ratio, worst_adaptive, worst_static,
            worst_ratio >= 0.9 ? "" : "  [below the 10%-of-best target]");
        ctx.csv_row("tuning_summary", "worst",
                    "adaptive_over_static_best", worst_ratio);
    }
    return 0;
}

// ---- ablation_backoff: freezer backoff window sweep (DESIGN.md §6) ---------

int ablation_backoff(const ScenarioContext& ctx) {
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    constexpr std::uint64_t kWindowsNs[] = {0, 128, 256, 512, 1024, 4096};
    std::vector<std::string> columns;
    for (auto w : kWindowsNs) columns.push_back("bo" + std::to_string(w));

    Table table("ablation_freezer_backoff_upd100", columns);
    for (auto w : kWindowsNs) {
        const std::string column = "bo" + std::to_string(w);
        for (unsigned t : ctx.env.threads) {
            Config cfg = sec_config(t);
            cfg.freezer_backoff_ns = w;
            cfg.collect_stats = true;
            StackParams params;
            params.threads = t;
            params.config = &cfg;
            AnyStack stack = sec_algo.make(params);
            const RunResult r =
                run_throughput_any(stack, ctx.run_config(t, kUpdateHeavy));
            table.add(t, column, r.mops);
            const StatsSnapshot s = stack.stats();
            std::fprintf(
                stderr, "  bo=%-5llu t=%-4u %8.2f Mops/s batch=%.1f elim=%.0f%%\n",
                static_cast<unsigned long long>(w), t, r.mops,
                s.batching_degree(), s.elimination_pct());
        }
    }
    ctx.emit(table);
    return 0;
}

// ---- ablation_mapping: contiguous vs round-robin thread mapping (§6) -------

int ablation_mapping(const ScenarioContext& ctx) {
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    Table table("ablation_mapping_upd100", {"contiguous", "round_robin"});
    const std::pair<AggregatorMapping, const char*> mappings[] = {
        {AggregatorMapping::kContiguous, "contiguous"},
        {AggregatorMapping::kRoundRobin, "round_robin"},
    };
    for (const auto& [mapping, column] : mappings) {
        for (unsigned t : ctx.env.threads) {
            Config cfg = sec_config(t);
            cfg.mapping = mapping;
            StackParams params;
            params.threads = t;
            params.config = &cfg;
            const RunResult r = run_throughput_any(
                [&] { return sec_algo.make(params); },
                ctx.run_config(t, kUpdateHeavy));
            table.add(t, column, r.mops);
            progress_line(column, t, r.mops);
        }
    }
    ctx.emit(table);
    return 0;
}

// ---- ablation_pool: SEC stack vs ElimPool — the price of LIFO (§6) ---------

int ablation_pool(const ScenarioContext& ctx) {
    const AlgoSpec& sec_algo = *AlgorithmRegistry::instance().find("SEC");
    const AlgoSpec& pool_algo = *AlgorithmRegistry::instance().find("POOL");
    Table table("ablation_pool_vs_stack_upd100",
                {"SEC_stack", "ElimPool_K2", "ElimPool_K4"});
    for (unsigned t : ctx.env.threads) {
        const RunConfig rcfg = ctx.run_config(t, kUpdateHeavy);
        StackParams params;
        params.threads = t;
        const RunResult r1 =
            run_throughput_any([&] { return sec_algo.make(params); }, rcfg);
        table.add(t, "SEC_stack", r1.mops);

        double pool_mops[2] = {0, 0};
        int i = 0;
        for (std::size_t k : {std::size_t{2}, std::size_t{4}}) {
            Config cfg = sec_config(t);
            cfg.num_aggregators = std::min<std::size_t>(k, cfg.max_threads);
            StackParams pp;
            pp.threads = t;
            pp.config = &cfg;
            const RunResult r =
                run_throughput_any([&] { return pool_algo.make(pp); }, rcfg);
            table.add(t, "ElimPool_K" + std::to_string(k), r.mops);
            pool_mops[i++] = r.mops;
        }
        std::fprintf(stderr,
                     "t=%-4u stack=%.2f poolK2=%.2f poolK4=%.2f Mops/s\n", t,
                     r1.mops, pool_mops[0], pool_mops[1]);
    }
    ctx.emit(table);
    return 0;
}

// ---- sharding: plain SEC vs the sec::shard façade (DESIGN.md §8) -----------

// One measured grid point of a K-sharded SEC over reclaimer R, built
// statically (not via the registry) so the shard-level counters stay
// reachable after the run; fresh structure per run, stats from the last.
template <reclaim::Reclaimer R>
RunResult sharded_sec_point(const Config& cfg, std::size_t k,
                            const RunConfig& rcfg, shard::ShardStats* out) {
    using Inner = SecStack<Value, R>;
    using Sharded = shard::ShardedStack<Inner>;
    shard::ShardConfig scfg;
    scfg.num_shards = k;
    scfg.max_threads = cfg.max_threads;
    std::unique_ptr<Sharded> holder;
    const RunResult r = run_throughput(
        [&] {
            holder = std::make_unique<Sharded>(scfg, [&cfg](std::size_t) {
                return std::make_unique<Inner>(cfg);
            });
            return holder.get();
        },
        rcfg);
    if (out != nullptr) *out = holder->shard_stats();
    return r;
}

using ShardedPointFn = RunResult (*)(const Config&, std::size_t,
                                     const RunConfig&, shard::ShardStats*);

// The first scenario that measures load DISTRIBUTION, not just aggregate
// Mops: per shard-count column it reports the per-shard imbalance
// (max/mean ops, 1.0 = balanced) and the steal rate (% of successful pops
// served by a foreign shard) next to the throughput, on the push-pop
// (upd100) mix where the single-spine anchor saturates first. Honours
// --reclaim: both the baseline and the sharded inner stacks run over the
// selected scheme, and the columns carry the scheme-qualified names.
int sharding(const ScenarioContext& ctx) {
    // Shard counts and scheme from the selection: --shards pins the count;
    // else any SEC@shardK (or SEC@shardK@scheme) in --algos; else the
    // default {2,4,8} grid ({2} under --smoke). The scheme comes from
    // --reclaim when given, else from a scheme-qualified selection —
    // `--algos SEC@shard4@hp` alone must not silently measure EBR.
    std::vector<std::size_t> ks;
    std::string scheme = ctx.reclaim;
    for (const AlgoSpec* a : ctx.algos) {
        constexpr std::string_view kPrefix = "SEC@shard";
        if (a->base.rfind(kPrefix, 0) != 0) continue;
        const unsigned long k =
            std::strtoul(a->base.c_str() + kPrefix.size(), nullptr, 10);
        if (k >= 1 && k <= shard::kMaxShards) ks.push_back(k);
        if (ctx.reclaim.empty()) {
            if (scheme.empty()) {
                scheme = a->reclaim;
            } else if (scheme != a->reclaim) {
                std::fprintf(stderr,
                             "sharding: selection mixes reclaim schemes "
                             "('%s' vs '%s'); pick one or use --reclaim\n",
                             scheme.c_str(), a->reclaim.c_str());
                return 2;
            }
        }
    }
    if (scheme.empty()) scheme = "ebr";
    if (ctx.shards > 0) {
        if (ctx.shards > shard::kMaxShards) {
            std::fprintf(stderr,
                         "sharding: --shards %u exceeds kMaxShards=%zu; "
                         "clamping\n",
                         ctx.shards, shard::kMaxShards);
        }
        ks.assign(1, std::min<std::size_t>(ctx.shards, shard::kMaxShards));
    } else if (ks.empty()) {
        ks = ctx.smoke ? std::vector<std::size_t>{2}
                       : std::vector<std::size_t>{2, 4, 8};
    }
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

    ShardedPointFn point = nullptr;
    if (scheme == "ebr") {
        point = sharded_sec_point<reclaim::EpochDomain>;
    } else if (scheme == "hp") {
        point = sharded_sec_point<reclaim::HazardDomain>;
    } else if (scheme == "qsbr") {
        point = sharded_sec_point<reclaim::QsbrDomain>;
    } else if (scheme == "leak") {
        point = sharded_sec_point<reclaim::LeakyDomain>;
    }
    const AlgoSpec* baseline =
        AlgorithmRegistry::instance().find_variant("SEC", scheme);
    if (point == nullptr || baseline == nullptr) {
        // Refuse rather than silently measure EBR under a scheme the
        // preamble claims: mislabelled CSV is worse than no CSV.
        std::fprintf(stderr,
                     "sharding: no sharded SEC binding for reclaim scheme "
                     "'%s'\n",
                     scheme.c_str());
        return 2;
    }
    // Scheme-qualified column names, matching the registry convention
    // (plain names are the @ebr binding).
    const std::string suffix = scheme == "ebr" ? "" : "@" + scheme;

    std::vector<std::string> columns{baseline->name};
    for (std::size_t k : ks) {
        columns.push_back("SEC@shard" + std::to_string(k) + suffix);
    }
    Table table("sharding", columns);
    std::printf(
        "# sharded SEC vs the single-spine baseline, upd100 mix, %s "
        "reclamation;\n"
        "# imbalance = max/mean ops across shards (1.0 = perfectly "
        "balanced),\n"
        "# steal%% = successful pops served by a foreign shard\n",
        scheme.c_str());

    double sec_at_tmax = 0.0;
    std::vector<double> shard_at_tmax(ks.size(), 0.0);
    const unsigned tmax =
        *std::max_element(ctx.env.threads.begin(), ctx.env.threads.end());
    for (unsigned t : ctx.env.threads) {
        const RunConfig rcfg = ctx.run_config(t, kUpdateHeavy);
        StackParams params;
        params.threads = t;
        const RunResult base =
            run_throughput_any([&] { return baseline->make(params); }, rcfg);
        table.add(t, baseline->name, base.mops);
        progress_line(baseline->name, t, base.mops);
        if (t == tmax) sec_at_tmax = base.mops;

        for (std::size_t ki = 0; ki < ks.size(); ++ki) {
            const std::size_t k = ks[ki];
            const std::string& column = columns[1 + ki];
            const Config cfg = sec_config(t);
            shard::ShardStats ss;
            const RunResult r = point(cfg, k, rcfg, &ss);
            table.add(t, column, r.mops);
            progress_line(column, t, r.mops);
            if (t == tmax) shard_at_tmax[ki] = r.mops;

            std::string per_shard;
            for (std::uint64_t ops : ss.shard_ops) {
                if (!per_shard.empty()) per_shard += ',';
                per_shard += std::to_string(ops);
            }
            std::printf(
                "SHARD %-12s t=%-4u %8.2f Mops/s imbalance=%.2f "
                "steal%%=%.2f probes=%llu empty=%llu shard_ops=[%s]\n",
                column.c_str(), t, r.mops, ss.imbalance(), ss.steal_pct(),
                static_cast<unsigned long long>(ss.steal_probes),
                static_cast<unsigned long long>(ss.empty_pops),
                per_shard.c_str());
            const std::string key = column + "@t" + std::to_string(t);
            std::printf("CSV,sharding_shards,%s,imbalance,%.4f\n", key.c_str(),
                        ss.imbalance());
            std::printf("CSV,sharding_shards,%s,steal_pct,%.4f\n", key.c_str(),
                        ss.steal_pct());
            std::printf("CSV,sharding_shards,%s,empty_pops,%llu\n",
                        key.c_str(),
                        static_cast<unsigned long long>(ss.empty_pops));
            ctx.csv_row("sharding_shards", key, "imbalance", ss.imbalance());
            ctx.csv_row("sharding_shards", key, "steal_pct", ss.steal_pct());
            ctx.csv_row("sharding_shards", key, "empty_pops",
                        static_cast<double>(ss.empty_pops));
        }
    }
    ctx.emit(table);

    // Headline: the widest measured shard count (preferring 4, the
    // acceptance configuration) against the single spine at the top of the
    // thread grid — with the why when sharding loses.
    std::size_t hi = ks.size() - 1;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        if (ks[ki] == 4) hi = ki;
    }
    if (sec_at_tmax > 0.0) {
        const double ratio = shard_at_tmax[hi] / sec_at_tmax;
        const unsigned hw = std::thread::hardware_concurrency();
        std::printf(
            "# sharding speedup @ t=%u: %s %.2f vs %s %.2f "
            "Mops/s (%.2fx)%s\n",
            tmax, columns[1 + hi].c_str(), shard_at_tmax[hi],
            baseline->name.c_str(), sec_at_tmax, ratio,
            ratio >= 1.0
                ? ""
                : " — expected on few-core hosts: shards only pay off when "
                  "they run on distinct cores; here the shards time-share "
                  "the same core(s), so per-shard cache footprint and the "
                  "steal sweep on a drained home shard dominate");
        if (ratio < 1.0 && hw > 0) {
            std::printf("# (hw_threads=%u on this host)\n", hw);
        }
        ctx.csv_row("sharding_summary", std::to_string(tmax),
                    "shard" + std::to_string(ks[hi]) + "_over_sec", ratio);
    }
    return 0;
}

// ---- service: open-loop offered-load tail latency (DESIGN.md §9) -----------

// Lane split for one grid point: the grid value is the CONSUMER count (the
// serving capacity under comparison); producers are pure load generators
// and scale at half that, bounded below by one.
ServiceConfig service_config(const ScenarioContext& ctx, unsigned consumers,
                             double load_kops, ArrivalKind arrival) {
    ServiceConfig scfg;
    scfg.consumers = consumers;
    scfg.producers = std::max(1u, (consumers + 1) / 2);
    scfg.load_kops = load_kops;
    scfg.duration = std::chrono::milliseconds(ctx.env.duration_ms);
    scfg.arrival = arrival;
    scfg.seed = ctx.env.seed;
    scfg.pin =
        topo::parse_pin_policy(ctx.env.pin).value_or(topo::PinPolicy::kNone);
    return scfg;
}

// Arrival kind from --arrival / SEC_BENCH_ARRIVAL; rejects typos loudly
// (a mislabelled arrival process corrupts every row it produces).
std::optional<ArrivalKind> scenario_arrival(const ScenarioContext& ctx) {
    const auto kind =
        parse_arrival(ctx.arrival.empty() ? "poisson" : ctx.arrival);
    if (!kind) {
        std::fprintf(stderr,
                     "secbench: unknown arrival process '%s' (poisson, "
                     "burst)\n",
                     ctx.arrival.c_str());
    }
    return kind;
}

int service(const ScenarioContext& ctx) {
    const auto arrival = scenario_arrival(ctx);
    if (!arrival) return 2;
    const double load =
        ctx.load_kops > 0 ? ctx.load_kops : (ctx.smoke ? 5.0 : 50.0);
    std::printf(
        "# open-loop service at %.1f Kops/s offered load, %s arrivals;\n"
        "# sojourn = completion - SCHEDULED arrival (queueing delay "
        "included,\n"
        "# no coordinated omission), service = the pop call alone; grid "
        "value\n"
        "# = consumers, producers = half that\n",
        load, std::string(arrival_name(*arrival)).c_str());
    Table table("service_p99_us", ctx.columns(), "us");
    for (unsigned t : ctx.env.threads) {
        const ServiceConfig scfg = service_config(ctx, t, load, *arrival);
        for (const AlgoSpec* a : ctx.algos) {
            StackParams params;
            params.threads = scfg.producers + scfg.consumers;
            const ServiceResult r =
                run_service_any([&] { return a->make(params); }, scfg);
            const double p50_us = r.sojourn.quantile_ns(0.50) / 1000.0;
            const double p99_us = r.sojourn.quantile_ns(0.99) / 1000.0;
            const double p999_us = r.sojourn.quantile_ns(0.999) / 1000.0;
            const double svc_p99_us = r.service.quantile_ns(0.99) / 1000.0;
            std::printf(
                "SERVICE %-10s t=%-4u offered=%8.2f achieved=%8.2f Kops/s "
                "done=%llu/%llu sojourn p50=%9.1fus p99=%9.1fus "
                "p999=%9.1fus | service p99=%9.1fus\n",
                a->name.c_str(), t, r.offered_kops, r.achieved_kops,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.produced), p50_us, p99_us,
                p999_us, svc_p99_us);
            table.add(t, a->name, p99_us);
            const std::string key = a->name + "@t" + std::to_string(t);
            ctx.csv_row("service", key, "offered_kops", r.offered_kops);
            ctx.csv_row("service", key, "achieved_kops", r.achieved_kops);
            ctx.csv_row("service", key, "completed",
                        static_cast<double>(r.completed));
            ctx.csv_row("service", key, "sojourn_p50_us", p50_us);
            ctx.csv_row("service", key, "sojourn_p99_us", p99_us);
            ctx.csv_row("service", key, "sojourn_p999_us", p999_us);
            ctx.csv_row("service", key, "service_p99_us", svc_p99_us);
        }
    }
    ctx.emit(table);
    return 0;
}

// ---- knee: max sustainable load before the p99 explodes (DESIGN.md §9) -----

int knee(const ScenarioContext& ctx) {
    const auto arrival = scenario_arrival(ctx);
    if (!arrival) return 2;
    KneeConfig kc;
    if (ctx.load_kops > 0) kc.start_kops = ctx.load_kops;
    if (ctx.smoke) {
        kc.start_kops = ctx.load_kops > 0 ? ctx.load_kops : 2.0;
        kc.max_kops = 512.0;
        kc.refine_steps = 2;
    }
    std::printf(
        "# binary search for the highest offered load whose open-loop "
        "sojourn\n"
        "# p99 stays under %.1f ms (%s arrivals); each probe is one %u ms "
        "window\n",
        static_cast<double>(kc.p99_limit_ns) / 1e6,
        std::string(arrival_name(*arrival)).c_str(), ctx.env.duration_ms);
    Table table("service_knee_kops", ctx.columns(), "Kops/s");
    for (unsigned t : ctx.env.threads) {
        for (const AlgoSpec* a : ctx.algos) {
            const ServiceConfig scfg =
                service_config(ctx, t, kc.start_kops, *arrival);
            StackParams params;
            params.threads = scfg.producers + scfg.consumers;
            // Every probe of the binary search lands in the CSV sink as a
            // knee_trace row (key = algo@tN#probe), so the doubling phase
            // and the bisections can be re-plotted from the file alone.
            const KneeResult kr = find_service_knee(
                [&] { return a->make(params); }, scfg, kc,
                [&](const KneeProbe& p) {
                    std::fprintf(stderr,
                                 "  %-10s t=%-4u probe#%-2u %9.2f Kops/s "
                                 "achieved=%9.2f p99=%9.2f ms %s\n",
                                 a->name.c_str(), t, p.index, p.offered_kops,
                                 p.achieved_kops, p.p99_ns / 1e6,
                                 p.sustainable ? "ok" : "KNEE");
                    const std::string pkey = a->name + "@t" +
                                             std::to_string(t) + "#" +
                                             std::to_string(p.index);
                    ctx.csv_row("knee_trace", pkey, "offered_kops",
                                p.offered_kops);
                    ctx.csv_row("knee_trace", pkey, "achieved_kops",
                                p.achieved_kops);
                    ctx.csv_row("knee_trace", pkey, "p99_ns", p.p99_ns);
                    ctx.csv_row("knee_trace", pkey, "sustainable",
                                p.sustainable ? 1.0 : 0.0);
                });
            std::printf(
                "KNEE %-10s t=%-4u sustainable=%9.2f Kops/s p99=%9.2f ms "
                "(%u probes)\n",
                a->name.c_str(), t, kr.sustainable_kops,
                kr.p99_ns_at_knee / 1e6, kr.probes);
            table.add(t, a->name, kr.sustainable_kops);
            const std::string key = a->name + "@t" + std::to_string(t);
            ctx.csv_row("service_knee", key, "sustainable_kops",
                        kr.sustainable_kops);
            ctx.csv_row("service_knee", key, "p99_ns_at_knee",
                        kr.p99_ns_at_knee);
            ctx.csv_row("service_knee", key, "probes",
                        static_cast<double>(kr.probes));
        }
    }
    ctx.emit(table);
    return 0;
}

// ---- net_service: the open-loop harness over real sockets (DESIGN.md §11) --

// The service scenario's accounting, but with the stack behind sec::net: a
// SecServer per algorithm (event loop draining readiness batches into the
// structure) and the loopback client replaying the same Poisson/bursty
// schedules over N real TCP connections. Grid value = connections. With
// --port / SEC_BENCH_PORT set, the client targets an already-running
// secserve instead (a second process; single column "remote" because the
// remote process, not the local selection, fixes the algorithm). Exits
// nonzero when any scheduled request lost its reply — CI's net-smoke job
// leans on that.
int net_service(const ScenarioContext& ctx) {
    const auto arrival = scenario_arrival(ctx);
    if (!arrival) return 2;
    const double load =
        ctx.load_kops > 0 ? ctx.load_kops : (ctx.smoke ? 2.0 : 20.0);
    const bool remote = ctx.env.port != 0;

    std::printf(
        "# open-loop service over loopback TCP at %.1f Kops/s offered load, "
        "%s arrivals;\n"
        "# sojourn = reply - SCHEDULED arrival (CO-free), rtt = reply - "
        "send; grid value = connections\n",
        load, std::string(arrival_name(*arrival)).c_str());
    if (remote) {
        std::printf("# remote server at 127.0.0.1:%u (algorithm fixed by "
                    "that process)\n",
                    ctx.env.port);
    }

    const std::vector<std::string> cols =
        remote ? std::vector<std::string>{"remote"} : ctx.columns();
    Table kops_table("net_service_kops", cols, "Kops/s");
    Table p99_table("net_service_p99_us", cols, "us");
    int rc = 0;
    for (unsigned t : ctx.env.threads) {
        const unsigned series = remote ? 1u : static_cast<unsigned>(
                                                  ctx.algos.size());
        for (unsigned s = 0; s < series; ++s) {
            const AlgoSpec* a = remote ? nullptr : ctx.algos[s];
            const std::string column = remote ? "remote" : a->name;

            std::optional<net::SecServer> server;
            std::uint16_t port = static_cast<std::uint16_t>(ctx.env.port);
            if (!remote) {
                StackParams params;
                params.threads = 2;  // the event loop is the only stack user
                net::ServerConfig scfg;
                scfg.backend = ctx.env.backend;
                scfg.pin = topo::parse_pin_policy(ctx.env.pin)
                               .value_or(topo::PinPolicy::kNone);
                server.emplace(a->make(params), scfg);
                std::string err;
                if (!server->start(&err)) {
                    std::fprintf(stderr, "secbench: net_service: %s\n",
                                 err.c_str());
                    return 2;
                }
                port = server->port();
            }

            net::LoopbackClientConfig ccfg;
            ccfg.port = port;
            ccfg.connections = t;
            ccfg.load_kops = load;
            ccfg.duration = std::chrono::milliseconds(ctx.env.duration_ms);
            ccfg.arrival = *arrival;
            ccfg.seed = ctx.env.seed;
            const net::LoopbackClientResult r = run_loopback_client(ccfg);
            if (!r.ok) {
                std::fprintf(stderr, "secbench: net_service: %s\n",
                             r.error.c_str());
                return 2;
            }
            if (server) server->stop();

            const double p50_us = r.sojourn.quantile_ns(0.50) / 1000.0;
            const double p99_us = r.sojourn.quantile_ns(0.99) / 1000.0;
            const double p999_us = r.sojourn.quantile_ns(0.999) / 1000.0;
            const double rtt_p99_us = r.rtt.quantile_ns(0.99) / 1000.0;
            std::printf(
                "NET %-10s conns=%-3u offered=%8.2f achieved=%8.2f Kops/s "
                "replies=%llu/%llu lost=%llu sojourn p50=%9.1fus "
                "p99=%9.1fus p999=%9.1fus | rtt p99=%9.1fus\n",
                column.c_str(), t, r.offered_kops, r.achieved_kops,
                static_cast<unsigned long long>(r.replies),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.lost), p50_us, p99_us,
                p999_us, rtt_p99_us);
            if (r.lost > 0) {
                std::fprintf(stderr,
                             "secbench: net_service: %llu replies LOST "
                             "(%s, conns=%u)\n",
                             static_cast<unsigned long long>(r.lost),
                             column.c_str(), t);
                rc = 1;
            }
            kops_table.add(t, column, r.achieved_kops);
            p99_table.add(t, column, p99_us);
            const std::string key = column + "@c" + std::to_string(t);
            ctx.csv_row("net_service", key, "offered_kops", r.offered_kops);
            ctx.csv_row("net_service", key, "achieved_kops",
                        r.achieved_kops);
            ctx.csv_row("net_service", key, "replies",
                        static_cast<double>(r.replies));
            ctx.csv_row("net_service", key, "lost",
                        static_cast<double>(r.lost));
            ctx.csv_row("net_service", key, "sojourn_p50_us", p50_us);
            ctx.csv_row("net_service", key, "sojourn_p99_us", p99_us);
            ctx.csv_row("net_service", key, "sojourn_p999_us", p999_us);
            ctx.csv_row("net_service", key, "rtt_p99_us", rtt_p99_us);
            if (server) {
                const net::ServerStats st = server->stats();
                ctx.csv_row("net_service", key, "server_batches",
                            static_cast<double>(st.batches));
                ctx.csv_row("net_service", key, "server_max_batch",
                            static_cast<double>(st.max_batch));
            }
        }
    }
    ctx.emit(kops_table);
    ctx.emit(p99_table);
    return rc;
}

// ---- micro: static vs type-erased hot-loop parity + per-op cost ------------

double timed_mops(std::uint64_t ops, const std::function<void()>& body) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    return us > 0 ? static_cast<double>(ops) / us : 0.0;
}

template <class S>
double static_mixed_mops(std::uint64_t ops, const PhaseArgs& args) {
    auto stack = make_stack<S>(tid_bound(1));
    phase_prefill(*stack, 64, args);
    return timed_mops(ops,
                      [&] { (void)phase_mixed_ops(*stack, ops, args); });
}

double erased_mixed_mops(const AlgoSpec& algo, std::uint64_t ops,
                         const PhaseArgs& args) {
    StackParams params;
    params.threads = 1;
    AnyStack stack = algo.make(params);
    stack.prefill(64, args);
    return timed_mops(ops, [&] { (void)stack.mixed_ops(ops, args); });
}

// The statically-dispatched twin of each registered algorithm (the erased
// path and this path share phase_mixed_ops, so any gap beyond noise would
// mean virtual dispatch leaked into the per-op loop).
double static_twin_mops(std::string_view name, std::uint64_t ops,
                        const PhaseArgs& args) {
    if (name == "CC") return static_mixed_mops<CcStack<Value>>(ops, args);
    if (name == "EB") return static_mixed_mops<EbStack<Value>>(ops, args);
    if (name == "FC") return static_mixed_mops<FcStack<Value>>(ops, args);
    if (name == "SEC") return static_mixed_mops<SecStack<Value>>(ops, args);
    if (name == "TRB") return static_mixed_mops<TreiberStack<Value>>(ops, args);
    if (name == "TSI") return static_mixed_mops<TsiStack<Value>>(ops, args);
    return -1.0;
}

int micro(const ScenarioContext& ctx) {
    const std::uint64_t ops = std::max<std::uint64_t>(
        20'000, static_cast<std::uint64_t>(ctx.env.duration_ms) * 2000);
    std::printf(
        "# single-thread mixed-op cost over %llu ops; 'static' calls\n"
        "# phase_mixed_ops<S> directly, 'erased' runs the same loop behind\n"
        "# AnyStack's one-virtual-call phase boundary — the two must agree\n"
        "# within noise. ns/op = 1000 / Mops (the hot-path codegen pass's\n"
        "# per-op instruction-budget view, DESIGN.md §10)\n",
        static_cast<unsigned long long>(ops));
    // Mops/s -> ns per operation; the reciprocal view the codegen pass
    // budgets against (0 when the window was too small to time).
    const auto ns_per_op = [](double mops) {
        return mops > 0 ? 1000.0 / mops : 0.0;
    };
    PhaseArgs args;
    args.seed = 42;
    args.value_range = ctx.env.value_range;
    args.mix = kUpdateHeavy;
    for (const AlgoSpec* a : ctx.algos) {
        const double erased = erased_mixed_mops(*a, ops, args);
        const double stat = static_twin_mops(a->name, ops, args);
        if (stat >= 0) {
            const double delta =
                stat > 0 ? 100.0 * (erased - stat) / stat : 0.0;
            std::printf("MICRO %-6s static=%8.2f Mops/s (%7.1f ns/op) "
                        "erased=%8.2f Mops/s (%7.1f ns/op) delta=%+.1f%%\n",
                        a->name.c_str(), stat, ns_per_op(stat), erased,
                        ns_per_op(erased), delta);
            std::printf("CSV,micro_ops,%s,static,%.4f\n", a->name.c_str(),
                        stat);
            std::printf("CSV,micro_ops,%s,static_ns,%.4f\n", a->name.c_str(),
                        ns_per_op(stat));
            ctx.csv_row("micro_ops", a->name, "static", stat);
            ctx.csv_row("micro_ops", a->name, "static_ns", ns_per_op(stat));
        } else {
            std::printf("MICRO %-6s static=%8s erased=%8.2f Mops/s "
                        "(%7.1f ns/op)\n",
                        a->name.c_str(), "-", erased, ns_per_op(erased));
        }
        std::printf("CSV,micro_ops,%s,erased,%.4f\n", a->name.c_str(), erased);
        std::printf("CSV,micro_ops,%s,erased_ns,%.4f\n", a->name.c_str(),
                    ns_per_op(erased));
        ctx.csv_row("micro_ops", a->name, "erased", erased);
        ctx.csv_row("micro_ops", a->name, "erased_ns", ns_per_op(erased));
    }
    return 0;
}

}  // namespace

namespace detail {

void register_builtin_scenarios(ScenarioRegistry& reg) {
    reg.add({"fig2", "EXP1 — throughput vs threads, 3 mixes, all algorithms",
             fig2});
    reg.add({"fig3", "EXP2 — push-only / pop-only asymmetric workloads",
             fig3});
    reg.add({"queue",
             "FIFO matrix — SEC_Q vs MS vs FCQ across the fig2 op-mix grid "
             "(DESIGN.md §12)",
             queue});
    reg.add({"fig4", "EXP3 — SEC self-comparison, 1..5 aggregators", fig4});
    reg.add({"table1", "EXP4 — SEC batching/elimination/combining degrees",
             table1});
    reg.add({"latency", "per-op latency percentiles (paper §1 fairness claim)",
             latency});
    reg.add({"reclamation",
             "algo x reclaimer matrix: throughput/limbo/drain per scheme (§4)",
             reclamation});
    reg.add({"sweep",
             "SEC tuning surface: (agg x backoff) cross-product (--sweep)",
             sweep});
    reg.add({"tuning",
             "static-best vs SEC@adaptive on a phase-shifting workload",
             tuning});
    reg.add({"ablation_backoff", "freezer backoff window sweep (DESIGN.md §6)",
             ablation_backoff});
    reg.add({"ablation_mapping",
             "contiguous vs round-robin thread mapping (DESIGN.md §6)",
             ablation_mapping});
    reg.add({"ablation_pool",
             "SEC stack vs ElimPool — the price of LIFO (DESIGN.md §6)",
             ablation_pool});
    reg.add({"sharding",
             "SEC vs SEC@shardK: Mops + per-shard imbalance + steal rate "
             "(DESIGN.md §8)",
             sharding});
    reg.add({"service",
             "open-loop offered-load tail latency, no coordinated omission "
             "(DESIGN.md §9)",
             service});
    reg.add({"knee",
             "max sustainable offered load before the sojourn p99 explodes "
             "(DESIGN.md §9)",
             knee});
    reg.add({"net_service",
             "open-loop service over loopback TCP via sec::net "
             "(DESIGN.md §11)",
             net_service});
    reg.add({"micro",
             "static vs type-erased hot-loop parity + single-thread op cost "
             "(Mops + ns/op)",
             micro});
}

}  // namespace detail
}  // namespace sec::bench
