// hazard.cpp — scan-and-free batching for HazardDomain.
#include "reclaim/hazard.hpp"

#include <algorithm>

namespace sec::reclaim {

HazardDomain::~HazardDomain() {
    // Contract: no Guard may outlive the domain, so every backlog entry is
    // freeable regardless of what the (dead) slots still say.
    std::uint64_t freed = 0;
    for (RetiredList& list : lists_) {
        freed += detail::free_backlog(list.items);
    }
    counters_.note_freed(freed);
}

void HazardDomain::collect_hazards(std::vector<void*>& out) const {
    const std::size_t bound =
        std::min(tid_bound_.load(std::memory_order_seq_cst), kMaxThreads);
    out.reserve(bound * kSlotsPerThread);
    for (std::size_t t = 0; t < bound; ++t) {
        // One SlotBlock per cache line: start the next thread's line while
        // this one's seq_cst loads drain (the scan walks every live
        // thread's block on every kScanInterval-th retire).
        if (t + 1 < bound) sec::prefetch(&slots_[t + 1]);
        for (unsigned k = 0; k < kSlotsPerThread; ++k) {
            void* p = slots_[t].hp[k].load(std::memory_order_seq_cst);
            if (p != nullptr) out.push_back(p);
        }
    }
    std::sort(out.begin(), out.end());
}

void HazardDomain::scan(std::size_t id) {
    // Snapshot the backlog FIRST, then collect hazards. An entry retired
    // before the swap was already unreachable by then, so any hazard that
    // protects it was published (and validated) before the swap — the later
    // collection must see it. The reverse order would let a reader publish
    // a hazard between collection and swap and lose the race: drain_all()
    // running concurrently with active readers would free a node still in
    // use.
    std::vector<detail::RetiredPtr> work;
    {
        detail::SpinLockGuard lock(lists_[id].lock);
        work.swap(lists_[id].items);
    }
    std::vector<void*> hazards;
    collect_hazards(hazards);

    std::vector<detail::RetiredPtr> keep;
    std::uint64_t freed = 0;
    for (const detail::RetiredPtr& r : work) {
        if (std::binary_search(hazards.begin(), hazards.end(), r.p)) {
            keep.push_back(r);
        } else {
            r.deleter(r.p);
            ++freed;
        }
    }
    if (!keep.empty()) {
        detail::SpinLockGuard lock(lists_[id].lock);
        lists_[id].items.insert(lists_[id].items.end(), keep.begin(),
                                keep.end());
    }
    counters_.note_freed(freed);
}

void HazardDomain::retire_erased(void* p, void (*deleter)(void*)) {
    const std::size_t id = sec::detail::tid();
    note_thread(id);
    counters_.note_retired();
    bool scan_now = false;
    {
        detail::SpinLockGuard lock(lists_[id].lock);
        lists_[id].items.push_back({p, deleter});
        if (++lists_[id].retires_since_scan >= kScanInterval) {
            lists_[id].retires_since_scan = 0;
            scan_now = true;
        }
    }
    if (scan_now) scan(id);
}

void HazardDomain::drain_all() {
    const std::size_t bound =
        std::min(tid_bound_.load(std::memory_order_seq_cst), kMaxThreads);
    for (std::size_t id = 0; id < bound; ++id) scan(id);
}

}  // namespace sec::reclaim
