// env.cpp — EnvConfig::load and the bench preamble.
#include "workload/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/common.hpp"

namespace sec::bench {
namespace {

const char* get_env(const char* name) { return std::getenv(name); }

unsigned env_unsigned(const char* name, unsigned fallback) {
    const char* v = get_env(name);
    if (v == nullptr || *v == '\0') return fallback;
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = get_env(name);
    if (v == nullptr || *v == '\0') return fallback;
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::vector<unsigned> parse_grid(const char* csv) {
    std::vector<unsigned> grid;
    const char* p = csv;
    while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) break;
        if (v > 0) grid.push_back(static_cast<unsigned>(v));
        p = end;
        while (*p == ',' || *p == ' ') ++p;
    }
    return grid;
}

}  // namespace

EnvConfig EnvConfig::load() {
    EnvConfig cfg;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const bool paper = env_unsigned("SEC_BENCH_PAPER", 0) != 0;

    if (paper) {
        // Paper methodology: 5 s windows, 5 runs, grid up to the machine.
        cfg.duration_ms = 5000;
        cfg.runs = 5;
        for (unsigned t : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u,
                           128u}) {
            if (t <= 2 * hw) cfg.threads.push_back(t);
        }
    } else {
        cfg.duration_ms = 200;
        cfg.runs = 1;
        cfg.threads = {2, 4, 8};
    }

    cfg.duration_ms = env_unsigned("SEC_BENCH_DURATION_MS", cfg.duration_ms);
    cfg.runs = std::max(1u, env_unsigned("SEC_BENCH_RUNS", cfg.runs));
    cfg.prefill = env_size("SEC_BENCH_PREFILL", cfg.prefill);
    cfg.value_range =
        std::max<std::size_t>(1, env_size("SEC_BENCH_VALUE_RANGE",
                                          cfg.value_range));
    cfg.seed = env_size("SEC_BENCH_SEED", cfg.seed);
    if (const char* grid = get_env("SEC_BENCH_THREADS")) {
        std::vector<unsigned> parsed = parse_grid(grid);
        if (!parsed.empty()) cfg.threads = std::move(parsed);
    }
    if (cfg.threads.empty()) cfg.threads = {2, 4, 8};
    for (unsigned& t : cfg.threads) {
        t = std::min<unsigned>(t, static_cast<unsigned>(kMaxThreads) - 8);
    }
    return cfg;
}

void print_preamble(std::string_view bench_name) {
    print_preamble(bench_name, EnvConfig::load());
}

void print_preamble(std::string_view bench_name, const EnvConfig& cfg) {
    std::string grid;
    for (unsigned t : cfg.threads) {
        if (!grid.empty()) grid += ',';
        grid += std::to_string(t);
    }
    std::fprintf(stderr,
                 "== %.*s ==\n"
                 "hw_threads=%u duration_ms=%u runs=%u prefill=%zu "
                 "value_range=%zu seed=%llu threads=[%s]%s\n",
                 static_cast<int>(bench_name.size()), bench_name.data(),
                 std::thread::hardware_concurrency(), cfg.duration_ms,
                 cfg.runs, cfg.prefill, cfg.value_range,
                 static_cast<unsigned long long>(cfg.seed), grid.c_str(),
                 env_unsigned("SEC_BENCH_PAPER", 0) ? " (paper mode)" : "");
}

}  // namespace sec::bench
