// env.cpp — EnvConfig::load and the bench preamble.
#include "workload/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/common.hpp"
#include "exec/topology.hpp"
#include "net/event_loop.hpp"

namespace sec::bench {
namespace {

const char* get_env(const char* name) { return std::getenv(name); }

// Strict digits-only parse. Returns false on empty input, signs, spaces, or
// trailing junk — "abc" must not read as 0 and "2OO" must not read as 2,
// which is what a bare strtoul gave these knobs for five PRs.
bool parse_u64_strict(const char* v, std::uint64_t& out) {
    if (v == nullptr || *v == '\0') return false;
    if (!std::isdigit(static_cast<unsigned char>(v[0]))) return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE) return false;
    out = parsed;
    return true;
}

unsigned env_unsigned(const char* name, unsigned fallback) {
    const char* v = get_env(name);
    if (v == nullptr || *v == '\0') return fallback;
    std::uint64_t parsed = 0;
    if (!parse_u64_strict(v, parsed) ||
        parsed > std::uint64_t{0xFFFFFFFFull}) {
        std::fprintf(stderr,
                     "secbench: ignoring %s='%s' (not an unsigned integer); "
                     "using %u\n",
                     name, v, fallback);
        return fallback;
    }
    return static_cast<unsigned>(parsed);
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = get_env(name);
    if (v == nullptr || *v == '\0') return fallback;
    std::uint64_t parsed = 0;
    if (!parse_u64_strict(v, parsed)) {
        std::fprintf(stderr,
                     "secbench: ignoring %s='%s' (not an unsigned integer); "
                     "using %zu\n",
                     name, v, fallback);
        return fallback;
    }
    return static_cast<std::size_t>(parsed);
}

// Whole-grid-or-nothing parse of a comma/space-separated thread grid: one
// bad token rejects the grid with a warning (the caller keeps its previous
// grid), because silently dropping the tail of "4,8,x16" used to run a
// different experiment than the one the user asked for.
std::vector<unsigned> parse_grid(const char* name, const char* csv) {
    std::vector<unsigned> grid;
    std::string token;
    auto flush = [&]() -> bool {
        if (token.empty()) return true;
        std::uint64_t v = 0;
        if (!parse_u64_strict(token.c_str(), v) || v == 0 ||
            v > std::uint64_t{0xFFFFFFFFull}) {
            std::fprintf(stderr,
                         "secbench: ignoring %s='%s' ('%s' is not a positive "
                         "integer); keeping the previous thread grid\n",
                         name, csv, token.c_str());
            return false;
        }
        grid.push_back(static_cast<unsigned>(v));
        token.clear();
        return true;
    };
    for (const char* p = csv;; ++p) {
        if (*p == ',' || *p == ' ' || *p == '\0') {
            if (!flush()) return {};
            if (*p == '\0') break;
        } else {
            token += *p;
        }
    }
    return grid;
}

}  // namespace

void clamp_thread_grid(std::vector<unsigned>& grid, const char* origin) {
    // Head-room of 8 below kMaxThreads for the coordinator, main, and
    // gtest-style environment threads that share the tid space with the
    // workers.
    const unsigned bound = static_cast<unsigned>(kMaxThreads) - 8;
    for (unsigned& t : grid) {
        if (t > bound) {
            std::fprintf(stderr,
                         "secbench: clamping %s thread count %u to %u "
                         "(kMaxThreads=%zu minus harness head-room)\n",
                         origin, t, bound, kMaxThreads);
            t = bound;
        }
    }
}

EnvConfig EnvConfig::load() {
    EnvConfig cfg;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const bool paper = env_unsigned("SEC_BENCH_PAPER", 0) != 0;

    if (paper) {
        // Paper methodology: 5 s windows, 5 runs, grid up to the machine.
        cfg.duration_ms = 5000;
        cfg.runs = 5;
        for (unsigned t : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u, 64u, 96u,
                           128u}) {
            if (t <= 2 * hw) cfg.threads.push_back(t);
        }
    } else {
        cfg.duration_ms = 200;
        cfg.runs = 1;
        cfg.threads = {2, 4, 8};
    }

    cfg.duration_ms = env_unsigned("SEC_BENCH_DURATION_MS", cfg.duration_ms);
    cfg.runs = std::max(1u, env_unsigned("SEC_BENCH_RUNS", cfg.runs));
    cfg.prefill = env_size("SEC_BENCH_PREFILL", cfg.prefill);
    cfg.value_range =
        std::max<std::size_t>(1, env_size("SEC_BENCH_VALUE_RANGE",
                                          cfg.value_range));
    cfg.seed = env_size("SEC_BENCH_SEED", cfg.seed);
    if (const char* grid = get_env("SEC_BENCH_THREADS")) {
        std::vector<unsigned> parsed = parse_grid("SEC_BENCH_THREADS", grid);
        if (!parsed.empty()) cfg.threads = std::move(parsed);
    }
    if (cfg.threads.empty()) cfg.threads = {2, 4, 8};
    clamp_thread_grid(cfg.threads, "SEC_BENCH_THREADS");

    // sec::net knobs. Same whole-value-or-nothing policy as the grids: a
    // port that isn't a clean integer in [0, 65535] or a backend name the
    // build doesn't know warns loudly and keeps the default — it must never
    // silently connect elsewhere or measure a different event loop.
    if (const char* v = get_env("SEC_BENCH_PORT"); v != nullptr && *v) {
        std::uint64_t parsed = 0;
        if (!parse_u64_strict(v, parsed) || parsed > 65535) {
            std::fprintf(stderr,
                         "secbench: ignoring SEC_BENCH_PORT='%s' (not a port "
                         "in [0, 65535]); using %u\n",
                         v, cfg.port);
        } else {
            cfg.port = static_cast<unsigned>(parsed);
        }
    }
    if (const char* v = get_env("SEC_BENCH_BACKEND"); v != nullptr && *v) {
        if (!net::backend_known(v)) {
            std::fprintf(stderr,
                         "secbench: ignoring SEC_BENCH_BACKEND='%s' (known "
                         "backends: epoll, iouring); using the default\n",
                         v);
        } else {
            cfg.backend = v;
        }
    }
    if (const char* v = get_env("SEC_BENCH_PIN"); v != nullptr && *v) {
        if (!topo::parse_pin_policy(v)) {
            std::fprintf(stderr,
                         "secbench: ignoring SEC_BENCH_PIN='%s' (known "
                         "policies: none, compact, scatter, smt); running "
                         "unpinned\n",
                         v);
        } else {
            cfg.pin = v;
        }
    }
    cfg.counters = env_unsigned("SEC_BENCH_COUNTERS", 1) != 0;
    return cfg;
}

void print_preamble(std::string_view bench_name) {
    print_preamble(bench_name, EnvConfig::load());
}

void print_preamble(std::string_view bench_name, const EnvConfig& cfg) {
    std::string grid;
    for (unsigned t : cfg.threads) {
        if (!grid.empty()) grid += ',';
        grid += std::to_string(t);
    }
    std::fprintf(stderr,
                 "== %.*s ==\n"
                 "hw_threads=%u duration_ms=%u runs=%u prefill=%zu "
                 "value_range=%zu seed=%llu threads=[%s] pin=%s%s\n",
                 static_cast<int>(bench_name.size()), bench_name.data(),
                 std::thread::hardware_concurrency(), cfg.duration_ms,
                 cfg.runs, cfg.prefill, cfg.value_range,
                 static_cast<unsigned long long>(cfg.seed), grid.c_str(),
                 cfg.pin.empty() ? "none" : cfg.pin.c_str(),
                 env_unsigned("SEC_BENCH_PAPER", 0) ? " (paper mode)" : "");
}

}  // namespace sec::bench
