// adaptive.cpp — the sec::adapt controller step: degree-band feedback for
// the active-aggregator count, hill climbing with hysteresis for the
// freezer backoff window. See core/adaptive.hpp for the contract and
// DESIGN.md §5 for the rationale.
#include "core/adaptive.hpp"

#include <algorithm>

namespace sec::adapt {

AdaptiveController::AdaptiveController(TuningState& state, Sampler sampler,
                                       std::size_t max_active, Options options)
    : state_(state),
      sampler_(std::move(sampler)),
      max_active_(static_cast<std::uint32_t>(std::max<std::size_t>(
          1, std::min<std::size_t>(max_active, kMaxAggregators)))),
      opt_(options) {}

AdaptiveController::~AdaptiveController() { stop(); }

void AdaptiveController::start() {
    if (thread_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread(&AdaptiveController::run, this);
}

void AdaptiveController::stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
}

void AdaptiveController::run() {
    std::uint32_t stable = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        const bool settled = stable >= opt_.stable_epochs;
        const std::uint32_t scale =
            settled ? opt_.stable_sleep_multiplier : 1;
        std::this_thread::sleep_for(opt_.epoch * scale);
        if (stop_.load(std::memory_order_relaxed)) break;
        const TuningState::Tuning before = state_.load();
        step(sampler_(), static_cast<double>(scale));
        const TuningState::Tuning after = state_.load();
        if (after.active_aggregators == before.active_aggregators &&
            after.backoff_ns == before.backoff_ns) {
            if (!settled) ++stable;
        } else {
            stable = 0;
        }
    }
}

// One ladder move: 0 <-> quantum, then ×2 / ÷2, clamped to
// [0, Options::max_backoff_ns]. Returns the input unchanged at the rails.
std::uint64_t AdaptiveController::step_backoff(std::uint64_t backoff,
                                               int direction) const {
    if (direction > 0) {
        if (backoff >= opt_.max_backoff_ns) return backoff;
        if (backoff == 0) {
            return std::min(opt_.backoff_quantum_ns, opt_.max_backoff_ns);
        }
        return std::min(backoff * 2, opt_.max_backoff_ns);
    }
    if (backoff <= opt_.backoff_quantum_ns) return 0;
    return backoff / 2;
}

void AdaptiveController::step(const StatsSnapshot& cumulative,
                              double window_scale) {
    StatsSnapshot d;
    d.batches = cumulative.batches - last_.batches;
    d.batched_ops = cumulative.batched_ops - last_.batched_ops;
    d.eliminated_ops = cumulative.eliminated_ops - last_.eliminated_ops;
    d.combined_ops = cumulative.combined_ops - last_.combined_ops;
    last_ = cumulative;
    ++epochs_;

    if (d.batches < opt_.min_epoch_batches) {
        // Idle (or near-idle) epoch: no signal, and none will come for the
        // open probe — revert its unverified value (same invariant as the
        // active-set-move branch below: only demonstrated improvements may
        // move the operating point) and drop the stale objective so it
        // can't steer the next probe.
        if (probing_) {
            const TuningState::Tuning t = state_.load();
            if (t.backoff_ns != probe_origin_) {
                state_.store(t.active_aggregators, probe_origin_);
            }
        }
        probing_ = false;
        prev_objective_ = -1.0;
        return;
    }

    const TuningState::Tuning t = state_.load();
    std::uint32_t active =
        std::clamp<std::uint32_t>(t.active_aggregators, 1, max_active_);

    // (a) Active set: ±1 hill step on the per-batch degree. Shrinking packs
    // the same threads into fewer batches (degree and elimination chance
    // rise); growing spreads them (freezer serialisation falls).
    const double degree = static_cast<double>(d.batched_ops) /
                          static_cast<double>(d.batches);
    if (degree < opt_.degree_low && active > 1) {
        --active;
    } else if (degree > opt_.degree_high && active < max_active_) {
        ++active;
    }

    // (b) Freezer backoff: hill climb on batched-ops-per-epoch, only across
    // epochs where the active set held still — a simultaneous active-set
    // move would contaminate the probe's verdict.
    std::uint64_t backoff = t.backoff_ns;
    if (active == t.active_aggregators) {
        // Rate, not count: deltas from a stability-stretched window would
        // otherwise dwarf the 1x-window verdict epoch that follows a probe
        // (the probe's publish resets the cadence), auto-reverting every
        // probe regardless of merit.
        const double objective =
            static_cast<double>(d.batched_ops) /
            (window_scale > 0.0 ? window_scale : 1.0);
        const bool open_probe = probing_ && prev_objective_ >= 0.0;
        if (!open_probe && cooldown_ > 0) {
            // Post-revert cooldown: hold the operating point; a knob with
            // no demonstrated gradient should not flap every epoch.
            --cooldown_;
        } else if (!open_probe ||
                   objective >= prev_objective_ * (1.0 + opt_.hysteresis)) {
            // No probe pending, or the last one paid off: probe (further)
            // in the current direction.
            prev_objective_ = objective;
            probe_origin_ = backoff;
            backoff = step_backoff(backoff, direction_);
            probing_ = backoff != probe_origin_;
            if (!probing_) direction_ = -direction_;  // at a rail: turn
        } else {
            // The probe didn't clearly pay off (regress OR plateau): revert
            // it and explore the other direction after a cooldown. Only
            // clear improvements move the operating point, so noise cannot
            // walk the backoff away from a good setting.
            backoff = probe_origin_;
            direction_ = -direction_;
            probing_ = false;
            prev_objective_ = -1.0;
            cooldown_ = opt_.probe_cooldown_epochs;
        }
    } else {
        // An active-set move contaminates the pending probe's verdict:
        // revert the unverified probed value (never adopt it blind), and
        // let the climb restart once the active set settles.
        if (probing_) backoff = probe_origin_;
        probing_ = false;
        prev_objective_ = -1.0;
    }

    // Publish only real changes: the TuningState cache line is read on
    // every hot-path operation, and a no-op store from a settled controller
    // would still invalidate it in every worker's cache each epoch.
    if (active != t.active_aggregators || backoff != t.backoff_ns) {
        state_.store(active, backoff);
    }
}

}  // namespace sec::adapt
