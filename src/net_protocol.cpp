// net_protocol.cpp — the dependency-free sec::net frame codec
// (net/protocol.hpp). Bytewise little-endian put/get so the code is
// identical on every endianness and never type-puns the stream buffer.
#include "net/protocol.hpp"

namespace sec::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

}  // namespace

std::size_t payload_size(MsgType type) noexcept {
    switch (type) {
        case MsgType::kPushReq:
            return 1 + 8 + 8;
        case MsgType::kPopReq:
        case MsgType::kStatsReq:
            return 1 + 8;
        case MsgType::kPushResp:
            return 1 + 8 + 1;
        case MsgType::kPopResp:
            return 1 + 8 + 1 + 8;
        case MsgType::kStatsResp:
            return 1 + 8 + 4 * 8 + 1;
    }
    return 0;  // unknown type byte
}

void encode(const Message& msg, std::vector<std::uint8_t>& out) {
    const std::size_t payload = payload_size(msg.type);
    out.reserve(out.size() + kHeaderBytes + payload);
    put_u32(out, static_cast<std::uint32_t>(payload));
    put_u8(out, static_cast<std::uint8_t>(msg.type));
    put_u64(out, msg.tag);
    switch (msg.type) {
        case MsgType::kPushReq:
            put_u64(out, msg.value);
            break;
        case MsgType::kPopReq:
        case MsgType::kStatsReq:
            break;
        case MsgType::kPushResp:
            put_u8(out, msg.ok ? 1 : 0);
            break;
        case MsgType::kPopResp:
            put_u8(out, msg.ok ? 1 : 0);
            put_u64(out, msg.value);
            break;
        case MsgType::kStatsResp:
            put_u64(out, msg.stats.pushes);
            put_u64(out, msg.stats.pops);
            put_u64(out, msg.stats.empties);
            put_u64(out, msg.stats.batches);
            put_u8(out, msg.stats.shape);
            break;
    }
}

DecodeResult decode(const std::uint8_t* data, std::size_t len, Message& out) {
    if (len < kHeaderBytes) return {DecodeStatus::kNeedMore, 0};
    const std::uint32_t payload = get_u32(data);
    // Validate the header before waiting for the body: a hostile length
    // field must not make the reader buffer megabytes hoping for a frame.
    if (payload == 0 || payload > kMaxPayload) {
        return {DecodeStatus::kError, 0};
    }
    if (len < kHeaderBytes + payload) return {DecodeStatus::kNeedMore, 0};

    const std::uint8_t* p = data + kHeaderBytes;
    const auto type = static_cast<MsgType>(p[0]);
    const std::size_t expect = payload_size(type);
    if (expect == 0 || expect != payload) {
        return {DecodeStatus::kError, 0};  // unknown type / size mismatch
    }

    out = Message{};
    out.type = type;
    out.tag = get_u64(p + 1);
    switch (type) {
        case MsgType::kPushReq:
            out.value = get_u64(p + 9);
            break;
        case MsgType::kPopReq:
        case MsgType::kStatsReq:
            break;
        case MsgType::kPushResp:
            out.ok = p[9] != 0;
            break;
        case MsgType::kPopResp:
            out.ok = p[9] != 0;
            out.value = get_u64(p + 10);
            break;
        case MsgType::kStatsResp:
            out.stats.pushes = get_u64(p + 9);
            out.stats.pops = get_u64(p + 17);
            out.stats.empties = get_u64(p + 25);
            out.stats.batches = get_u64(p + 33);
            out.stats.shape = p[41];
            break;
    }
    return {DecodeStatus::kOk, kHeaderBytes + payload};
}

}  // namespace sec::net
