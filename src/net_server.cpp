// net_server.cpp — SecServer implementation (net/server.hpp).
//
// Single-threaded event loop over an EventBackend. Batch discipline: every
// wait() batch is fully drained — accept to EAGAIN, read each ready
// connection to EAGAIN, decode every complete frame, apply it to the stack,
// buffer the response — then each touched connection is flushed once. The
// per-op AnyStack virtuals are fine here: a request already paid a syscall
// and a frame decode, so one virtual call is noise, and the interesting
// batching (kernel crossings amortized over the readiness batch) lives a
// layer below.
#include "net/server.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sec::net {
namespace {

constexpr std::size_t kEventCap = 128;
constexpr std::size_t kReadChunk = 16 * 1024;
// A connection whose decoded-but-unflushed output exceeds this is falling
// behind pathologically (the protocol is request/response with tiny
// frames); drop it rather than buffer without bound.
constexpr std::size_t kMaxOutBuffer = 4 * 1024 * 1024;

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SecServer::SecServer(AnyStack stack, ServerConfig cfg)
    : stack_(std::move(stack)), cfg_(std::move(cfg)) {}

SecServer::~SecServer() { stop(); }

std::string_view SecServer::backend_name() const noexcept {
    return backend_ ? backend_->name() : std::string_view{};
}

ServerStats SecServer::stats() const {
    ServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.pushes = pushes_.load(std::memory_order_relaxed);
    s.pops = pops_.load(std::memory_order_relaxed);
    s.empties = empties_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.max_batch = max_batch_.load(std::memory_order_relaxed);
    return s;
}

bool SecServer::start(std::string* err) {
    if (running_.load(std::memory_order_acquire)) return true;
    auto fail = [&](const std::string& what) {
        if (err != nullptr) *err = what;
        if (listen_fd_ >= 0) ::close(listen_fd_);
        if (wake_fd_ >= 0) ::close(wake_fd_);
        listen_fd_ = wake_fd_ = -1;
        backend_.reset();
        return false;
    };

    backend_ = make_event_backend(cfg_.backend, err);
    if (!backend_) return false;  // err already carries the reason

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        return fail(std::string("socket: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        return fail("bad listen address '" + cfg_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        return fail(std::string("bind: ") + std::strerror(errno));
    }
    if (::listen(listen_fd_, 128) != 0) {
        return fail(std::string("listen: ") + std::strerror(errno));
    }
    if (!set_nonblocking(listen_fd_)) {
        return fail(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &blen) != 0) {
        return fail(std::string("getsockname: ") + std::strerror(errno));
    }
    bound_port_ = ntohs(bound.sin_port);

    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        return fail(std::string("eventfd: ") + std::strerror(errno));
    }

    std::string backend_err;
    if (!backend_->add(listen_fd_, false, &backend_err) ||
        !backend_->add(wake_fd_, false, &backend_err)) {
        return fail("backend add: " + backend_err);
    }

    stop_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    exec::PoolOptions popts;
    popts.pin = cfg_.pin;
    popts.coordinator_in_barrier = false;
    pool_ = std::make_unique<exec::WorkerPool>(1, popts);
    pool_->start([this](exec::WorkerContext&) { loop(); });
    return true;
}

void SecServer::stop() {
    if (!running_.exchange(false, std::memory_order_acq_rel)) return;
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
    if (pool_) {
        pool_->join();
        pool_.reset();
    }
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    ::close(listen_fd_);
    ::close(wake_fd_);
    listen_fd_ = wake_fd_ = -1;
    backend_.reset();
}

void SecServer::loop() {
    IoEvent events[kEventCap];
    while (!stop_.load(std::memory_order_acquire)) {
        const int n = backend_->wait(events, kEventCap, 200);
        if (n < 0) break;  // non-retryable backend failure
        std::uint64_t batch_requests = 0;
        for (int i = 0; i < n; ++i) {
            const IoEvent& ev = events[i];
            if (ev.fd == listen_fd_) {
                accept_ready();
                continue;
            }
            if (ev.fd == wake_fd_) {
                std::uint64_t drain = 0;
                [[maybe_unused]] const auto r =
                    ::read(wake_fd_, &drain, sizeof(drain));
                continue;
            }
            const auto it = conns_.find(ev.fd);
            if (it == conns_.end()) continue;  // closed earlier this batch
            Conn& conn = it->second;
            bool alive = !ev.error;
            if (alive && ev.readable) {
                alive = conn_readable(ev.fd, conn, batch_requests);
            }
            if (alive && (ev.writable || conn.out.size() > conn.out_off)) {
                alive = flush(ev.fd, conn);
            }
            if (!alive) close_conn(ev.fd);
        }
        if (batch_requests > 0) {
            batches_.fetch_add(1, std::memory_order_relaxed);
            requests_.fetch_add(batch_requests, std::memory_order_relaxed);
            if (batch_requests >
                max_batch_.load(std::memory_order_relaxed)) {
                max_batch_.store(batch_requests, std::memory_order_relaxed);
            }
        }
    }
}

void SecServer::accept_ready() {
    for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // EAGAIN (drained) or a transient accept error
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::string err;
        if (!backend_->add(fd, false, &err)) {
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, Conn{});
        accepted_.fetch_add(1, std::memory_order_relaxed);
    }
}

bool SecServer::conn_readable(int fd, Conn& conn,
                              std::uint64_t& batch_requests) {
    // Drain the socket to EAGAIN — level-triggered backends would re-notify
    // anyway, but draining keeps the whole readiness batch's requests inside
    // this aggregation window.
    for (;;) {
        const std::size_t old = conn.in.size();
        conn.in.resize(old + kReadChunk);
        const ssize_t n = ::read(fd, conn.in.data() + old, kReadChunk);
        if (n > 0) {
            conn.in.resize(old + static_cast<std::size_t>(n));
            continue;
        }
        conn.in.resize(old);
        if (n == 0) return false;  // EOF
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
    }

    // Decode and apply every complete frame.
    std::size_t off = 0;
    while (off < conn.in.size()) {
        Message req;
        const DecodeResult r =
            decode(conn.in.data() + off, conn.in.size() - off, req);
        if (r.status == DecodeStatus::kNeedMore) break;
        if (r.status == DecodeStatus::kError) return false;
        off += r.consumed;
        apply(req, conn);
        ++batch_requests;
    }
    if (off > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + off);
    return conn.out.size() - conn.out_off <= kMaxOutBuffer;
}

void SecServer::apply(const Message& req, Conn& conn) {
    Message resp;
    resp.tag = req.tag;
    switch (req.type) {
        case MsgType::kPushReq: {
            resp.type = MsgType::kPushResp;
            resp.ok = stack_.push(req.value);
            pushes_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        case MsgType::kPopReq: {
            resp.type = MsgType::kPopResp;
            const auto v = stack_.pop();
            resp.ok = v.has_value();
            resp.value = v.value_or(0);
            if (resp.ok) {
                pops_.fetch_add(1, std::memory_order_relaxed);
            } else {
                empties_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
        case MsgType::kStatsReq: {
            resp.type = MsgType::kStatsResp;
            resp.stats.pushes = pushes_.load(std::memory_order_relaxed);
            resp.stats.pops = pops_.load(std::memory_order_relaxed);
            resp.stats.empties = empties_.load(std::memory_order_relaxed);
            resp.stats.batches = batches_.load(std::memory_order_relaxed);
            resp.stats.shape =
                static_cast<std::uint8_t>(stack_.shape());
            break;
        }
        default:
            // A well-formed frame of a response type: meaningless as a
            // request, but not a framing violation. Ignore it.
            return;
    }
    encode(resp, conn.out);
}

bool SecServer::flush(int fd, Conn& conn) {
    while (conn.out_off < conn.out.size()) {
        // MSG_NOSIGNAL: a peer that reset its connection must surface as
        // EPIPE on this fd (normal close path), not SIGPIPE for the process.
        const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn.want_write) {
                // No write interest registered means buffered replies would
                // only ever flush piggybacked on a read event; if the
                // registration fails, drop the connection instead.
                if (!backend_->modify(fd, true)) return false;
                conn.want_write = true;
            }
            return true;  // keep the connection; retry on writability
        }
        return false;  // EPIPE/ECONNRESET and friends: close the connection
    }
    conn.out.clear();
    conn.out_off = 0;
    if (conn.want_write) {
        conn.want_write = false;
        backend_->modify(fd, false);
    }
    return true;
}

void SecServer::close_conn(int fd) {
    backend_->remove(fd);
    ::close(fd);
    conns_.erase(fd);
}

}  // namespace sec::net
