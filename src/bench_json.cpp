// bench_json.cpp — BENCH_*.json snapshot writer/parser and the baseline
// regression compare (workload/bench_json.hpp). The JSON layer is a
// deliberately small hand-rolled subset (objects, arrays, strings, numbers,
// bools, null) — enough for the schema this file owns, no dependency.
#include "workload/bench_json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "exec/topology.hpp"

// Build facts injected per-source by CMake (see set_source_files_properties
// in CMakeLists.txt); the fallbacks keep non-CMake builds compiling.
#ifndef SEC_GIT_SHA
#define SEC_GIT_SHA "unknown"
#endif
#ifndef SEC_CXX_FLAGS
#define SEC_CXX_FLAGS ""
#endif
#ifndef SEC_BUILD_TYPE
#define SEC_BUILD_TYPE ""
#endif
#ifndef SEC_NATIVE_BUILD
#define SEC_NATIVE_BUILD 0
#endif

namespace sec::bench::json {

namespace {

// ---- writing ---------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(ch));
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
}

// Shortest decimal that parses back to the exact double (snapshots are
// compared cell-for-cell across runs, so the file must not lose bits).
void append_double(std::string& out, double v) {
    if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to 0, loudly odd
        out += "0";
        return;
    }
    char buf[40];
    for (int prec = 9; prec <= 17; prec += 4) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    out += buf;
}

void append_kv(std::string& out, std::string_view key, std::string_view v) {
    append_escaped(out, key);
    out += ": ";
    append_escaped(out, v);
}

void append_kv(std::string& out, std::string_view key, double v) {
    append_escaped(out, key);
    out += ": ";
    append_double(out, v);
}

void append_kv(std::string& out, std::string_view key, bool v) {
    append_escaped(out, key);
    out += v ? ": true" : ": false";
}

// ---- parsing ---------------------------------------------------------------

struct JValue {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = kNull;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JValue> arr;
    std::vector<std::pair<std::string, JValue>> obj;

    const JValue* get(std::string_view key) const noexcept {
        for (const auto& [k, v] : obj) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class Parser {
public:
    Parser(std::string_view text, std::string* err)
        : p_(text.data()), end_(text.data() + text.size()), err_(err) {}

    bool parse(JValue& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        if (p_ != end_) return fail("trailing content after document");
        return true;
    }

private:
    bool fail(const char* msg) {
        if (err_ != nullptr && err_->empty()) *err_ = msg;
        return false;
    }

    void skip_ws() {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r')) {
            ++p_;
        }
    }

    bool literal(const char* word, std::size_t n) {
        if (end_ - p_ < static_cast<std::ptrdiff_t>(n) ||
            std::memcmp(p_, word, n) != 0) {
            return fail("bad literal");
        }
        p_ += n;
        return true;
    }

    bool value(JValue& out) {
        if (p_ == end_) return fail("unexpected end of document");
        switch (*p_) {
            case '{': return object(out);
            case '[': return array(out);
            case '"':
                out.kind = JValue::kString;
                return string(out.str);
            case 't':
                out.kind = JValue::kBool;
                out.b = true;
                return literal("true", 4);
            case 'f':
                out.kind = JValue::kBool;
                out.b = false;
                return literal("false", 5);
            case 'n':
                out.kind = JValue::kNull;
                return literal("null", 4);
            default: return number(out);
        }
    }

    bool object(JValue& out) {
        out.kind = JValue::kObject;
        ++p_;  // '{'
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skip_ws();
            std::string key;
            if (p_ == end_ || *p_ != '"' || !string(key)) {
                return fail("expected object key");
            }
            skip_ws();
            if (p_ == end_ || *p_ != ':') return fail("expected ':'");
            ++p_;
            skip_ws();
            JValue v;
            if (!value(v)) return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (p_ == end_) return fail("unterminated object");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array(JValue& out) {
        out.kind = JValue::kArray;
        ++p_;  // '['
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            skip_ws();
            JValue v;
            if (!value(v)) return false;
            out.arr.push_back(std::move(v));
            skip_ws();
            if (p_ == end_) return fail("unterminated array");
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool string(std::string& out) {
        ++p_;  // '"'
        while (p_ != end_) {
            const char ch = *p_++;
            if (ch == '"') return true;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (p_ == end_) break;
            const char esc = *p_++;
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    // Our writer only emits \u00XX control escapes; decode
                    // the Latin-1 range and substitute '?' beyond it rather
                    // than carrying a full UTF-16 decoder.
                    if (end_ - p_ < 4) return fail("truncated \\u escape");
                    char hex[5] = {p_[0], p_[1], p_[2], p_[3], '\0'};
                    char* endp = nullptr;
                    const unsigned long cp = std::strtoul(hex, &endp, 16);
                    if (endp != hex + 4) return fail("bad \\u escape");
                    out += cp < 0x100 ? static_cast<char>(cp) : '?';
                    p_ += 4;
                    break;
                }
                default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool number(JValue& out) {
        char* endp = nullptr;
        out.kind = JValue::kNumber;
        out.num = std::strtod(p_, &endp);
        if (endp == p_) return fail("expected a value");
        p_ = endp;
        return true;
    }

    const char* p_;
    const char* end_;
    std::string* err_;
};

// DOM field readers with defaulting — a missing optional field keeps the
// Metadata default instead of failing the whole parse (older snapshots stay
// readable as the schema grows).
std::string get_str(const JValue& obj, std::string_view key) {
    const JValue* v = obj.get(key);
    return v != nullptr && v->kind == JValue::kString ? v->str : std::string();
}
double get_num(const JValue& obj, std::string_view key, double dflt = 0) {
    const JValue* v = obj.get(key);
    return v != nullptr && v->kind == JValue::kNumber ? v->num : dflt;
}
bool get_bool(const JValue& obj, std::string_view key) {
    const JValue* v = obj.get(key);
    return v != nullptr && v->kind == JValue::kBool && v->b;
}

std::string cell_id(const Cell& c) {
    // '\x1f' (unit separator) cannot appear in scenario/table names.
    return c.table + '\x1f' + c.key + '\x1f' + c.column;
}

double median(std::vector<double> v) {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

}  // namespace

// ---- Snapshot --------------------------------------------------------------

void Snapshot::add(std::string_view table, std::string_view key,
                   std::string_view column, std::string_view unit,
                   double value) {
    cells.push_back(Cell{std::string(table), std::string(key),
                         std::string(column), std::string(unit), value});
}

const Cell* Snapshot::find(std::string_view table, std::string_view key,
                           std::string_view column) const noexcept {
    for (const Cell& c : cells) {
        if (c.table == table && c.key == key && c.column == column) return &c;
    }
    return nullptr;
}

Metadata build_metadata() {
    Metadata m;
    m.git_sha = SEC_GIT_SHA;
    m.flags = SEC_CXX_FLAGS;
    m.build_type = SEC_BUILD_TYPE;
    m.march_native = SEC_NATIVE_BUILD != 0;
#if defined(__clang__)
    m.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    m.compiler = std::string("gcc ") + __VERSION__;
#else
    m.compiler = "unknown";
#endif
    m.cores = std::thread::hardware_concurrency();
    const topo::Topology& t = topo::Topology::system();
    m.packages = t.packages();
    m.cores_per_package = t.cores_per_package();
    m.smt_width = t.smt_width();
    m.l3_domains = t.l3_domains();
    return m;
}

// ---- file IO ---------------------------------------------------------------

bool write_snapshot(const Snapshot& snap, const std::string& path,
                    std::string* err) {
    std::string out;
    out.reserve(1024 + snap.cells.size() * 96);
    out += "{\n  \"schema\": \"sec-bench-snapshot-v1\",\n  \"meta\": {\n";
    const Metadata& m = snap.meta;
    auto line = [&out](const char* text) { out += text; };
    out += "    ";
    append_kv(out, "git_sha", m.git_sha);
    line(",\n    ");
    append_kv(out, "compiler", m.compiler);
    line(",\n    ");
    append_kv(out, "flags", m.flags);
    line(",\n    ");
    append_kv(out, "build_type", m.build_type);
    line(",\n    ");
    append_kv(out, "march_native", m.march_native);
    line(",\n    ");
    append_kv(out, "cores", static_cast<double>(m.cores));
    line(",\n    ");
    append_kv(out, "packages", static_cast<double>(m.packages));
    line(",\n    ");
    append_kv(out, "cores_per_package",
              static_cast<double>(m.cores_per_package));
    line(",\n    ");
    append_kv(out, "smt_width", static_cast<double>(m.smt_width));
    line(",\n    ");
    append_kv(out, "l3_domains", static_cast<double>(m.l3_domains));
    line(",\n    ");
    append_kv(out, "pin", m.pin);
    line(",\n    ");
    append_kv(out, "scenarios", m.scenarios);
    line(",\n    ");
    append_kv(out, "algos", m.algos);
    line(",\n    ");
    append_kv(out, "reclaim", m.reclaim);
    line(",\n    ");
    append_kv(out, "smoke", m.smoke);
    line(",\n    ");
    append_escaped(out, "threads");
    out += ": [";
    for (std::size_t i = 0; i < m.threads.size(); ++i) {
        if (i > 0) out += ", ";
        append_double(out, static_cast<double>(m.threads[i]));
    }
    out += "]";
    line(",\n    ");
    append_kv(out, "duration_ms", static_cast<double>(m.duration_ms));
    line(",\n    ");
    append_kv(out, "runs", static_cast<double>(m.runs));
    line(",\n    ");
    append_kv(out, "repeats", static_cast<double>(m.repeats));
    line(",\n    ");
    append_kv(out, "prefill", static_cast<double>(m.prefill));
    line(",\n    ");
    append_kv(out, "value_range", static_cast<double>(m.value_range));
    line(",\n    ");
    append_kv(out, "seed", static_cast<double>(m.seed));
    out += "\n  },\n  \"cells\": [\n";
    for (std::size_t i = 0; i < snap.cells.size(); ++i) {
        const Cell& c = snap.cells[i];
        out += "    {";
        append_kv(out, "table", c.table);
        out += ", ";
        append_kv(out, "key", c.key);
        out += ", ";
        append_kv(out, "column", c.column);
        out += ", ";
        append_kv(out, "unit", c.unit);
        out += ", ";
        append_kv(out, "value", c.value);
        out += i + 1 < snap.cells.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        if (err != nullptr) *err = "cannot open '" + path + "' for writing";
        return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok && err != nullptr) *err = "short write to '" + path + "'";
    return ok;
}

bool read_snapshot(const std::string& path, Snapshot& out, std::string* err) {
    if (err != nullptr) err->clear();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (err != nullptr) *err = "cannot open '" + path + "'";
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);

    JValue doc;
    if (!Parser(text, err).parse(doc)) return false;
    if (doc.kind != JValue::kObject) {
        if (err != nullptr) *err = "document is not an object";
        return false;
    }
    if (get_str(doc, "schema") != "sec-bench-snapshot-v1") {
        if (err != nullptr) *err = "unknown or missing schema tag";
        return false;
    }

    out = Snapshot{};
    if (const JValue* meta = doc.get("meta");
        meta != nullptr && meta->kind == JValue::kObject) {
        Metadata& m = out.meta;
        m.git_sha = get_str(*meta, "git_sha");
        m.compiler = get_str(*meta, "compiler");
        m.flags = get_str(*meta, "flags");
        m.build_type = get_str(*meta, "build_type");
        m.march_native = get_bool(*meta, "march_native");
        m.cores = static_cast<unsigned>(get_num(*meta, "cores"));
        // Topology fields default to zero / "" so pre-exec-layer snapshots
        // stay readable (and never warn in topology_mismatch).
        m.packages = static_cast<unsigned>(get_num(*meta, "packages"));
        m.cores_per_package =
            static_cast<unsigned>(get_num(*meta, "cores_per_package"));
        m.smt_width = static_cast<unsigned>(get_num(*meta, "smt_width"));
        m.l3_domains = static_cast<unsigned>(get_num(*meta, "l3_domains"));
        m.pin = get_str(*meta, "pin");
        m.scenarios = get_str(*meta, "scenarios");
        m.algos = get_str(*meta, "algos");
        m.reclaim = get_str(*meta, "reclaim");
        m.smoke = get_bool(*meta, "smoke");
        if (const JValue* th = meta->get("threads");
            th != nullptr && th->kind == JValue::kArray) {
            for (const JValue& v : th->arr) {
                if (v.kind == JValue::kNumber && v.num >= 1) {
                    m.threads.push_back(static_cast<unsigned>(v.num));
                }
            }
        }
        m.duration_ms = static_cast<unsigned>(get_num(*meta, "duration_ms"));
        m.runs = static_cast<unsigned>(get_num(*meta, "runs"));
        m.repeats =
            static_cast<unsigned>(get_num(*meta, "repeats", /*dflt=*/1));
        m.prefill = static_cast<std::size_t>(get_num(*meta, "prefill"));
        m.value_range =
            static_cast<std::size_t>(get_num(*meta, "value_range"));
        m.seed = static_cast<std::uint64_t>(get_num(*meta, "seed"));
    }
    const JValue* cells = doc.get("cells");
    if (cells == nullptr || cells->kind != JValue::kArray) {
        if (err != nullptr) *err = "missing 'cells' array";
        return false;
    }
    for (const JValue& v : cells->arr) {
        if (v.kind != JValue::kObject) {
            if (err != nullptr) *err = "cell is not an object";
            return false;
        }
        out.add(get_str(v, "table"), get_str(v, "key"), get_str(v, "column"),
                get_str(v, "unit"), get_num(v, "value"));
    }
    return true;
}

// ---- median + compare ------------------------------------------------------

Snapshot median_of(const std::vector<Snapshot>& runs) {
    Snapshot out;
    if (runs.empty()) return out;
    out.meta = runs.front().meta;

    std::vector<Cell> order;                         // first-appearance order
    std::map<std::string, std::size_t> index;        // cell id -> order slot
    std::vector<std::vector<double>> samples;
    for (const Snapshot& run : runs) {
        // Within one run a re-written identity keeps its LAST value (the
        // Table::add contract), so collapse per run before sampling.
        std::map<std::string, double> last;
        for (const Cell& c : run.cells) {
            const std::string id = cell_id(c);
            if (index.find(id) == index.end()) {
                index.emplace(id, order.size());
                order.push_back(c);
                samples.emplace_back();
            }
            last[id] = c.value;
        }
        for (const auto& [id, value] : last) {
            samples[index.at(id)].push_back(value);
        }
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i].value = median(samples[i]);
    }
    out.cells = std::move(order);
    return out;
}

bool gated_unit(std::string_view unit) noexcept {
    return unit.find("ops") != std::string_view::npos;
}

CompareResult compare(const Snapshot& baseline, const Snapshot& current,
                      double tolerance_pct) {
    CompareResult r;
    r.tolerance_pct = tolerance_pct;

    std::map<std::string, double> cur;  // last wins, Table::add contract
    for (const Cell& c : current.cells) cur[cell_id(c)] = c.value;

    // Global hardware-speed shift: the median current/base ratio over gated
    // cells. Dividing it out keeps a laptop baseline meaningful on a slower
    // (or faster) CI runner while still catching one cell moving against
    // its peers.
    std::vector<double> ratios;
    for (const Cell& b : baseline.cells) {
        if (!gated_unit(b.unit) || !(b.value > 0)) continue;
        const auto it = cur.find(cell_id(b));
        if (it != cur.end() && it->second > 0) {
            ratios.push_back(it->second / b.value);
        }
    }
    r.scale = ratios.empty() ? 1.0 : median(std::move(ratios));
    if (!(r.scale > 0)) r.scale = 1.0;

    for (const Cell& b : baseline.cells) {
        CellDelta d;
        d.base = b;
        d.gated = gated_unit(b.unit);
        const auto it = cur.find(cell_id(b));
        if (it == cur.end()) {
            d.missing = true;
            d.regressed = d.gated;  // a vanished gated cell IS a regression
        } else {
            d.current = it->second;
            if (b.value > 0) {
                d.raw_delta_pct = 100.0 * (d.current - b.value) / b.value;
                d.norm_delta_pct =
                    100.0 * (d.current / (b.value * r.scale) - 1.0);
            }
            // Strictly beyond tolerance: a cell sitting exactly at the
            // edge passes (bench_json_test pins this).
            d.regressed =
                d.gated && b.value > 0 && d.norm_delta_pct < -tolerance_pct;
        }
        if (d.regressed) ++r.regressions;
        r.cells.push_back(std::move(d));
        cur.erase(cell_id(b));
    }
    r.extra = static_cast<unsigned>(cur.size());
    return r;
}

std::string topology_mismatch(const Metadata& baseline,
                              const Metadata& current) {
    std::string out;
    const auto field = [&out](const char* name, unsigned base, unsigned cur) {
        if (base == 0 || base == cur) return;  // zero = pre-topology snapshot
        if (!out.empty()) out += ", ";
        out += name;
        out += ' ';
        out += std::to_string(base);
        out += " -> ";
        out += std::to_string(cur);
    };
    field("packages", baseline.packages, current.packages);
    field("cores_per_package", baseline.cores_per_package,
          current.cores_per_package);
    field("smt_width", baseline.smt_width, current.smt_width);
    field("l3_domains", baseline.l3_domains, current.l3_domains);
    if (!baseline.pin.empty() && baseline.pin != current.pin) {
        if (!out.empty()) out += ", ";
        out += "pin '" + baseline.pin + "' -> '" + current.pin + "'";
    }
    return out;
}

void print_compare(const CompareResult& result, std::FILE* out) {
    std::fprintf(out,
                 "\n== baseline compare (scale=%.3f, tolerance=%.1f%% on "
                 "normalized gated deltas) ==\n",
                 result.scale, result.tolerance_pct);
    std::fprintf(out, "%-24s %-6s %-16s %10s %10s %8s %8s  %s\n", "table",
                 "key", "column", "base", "current", "raw%", "norm%",
                 "verdict");
    for (const CellDelta& d : result.cells) {
        const char* verdict = d.regressed          ? "REGRESSION"
                              : !d.gated           ? "info"
                              : d.norm_delta_pct >
                                      result.tolerance_pct ? "improved"
                                                           : "ok";
        if (d.missing) {
            std::fprintf(out, "%-24s %-6s %-16s %10.3f %10s %8s %8s  %s\n",
                         d.base.table.c_str(), d.base.key.c_str(),
                         d.base.column.c_str(), d.base.value, "MISSING", "-",
                         "-", verdict);
        } else {
            std::fprintf(out,
                         "%-24s %-6s %-16s %10.3f %10.3f %+8.1f %+8.1f  %s\n",
                         d.base.table.c_str(), d.base.key.c_str(),
                         d.base.column.c_str(), d.base.value, d.current,
                         d.raw_delta_pct, d.norm_delta_pct, verdict);
        }
    }
    std::fprintf(out,
                 "baseline cells: %zu · regressions: %u · current-only "
                 "cells: %u\n",
                 result.cells.size(), result.regressions, result.extra);
    if (result.regressions > 0) {
        std::fprintf(out,
                     "FAIL: %u gated cell(s) slower than baseline beyond "
                     "%.1f%% after scale normalization\n",
                     result.regressions, result.tolerance_pct);
    } else {
        std::fprintf(out, "PASS: no gated cell beyond tolerance\n");
    }
    std::fflush(out);
}

}  // namespace sec::bench::json
