// workload/service.hpp — the open-loop service harness (sec::bench::serve,
// DESIGN.md §9). Everything else in the workload layer is closed-loop:
// workers issue the next op the moment the previous one returns, so the
// measured rate adapts to the stack and queueing delay is invisible
// (coordinated omission). This harness inverts that: a Poisson or bursty
// arrival schedule fixes WHEN each request exists, producer lanes feed the
// structure under test as the central job buffer, and consumers charge each
// request completion minus *scheduled* arrival — a stalled combiner is
// billed the whole backed-up queue, not just the op in flight.
//
// run_service_any reports two histograms side by side:
//   sojourn  arrival-to-completion (the open-loop tail the user feels)
//   service  the pop call alone    (the closed-loop view, for contrast)
// and find_service_knee binary-searches the highest offered load whose
// sojourn p99 stays under a limit — the knee of the latency/throughput
// curve, per algorithm.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "core/stack_concept.hpp"
#include "workload/any_runner.hpp"
#include "workload/histogram.hpp"

namespace sec::bench {

enum class ArrivalKind {
    kPoisson,  // memoryless: exponential inter-arrival times
    kBurst,    // on/off: arrivals compressed into the duty window of each
               // period at rate/duty, idle otherwise; mean rate preserved
};

// "poisson" / "burst" -> kind; nullopt on anything else (callers reject
// loudly — a typo must not silently measure a different arrival process).
std::optional<ArrivalKind> parse_arrival(std::string_view name);
std::string_view arrival_name(ArrivalKind kind) noexcept;

struct ServiceConfig {
    // Lane split: producers replay arrival schedules, consumers serve the
    // buffer. Both must be >= 1.
    unsigned producers = 1;
    unsigned consumers = 1;
    // Offered load across ALL producer lanes, in Kops/s (the --load unit).
    double load_kops = 50.0;
    // Arrival-schedule horizon: requests are scheduled in [0, duration).
    std::chrono::milliseconds duration{200};
    ArrivalKind arrival = ArrivalKind::kPoisson;
    // Burst shape (kBurst only): arrivals occupy the first `burst_duty`
    // fraction of every `burst_period`, at load/duty within the window.
    std::chrono::milliseconds burst_period{10};
    double burst_duty = 0.25;
    std::uint64_t seed = 0;
    // Fault injection (tests): consumer 0 stalls once for `stall_ns` after
    // its `stall_after_op`-th completion (see ServeConsumeArgs).
    std::uint64_t stall_after_op = 0;
    std::uint64_t stall_ns = 0;
    // Lane placement (`--pin` / SEC_BENCH_PIN): producers take the first
    // slots of the policy's cpu order, consumers the next ones, so the two
    // pools never stack on the same cpu until the machine is full.
    topo::PinPolicy pin = topo::PinPolicy::kNone;
};

struct ServiceResult {
    std::uint64_t produced = 0;   // requests in the generated schedules
    std::uint64_t completed = 0;  // requests consumers actually served
    double offered_kops = 0;      // from the schedules, not the target
    double achieved_kops = 0;     // completed / window (drain included)
    double window_s = 0;          // epoch -> last consumer exit
    LatencyHistogram sojourn;     // completion - scheduled arrival
    LatencyHistogram service;     // pop call duration alone
};

// Deterministic arrival schedule for ONE producer lane: ascending ns
// offsets from the run epoch, rate `lane_ops_s`, horizon cfg.duration.
// Identical (cfg, lane_ops_s, seed) -> identical schedule.
std::vector<std::uint64_t> make_arrival_schedule(const ServiceConfig& cfg,
                                                 double lane_ops_s,
                                                 std::uint64_t seed);

// One open-loop window on a fresh structure from `make`: generate per-lane
// schedules, run producers + consumers to completion (consumers drain the
// buffer after the schedules end), merge per-consumer histograms.
ServiceResult run_service_any(const AnyStackFactory& make,
                              const ServiceConfig& cfg);

struct KneeConfig {
    double start_kops = 5.0;       // first probe; must be > 0
    double max_kops = 100000.0;    // doubling-phase cap
    std::uint64_t p99_limit_ns = 20'000'000;  // "explodes" above this
    unsigned refine_steps = 4;     // bisections after the doubling phase
};

struct KneeResult {
    double sustainable_kops = 0;  // highest probe under the p99 limit
    double p99_ns_at_knee = 0;    // sojourn p99 at that load
    unsigned probes = 0;          // service windows spent searching
};

// One probe of the knee search, in search order. The hook receives every
// probe as it completes, so a scenario can persist the whole binary-search
// trace (doubling phase + bisections), not just the final knee.
struct KneeProbe {
    unsigned index = 0;        // 0-based position in the search
    double offered_kops = 0;   // the load this probe offered
    double achieved_kops = 0;  // what the window actually completed
    double p99_ns = 0;         // sojourn p99 of the probe window
    bool sustainable = false;  // under the limit, nothing lost
};

// Probe-progress hook for scenario logging. Pass nullptr for silence.
using KneeProbeHook = std::function<void(const KneeProbe&)>;

// Exponential doubling from start_kops until the sojourn p99 exceeds
// p99_limit_ns (or max_kops), then `refine_steps` bisections between the
// last sustainable and first unsustainable load. Each probe is one
// cfg.duration service window on a fresh structure.
KneeResult find_service_knee(const AnyStackFactory& make, ServiceConfig cfg,
                             const KneeConfig& knee,
                             const KneeProbeHook& on_probe = nullptr);

}  // namespace sec::bench
