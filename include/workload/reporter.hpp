// workload/reporter.hpp — result table: human-aligned on stdout plus
// machine-greppable CSV lines (`CSV,<table>,<threads>,<column>,<value>`).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sec::bench {

class Table {
public:
    Table(std::string name, std::vector<std::string> columns);

    void add(unsigned threads, std::string_view column, double value);
    void print() const;

    const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    std::vector<std::string> columns_;
    // threads -> column -> Mops (ordered so rows print in grid order).
    std::map<unsigned, std::map<std::string, double, std::less<>>> rows_;
};

}  // namespace sec::bench
