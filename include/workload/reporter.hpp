// workload/reporter.hpp — result table: human-aligned on stdout plus
// machine-greppable CSV lines (`CSV,<table>,<threads>,<column>,<value>`),
// with an optional file sink (`secbench --csv`) that gets headerful
// `table,key,column,value` rows instead.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace sec::bench {

class Table {
public:
    // `unit` labels the printed header; throughput tables keep the historic
    // default, the service scenarios pass their own ("us", "Kops/s").
    Table(std::string name, std::vector<std::string> columns,
          std::string unit = "Mops/s");

    // Adding a value for a (threads, column) cell that already holds one
    // overwrites it (last write wins) but warns once per table on stderr —
    // a duplicate cell is almost always a scenario bug (two series writing
    // the same column, a row key collision), and silent overwrite hid it.
    void add(unsigned threads, std::string_view column, double value);
    void print() const;

    // Append this table's cells to `out` as `table,key,column,value` rows,
    // key = thread count (write_csv_header first, once per file).
    void write_csv(std::FILE* out) const;
    static void write_csv_header(std::FILE* out);

    const std::string& name() const noexcept { return name_; }
    const std::string& unit() const noexcept { return unit_; }
    // Total duplicate-cell overwrites since construction (the warning
    // prints only for the first; tests assert on this count).
    unsigned duplicates() const noexcept { return duplicates_; }

    // Visit every populated cell in grid order: fn(threads, column, value).
    // The BENCH_*.json snapshot writer serializes tables through this.
    template <class Fn>
    void for_each_cell(Fn&& fn) const {
        for (const auto& [threads, cells] : rows_) {
            for (const auto& c : columns_) {
                const auto it = cells.find(c);
                if (it != cells.end()) fn(threads, c, it->second);
            }
        }
    }

private:
    std::string name_;
    std::vector<std::string> columns_;
    std::string unit_;
    unsigned duplicates_ = 0;
    // threads -> column -> Mops (ordered so rows print in grid order).
    std::map<unsigned, std::map<std::string, double, std::less<>>> rows_;
};

// The stderr progress line every series prints while a table fills
// (previously duplicated across the per-figure drivers).
void progress_line(std::string_view column, unsigned threads, double mops);

}  // namespace sec::bench
