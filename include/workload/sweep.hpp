// workload/sweep.hpp — the secbench parameter-sweep engine: cross-product
// runs over the SEC tuning knobs (aggregator count x freezer backoff),
// emitting long-form CSV so the paper's tuning surfaces (§6/Figure 4 and
// the §3.1 backoff sweet spot) can be regenerated on any machine and fed
// back into static Configs — or compared against what SEC@adaptive finds at
// runtime (the `tuning` scenario).
//
//   secbench sweep --sweep agg=1:5,backoff=0:4096
//   secbench --sweep agg=1:2,backoff=0:256 --smoke --csv sweep.csv
//
// Spec grammar (comma-separated knobs, each a value, an inclusive range, or
// a stepped range):
//   agg=3            one value
//   agg=1:5          1,2,3,4,5          (unit step)
//   backoff=0:4096   0,64,128,...,4096  (geometric doubling from 64ns; a 0
//                                        lower bound contributes the
//                                        backoff-disabled point)
//   backoff=0:4096:1024   0,1024,2048,3072,4096  (explicit additive step)
//   agg=5+1:2             1,2,5  ('+' unions values/ranges; the union is
//                                 sorted and deduped, so overlapping
//                                 segments can never inflate the
//                                 cross-product or duplicate CSV rows)
// Omitted knobs pin to the Config default. See REPRODUCING.md for the CSV
// schema contract (`sweep,<threads>,agg<A>_bo<B>,<mops>`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/registry.hpp"

namespace sec::bench {

struct SweepSpec {
    std::vector<std::size_t> aggs;          // aggregator counts to sweep
    std::vector<std::uint64_t> backoffs;    // freezer backoff windows (ns)

    // Parse "agg=1:5,backoff=0:4096". Returns nullopt and sets `error` on a
    // malformed spec (unknown knob, empty/backwards range, agg outside
    // [1, kMaxAggregators]). Each knob's values come back sorted and
    // deduped, whatever the '+' segments looked like. Omitted knobs default
    // to the Config defaults.
    static std::optional<SweepSpec> parse(std::string_view spec,
                                          std::string* error = nullptr);

    std::size_t combinations() const noexcept {
        return aggs.size() * backoffs.size();
    }
};

// Run the cross-product over the context's thread grid and selection: each
// (agg, backoff) combination becomes a Table column "agg<A>_bo<B>" measured
// with the update-heavy mix (where tuning matters most). Uses the SEC
// variant of the current selection when one is selected, plain SEC
// otherwise. Prints the table, appends long-form CSV to the context's sink,
// and reports the per-thread-count argmax so README's "choosing
// num_aggregators" guidance can cite real output.
int run_sweep(const ScenarioContext& ctx, const SweepSpec& spec);

}  // namespace sec::bench
