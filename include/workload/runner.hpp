// workload/runner.hpp — the timed-window throughput harness every bench
// shares: prefill, barrier, fixed measurement window, per-thread padded op
// counters, mean across runs.
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/op_mix.hpp"

namespace sec::bench {

struct RunConfig {
    unsigned threads = 1;
    std::chrono::milliseconds duration{200};
    std::size_t prefill = 0;
    OpMix mix = kUpdateHeavy;
    std::size_t value_range = std::size_t{1} << 20;
    unsigned runs = 1;
};

struct RunResult {
    double mops = 0;  // million operations per second, mean across runs
    std::uint64_t total_ops = 0;  // summed across runs
};

// `make()` may return a smart pointer (fresh structure per run) or a raw
// pointer (caller keeps the structure alive, e.g. to read stats afterwards).
template <class Factory>
RunResult run_throughput(Factory&& make, const RunConfig& cfg) {
    RunResult result;
    for (unsigned run = 0; run < cfg.runs; ++run) {
        auto holder = make();
        auto& stack = *holder;

        std::atomic<bool> stop{false};
        std::vector<CacheAligned<std::uint64_t>> ops(cfg.threads);
        std::barrier sync(static_cast<std::ptrdiff_t>(cfg.threads) + 1);

        std::vector<std::thread> workers;
        workers.reserve(cfg.threads);
        for (unsigned t = 0; t < cfg.threads; ++t) {
            workers.emplace_back([&, t, run] {
                Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull + run);
                // Each worker loads its share of the prefill so deep
                // prefills parallelise and (for TSI) spread across pools.
                std::size_t share = cfg.prefill / cfg.threads;
                if (t == 0) share += cfg.prefill % cfg.threads;
                for (std::size_t i = 0; i < share; ++i) {
                    stack.push(static_cast<typename std::remove_reference_t<
                                   decltype(stack)>::value_type>(
                        rng.next_below(cfg.value_range)));
                }
                sync.arrive_and_wait();
                std::uint64_t local = 0;
                const unsigned push_cut = cfg.mix.push_pct;
                const unsigned pop_cut = cfg.mix.update_pct();
                while (!stop.load(std::memory_order_relaxed)) {
                    const std::uint64_t r = rng.next_below(100);
                    if (r < push_cut) {
                        stack.push(static_cast<typename std::remove_reference_t<
                                       decltype(stack)>::value_type>(
                            rng.next_below(cfg.value_range)));
                    } else if (r < pop_cut) {
                        (void)stack.pop();
                    } else {
                        (void)stack.peek();
                    }
                    ++local;
                }
                *ops[t] = local;
            });
        }

        sync.arrive_and_wait();
        const auto start = std::chrono::steady_clock::now();
        std::this_thread::sleep_for(cfg.duration);
        stop.store(true, std::memory_order_relaxed);
        const auto end = std::chrono::steady_clock::now();
        for (auto& w : workers) w.join();

        std::uint64_t total = 0;
        for (const auto& c : ops) total += *c;
        const double us = std::chrono::duration<double, std::micro>(
                              end - start)
                              .count();
        result.total_ops += total;
        result.mops += us > 0 ? static_cast<double>(total) / us : 0.0;
    }
    result.mops /= cfg.runs;
    return result;
}

}  // namespace sec::bench
