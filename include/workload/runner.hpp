// workload/runner.hpp — the timed-window throughput harness every bench
// shares, split into reusable phases:
//
//   phase_prefill      load a worker's share of the initial population
//   phase_mixed_until  the measured mixed-op loop (runs until `stop`)
//   phase_mixed_ops    a fixed-op-count mixed loop (churn / micro timing)
//   phase_timed_until  the mixed loop with per-op latency recording
//
// Scenarios compose phases (e.g. a pop-only drain after a push-only fill)
// instead of re-writing the monolithic worker lambda. The same templates
// back both the statically-typed run_throughput below and the type-erased
// AnyStack path (StackModel): the hot loop is instantiated against the
// concrete stack type either way, so the erased path pays virtual dispatch
// only at phase boundaries — never per op. `secbench micro` measures the
// two paths side by side to keep that property honest.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/op_mix.hpp"
#include "core/stack_concept.hpp"
#include "exec/worker_pool.hpp"
#include "workload/histogram.hpp"

namespace sec::bench {

struct RunConfig {
    // Worker count. Precondition: threads >= 1 — the harness divides the
    // prefill across workers and has no one to run it (or the measured
    // window) otherwise. run_throughput returns an all-zero RunResult for
    // threads == 0 instead of dividing by zero.
    unsigned threads = 1;
    std::chrono::milliseconds duration{200};
    std::size_t prefill = 0;
    OpMix mix = kUpdateHeavy;
    std::size_t value_range = std::size_t{1} << 20;
    unsigned runs = 1;
    // Base seed for the per-worker op-mix RNGs (`--seed` / SEC_BENCH_SEED):
    // worker t draws from phase_seed(seed, t, run), so two runs with the
    // same seed replay the same op sequences for A/B comparisons.
    std::uint64_t seed = 0;
    // Worker placement (`--pin` / SEC_BENCH_PIN). kNone reproduces the
    // historical unpinned threads; anything else pins workers per the
    // policy's plan over the host topology (best-effort — a container that
    // refuses affinity runs unpinned).
    topo::PinPolicy pin = topo::PinPolicy::kNone;
    // Per-worker hardware counter groups over the measured span; degrades
    // to no data (RunResult::perf.any() == false) when perf_event_open is
    // denied, as in CI containers.
    bool counters = false;
};

struct RunResult {
    double mops = 0;  // million operations per second, mean across runs
    std::uint64_t total_ops = 0;  // summed across runs
    // Counter totals over the measured spans, summed across workers and
    // runs. Check perf.any() before deriving per-op rates.
    exec::PerfTotals perf;
};

// This worker's slice of a prefill divided across `threads` workers
// (worker 0 absorbs the remainder).
inline std::size_t prefill_share(std::size_t prefill, unsigned threads,
                                 unsigned t) {
    std::size_t share = prefill / threads;
    if (t == 0) share += prefill % threads;
    return share;
}

// ---- reclamation hooks -----------------------------------------------------

// The hook templates themselves moved to exec/worker_pool.hpp (the worker
// lifecycle layer owns the contract); these aliases keep every phase_*
// call site spelled the same.
namespace detail {
using sec::exec::offline_hook;
using sec::exec::quiesce_hook;
}  // namespace detail

// ---- the phases ------------------------------------------------------------

template <ConcurrentContainer S>
void phase_prefill(S& stack, std::size_t count, const PhaseArgs& args) {
    Xoshiro256 rng(args.seed);
    for (std::size_t i = 0; i < count; ++i) {
        detail::quiesce_hook(stack);
        stack.push(static_cast<typename S::value_type>(
            rng.next_below(args.value_range)));
    }
    detail::offline_hook(stack);
}

template <ConcurrentContainer S>
std::uint64_t phase_mixed_until(S& stack, const std::atomic<bool>& stop,
                                const PhaseArgs& args) {
    Xoshiro256 rng(args.seed);
    const unsigned push_cut = args.mix.push_pct;
    const unsigned pop_cut = args.mix.update_pct();
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        detail::quiesce_hook(stack);
        const std::uint64_t r = rng.next_below(100);
        if (r < push_cut) {
            stack.push(static_cast<typename S::value_type>(
                rng.next_below(args.value_range)));
        } else if (r < pop_cut) {
            (void)stack.pop();
        } else {
            (void)stack.peek();
        }
        ++local;
    }
    detail::offline_hook(stack);
    return local;
}

template <ConcurrentContainer S>
std::uint64_t phase_mixed_ops(S& stack, std::uint64_t count,
                              const PhaseArgs& args) {
    Xoshiro256 rng(args.seed);
    const unsigned push_cut = args.mix.push_pct;
    const unsigned pop_cut = args.mix.update_pct();
    for (std::uint64_t i = 0; i < count; ++i) {
        detail::quiesce_hook(stack);
        const std::uint64_t r = rng.next_below(100);
        if (r < push_cut) {
            stack.push(static_cast<typename S::value_type>(
                rng.next_below(args.value_range)));
        } else if (r < pop_cut) {
            (void)stack.pop();
        } else {
            (void)stack.peek();
        }
    }
    detail::offline_hook(stack);
    return count;
}

// ---- open-loop service lanes (workload/service.hpp, DESIGN.md §9) ----------

// Producer lane: replay a precomputed arrival schedule, pushing each request
// stamped with its scheduled ns offset as the value. The lane waits for each
// scheduled instant (coarse sleep, then a yield loop so few-core hosts don't
// starve the consumers), but it never edits the stamp when it falls behind —
// a late push is billed to the request, which is exactly the
// coordinated-omission-free contract.
template <ConcurrentContainer S>
std::uint64_t phase_serve_produce(S& stack, const ServeProduceArgs& a) {
    using Clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < a.count; ++i) {
        detail::quiesce_hook(stack);
        const auto due = a.epoch + std::chrono::nanoseconds(a.schedule[i]);
        for (;;) {
            const auto now = Clock::now();
            if (now >= due) break;
            const auto gap = due - now;
            if (gap > std::chrono::microseconds(200)) {
                std::this_thread::sleep_for(gap -
                                            std::chrono::microseconds(100));
            } else {
                std::this_thread::yield();
            }
            // QSBR lanes must keep announcing quiescence while idle between
            // arrivals, or a sleeping producer stalls every grace period.
            detail::quiesce_hook(stack);
        }
        stack.push(static_cast<typename S::value_type>(a.schedule[i]));
    }
    detail::offline_hook(stack);
    return a.count;
}

// Consumer lane: pop until the producers are done AND the buffer is drained.
// Two histograms per op: `service` times the pop call alone (the closed-loop
// view), `sojourn` charges completion minus the request's scheduled arrival
// (the open-loop view). A consumer that stalls — preempted, combining for
// others, or the injected test stall — inflates the sojourn of every request
// backed up behind it, which closed-loop service timing cannot see.
template <ConcurrentContainer S>
std::uint64_t phase_serve_consume(S& stack, const std::atomic<bool>& stop,
                                  const ServeConsumeArgs& a,
                                  LatencyHistogram& sojourn,
                                  LatencyHistogram& service) {
    using Clock = std::chrono::steady_clock;
    std::uint64_t done = 0;
    bool stalled = false;
    sec::detail::Backoff backoff;
    for (;;) {
        detail::quiesce_hook(stack);
        if (!stalled && a.stall_ns != 0 && done >= a.stall_after_op) {
            stalled = true;
            sec::detail::spin_for_ns(a.stall_ns);
        }
        const auto t0 = Clock::now();
        const auto v = stack.pop();
        const auto t1 = Clock::now();
        if (v) {
            service.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
            const auto due =
                a.epoch + std::chrono::nanoseconds(static_cast<std::uint64_t>(
                              static_cast<AnyStack::value_type>(*v)));
            sojourn.record(
                t1 > due ? static_cast<std::uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(t1 - due)
                                   .count())
                         : 0);
            ++done;
        } else if (stop.load(std::memory_order_relaxed)) {
            // Producers joined before `stop` was set, so an empty pop after
            // observing it means the buffer is drained for good.
            break;
        } else {
            backoff.pause();
        }
    }
    detail::offline_hook(stack);
    return done;
}

template <ConcurrentContainer S>
std::uint64_t phase_timed_until(S& stack, const std::atomic<bool>& stop,
                                const PhaseArgs& args, LatencyHistogram& hist) {
    Xoshiro256 rng(args.seed);
    const unsigned push_cut = args.mix.push_pct;
    const unsigned pop_cut = args.mix.update_pct();
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        detail::quiesce_hook(stack);
        const std::uint64_t r = rng.next_below(100);
        const auto t0 = std::chrono::steady_clock::now();
        if (r < push_cut) {
            stack.push(static_cast<typename S::value_type>(
                rng.next_below(args.value_range)));
        } else if (r < pop_cut) {
            (void)stack.pop();
        } else {
            (void)stack.peek();
        }
        const auto t1 = std::chrono::steady_clock::now();
        hist.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        ++local;
    }
    detail::offline_hook(stack);
    return local;
}

// ---- type erasure over the phases ------------------------------------------

// AnyStack::Model for a concrete stack type: per-op calls forward, phase
// calls drop straight into the templates above with S statically known.
template <ConcurrentContainer S>
class StackModel final : public AnyStack::Model {
public:
    explicit StackModel(std::unique_ptr<S> stack) : stack_(std::move(stack)) {}

    bool push(AnyStack::value_type v) override {
        return stack_->push(static_cast<typename S::value_type>(v));
    }
    std::optional<AnyStack::value_type> pop() override {
        if (auto v = stack_->pop()) {
            return static_cast<AnyStack::value_type>(*v);
        }
        return std::nullopt;
    }
    std::optional<AnyStack::value_type> peek() override {
        if (auto v = stack_->peek()) {
            return static_cast<AnyStack::value_type>(*v);
        }
        return std::nullopt;
    }
    ContainerShape shape() const override { return S::kShape; }

    void prefill(std::size_t count, const PhaseArgs& args) override {
        phase_prefill(*stack_, count, args);
    }
    std::uint64_t mixed_until(const std::atomic<bool>& stop,
                              const PhaseArgs& args) override {
        return phase_mixed_until(*stack_, stop, args);
    }
    std::uint64_t mixed_ops(std::uint64_t count,
                            const PhaseArgs& args) override {
        return phase_mixed_ops(*stack_, count, args);
    }
    std::uint64_t timed_until(const std::atomic<bool>& stop,
                              const PhaseArgs& args,
                              LatencyHistogram& hist) override {
        return phase_timed_until(*stack_, stop, args, hist);
    }
    std::uint64_t serve_produce(const ServeProduceArgs& args) override {
        return phase_serve_produce(*stack_, args);
    }
    std::uint64_t serve_consume(const std::atomic<bool>& stop,
                                const ServeConsumeArgs& args,
                                LatencyHistogram& sojourn,
                                LatencyHistogram& service) override {
        return phase_serve_consume(*stack_, stop, args, sojourn, service);
    }

    bool has_stats() const override {
        return requires(const S& s) {
            { s.stats() } -> std::same_as<StatsSnapshot>;
        };
    }
    StatsSnapshot stats() const override {
        if constexpr (requires(const S& s) {
                          { s.stats() } -> std::same_as<StatsSnapshot>;
                      }) {
            return stack_->stats();
        } else {
            return {};
        }
    }

private:
    std::unique_ptr<S> stack_;
};

template <ConcurrentContainer S>
AnyStack erase_stack(std::unique_ptr<S> stack) {
    return AnyStack(std::make_unique<StackModel<S>>(std::move(stack)));
}

// Scenario stream counter: run_scenario advances it after each scenario
// body, so two scenarios of ONE secbench invocation draw from disjoint
// per-worker RNG streams instead of replaying identical op sequences (a
// multi-scenario --csv run used to correlate every scenario's workload).
// Deterministic under --seed: the counter depends only on the scenario's
// position in the invocation, so replays stay exact per scenario. Stream 0
// (no scenario finished yet — every first scenario, every direct runner
// call) reproduces the historical seeding bit-for-bit.
namespace detail {
inline std::atomic<std::uint64_t> g_seed_stream{0};
}  // namespace detail

inline std::uint64_t seed_stream() noexcept {
    return detail::g_seed_stream.load(std::memory_order_relaxed);
}
inline void advance_seed_stream() noexcept {
    detail::g_seed_stream.fetch_add(1, std::memory_order_relaxed);
}

// Per-worker phase seed: deterministic in (base, worker, run, phase salt,
// scenario stream) — distinct per (worker, run), distinct between the
// prefill and the measured phase of the same worker, and distinct across
// the scenarios of one invocation (seed_stream above). `base` comes from
// RunConfig::seed (`--seed` / SEC_BENCH_SEED); base 0 at stream 0
// reproduces the historical seeding.
inline std::uint64_t phase_seed(std::uint64_t base, unsigned t, unsigned run,
                                std::uint64_t salt = 0) {
    return (base + t + 1) * 0x9E3779B97F4A7C15ull + run + (salt << 32) +
           seed_stream() * 0xD1B54A32D192ED03ull;
}

// ---- the statically-typed timed-window runner ------------------------------

// `make()` may return a smart pointer (fresh structure per run) or a raw
// pointer (caller keeps the structure alive, e.g. to read stats afterwards).
template <class Factory>
RunResult run_throughput(Factory&& make, const RunConfig& cfg) {
    using Clock = std::chrono::steady_clock;
    RunResult result;
    if (cfg.threads == 0) return result;  // see RunConfig::threads
    for (unsigned run = 0; run < cfg.runs; ++run) {
        auto holder = make();
        auto& stack = *holder;

        std::atomic<bool> stop{false};
        std::vector<CacheAligned<std::uint64_t>> ops(cfg.threads);
        // Workers time their own measured span (one_phased_round /
        // run_churn_any's trick): ops completed between the coordinator's
        // stop store and the worker's exit are real work, and charging them
        // against the coordinator's sleep window — which excludes that
        // overshoot — used to inflate short-window results by a scheduling-
        // dependent amount.
        std::vector<CacheAligned<Clock::time_point>> begins(cfg.threads);
        std::vector<CacheAligned<Clock::time_point>> ends(cfg.threads);

        exec::PoolOptions popts;
        popts.pin = cfg.pin;
        popts.counters = cfg.counters;
        exec::WorkerPool pool(cfg.threads, popts);
        pool.start([&, run](exec::WorkerContext& wc) {
            const unsigned t = wc.index;
            PhaseArgs args;
            args.value_range = cfg.value_range;
            args.mix = cfg.mix;
            // Each worker loads its share of the prefill so deep
            // prefills parallelise and (for TSI) spread across pools.
            args.seed = phase_seed(cfg.seed, t, run, 1);
            phase_prefill(stack, prefill_share(cfg.prefill, cfg.threads, t),
                          args);
            wc.sync();
            // Counters cover the measured span only, not the prefill.
            wc.counters_restart();
            *begins[t] = Clock::now();
            args.seed = phase_seed(cfg.seed, t, run);
            *ops[t] = phase_mixed_until(stack, stop, args);
            *ends[t] = Clock::now();
        });

        pool.sync();
        std::this_thread::sleep_for(cfg.duration);
        stop.store(true, std::memory_order_relaxed);
        pool.join();
        result.perf.merge(pool.counters());

        std::uint64_t total = 0;
        for (const auto& c : ops) total += *c;
        Clock::time_point start = *begins[0];
        Clock::time_point end = *ends[0];
        for (unsigned t = 1; t < cfg.threads; ++t) {
            if (*begins[t] < start) start = *begins[t];
            if (*ends[t] > end) end = *ends[t];
        }
        const double us = std::chrono::duration<double, std::micro>(
                              end - start)
                              .count();
        result.total_ops += total;
        result.mops += us > 0 ? static_cast<double>(total) / us : 0.0;
    }
    result.mops /= cfg.runs;
    return result;
}

}  // namespace sec::bench
