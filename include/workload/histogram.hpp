// workload/histogram.hpp — HdrHistogram-style log-bucketed latency
// histogram: 64 power-of-two major buckets x 16 linear sub-buckets covers
// [1 ns, ~584 years) at <= 6.25% relative error, in a fixed 8 KiB footprint
// that merges with a vector add.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace sec::bench {

class LatencyHistogram {
public:
    void record(std::uint64_t ns) noexcept {
        ++counts_[bucket_of(ns)];
        sum_ns_ += ns;
        ++total_;
    }

    void merge_from(const LatencyHistogram& other) noexcept {
        for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
        sum_ns_ += other.sum_ns_;
        total_ += other.total_;
    }

    std::uint64_t total() const noexcept { return total_; }

    double mean_ns() const noexcept {
        return total_ ? static_cast<double>(sum_ns_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    // Bucket mapping, public for the boundary round-trip tests
    // (tests/histogram_test.cpp): bucket_bound is the inverse of bucket_of,
    // returning bucket i's representative upper bound.
    static constexpr std::size_t bucket_count() noexcept { return kBuckets; }

    static std::size_t bucket_of(std::uint64_t ns) noexcept {
        if (ns < kSub) return static_cast<std::size_t>(ns);
        const int high = 63 - std::countl_zero(ns);
        const std::size_t major = static_cast<std::size_t>(high) - kSubBits + 1;
        const std::size_t sub = static_cast<std::size_t>(
            (ns >> (high - static_cast<int>(kSubBits))) & (kSub - 1));
        const std::size_t idx = major * kSub + sub;
        return idx < kBuckets ? idx : kBuckets - 1;
    }

    static std::uint64_t bucket_bound(std::size_t i) noexcept {
        const std::size_t major = i / kSub;
        const std::uint64_t sub = i % kSub;
        if (major == 0) return sub;
        const int shift = static_cast<int>(major) - 1;
        return ((kSub + sub) << shift) + ((std::uint64_t{1} << shift) - 1);
    }

    // Smallest recorded-bucket upper bound covering quantile q of samples.
    std::uint64_t quantile_ns(double q) const noexcept {
        if (total_ == 0) return 0;
        if (q < 0) q = 0;
        if (q > 1) q = 1;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(total_) + 0.5);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts_[i];
            if (seen >= target && counts_[i] > 0) return bucket_bound(i);
        }
        return bucket_bound(kBuckets - 1);
    }

private:
    static constexpr std::size_t kSubBits = 4;
    static constexpr std::size_t kSub = std::size_t{1} << kSubBits;  // 16
    static constexpr std::size_t kMajors = 64;
    static constexpr std::size_t kBuckets = kMajors * kSub;

    std::uint64_t counts_[kBuckets] = {};
    std::uint64_t sum_ns_ = 0;
    std::uint64_t total_ = 0;
};

}  // namespace sec::bench
