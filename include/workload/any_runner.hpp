// workload/any_runner.hpp — the timed-window / latency / churn runners over
// the type-erased AnyStack. These mirror run_throughput (workload/runner.hpp)
// but take registry factories, so scenarios drive any registered algorithm
// without a template instantiation per call site. Virtual dispatch is per
// phase (see core/stack_concept.hpp), so the measured loops are identical to
// the statically-typed path.
#pragma once

#include <functional>
#include <vector>

#include "core/stack_concept.hpp"
#include "workload/histogram.hpp"
#include "workload/runner.hpp"

namespace sec::bench {

using AnyStackFactory = std::function<AnyStack()>;

// Fresh structure per run (the usual throughput measurement).
RunResult run_throughput_any(const AnyStackFactory& make, const RunConfig& cfg);

// Phase-shifting window (the `tuning` scenario's workload): cfg.duration is
// split into equal sub-windows, one per mix in `phases`, over ONE structure
// — e.g. push-heavy → mixed → pop-heavy inside a single run, the shape that
// defeats any single static tuning. Workers roll from one mix's measured
// loop into the next without a barrier (the shift is a few µs of stagger,
// like the stop flag itself); cfg.mix is ignored. Throughput is aggregated
// across the whole window, cfg.runs rounds on fresh structures as usual.
RunResult run_phased_any(const AnyStackFactory& make, const RunConfig& cfg,
                         const std::vector<OpMix>& phases);

// Caller-owned structure, kept alive across runs (e.g. to read degree stats
// afterwards — table1 / ablation scenarios).
RunResult run_throughput_any(AnyStack& stack, const RunConfig& cfg);

// Per-op latency over cfg.duration with a 50/50 push/pop mix unless cfg.mix
// says otherwise; returns the merged histogram (cfg.runs is ignored).
LatencyHistogram run_latency_any(AnyStack& stack, const RunConfig& cfg);

// Fixed-op balanced churn: `threads` workers each run `ops_per_thread`
// operations of a balanced push/pop mix, then join (the reclamation
// scenario's workload). Workers are seeded from `seed` + thread id; returns
// the aggregate throughput in Mops/s.
double run_churn_any(AnyStack& stack, unsigned threads,
                     std::uint64_t ops_per_thread, std::size_t value_range,
                     std::uint64_t seed = 0);

}  // namespace sec::bench
