// workload/env.hpp — bench scaling knobs from the environment.
//
// Defaults are sized for a quick smoke run; SEC_BENCH_PAPER=1 switches to
// the paper's full methodology (5 s windows x 5 runs over a wide thread
// grid). Individual knobs override either baseline:
//   SEC_BENCH_DURATION_MS  measured window per data point (ms)
//   SEC_BENCH_RUNS         repetitions per data point (mean is reported)
//   SEC_BENCH_THREADS      comma-separated thread grid, e.g. "1,4,16,64"
//   SEC_BENCH_PREFILL      nodes pushed before the window opens
//   SEC_BENCH_VALUE_RANGE  value universe for pushes
//   SEC_BENCH_SEED         base seed for per-worker op-mix RNGs (repro runs)
//   SEC_BENCH_PORT         sec::net TCP port (net_service / secserve);
//                          0 or unset = in-process server on an ephemeral
//                          port
//   SEC_BENCH_BACKEND      sec::net event backend: "epoll" (default) or
//                          "iouring" (-DSEC_IOURING=ON builds)
//   SEC_BENCH_PIN          worker placement policy: "none" (default),
//                          "compact", "scatter", or "smt" — see
//                          exec/topology.hpp
//   SEC_BENCH_COUNTERS     0 disables per-worker perf_event counter
//                          groups (default on; counters silently yield no
//                          data where the syscall is denied anyway)
//
// Values that don't parse as clean unsigned integers (trailing junk, signs,
// "abc") are rejected with a stderr warning and the default kept — never
// silently read as 0 or a truncated prefix. The same whole-value-or-nothing
// policy covers SEC_BENCH_BACKEND: an unknown backend name warns and keeps
// the default instead of silently measuring a different event loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sec::bench {

struct EnvConfig {
    std::vector<unsigned> threads;
    unsigned duration_ms = 200;
    unsigned runs = 1;
    std::size_t prefill = 1000;  // the paper's prefill
    std::size_t value_range = std::size_t{1} << 20;
    std::uint64_t seed = 0;  // base for per-worker RNG seeds (0 = legacy)
    // sec::net knobs (SEC_BENCH_PORT / SEC_BENCH_BACKEND). port 0 = "no
    // external server": net_service spawns its own on an ephemeral port.
    unsigned port = 0;
    std::string backend{};  // "" = the default backend ("epoll")
    // Placement policy name (SEC_BENCH_PIN / --pin), pre-validated against
    // topo::parse_pin_policy. "" = "none" = unpinned.
    std::string pin{};
    // Per-worker perf_event counter groups (SEC_BENCH_COUNTERS). Default
    // on: the groups cost nothing where the syscall is denied and a few
    // rdpmc-backed reads where it isn't.
    bool counters = true;

    static EnvConfig load();
};

// Clamp every entry of a thread grid to the library's live-thread bound
// (kMaxThreads minus head-room for the coordinator/main/gtest threads),
// warning on stderr per rewritten entry instead of silently editing the
// user's grid. `origin` names the knob in the warning ("--threads" /
// "SEC_BENCH_THREADS"), so the CLI and environment paths stay in agreement
// by construction.
void clamp_thread_grid(std::vector<unsigned>& grid, const char* origin);

// Banner on stderr: bench name, hardware, and the effective EnvConfig, so
// every result log is self-describing. The one-argument form reloads the
// config from the environment; pass the effective config when CLI flags
// have overridden it (secbench).
void print_preamble(std::string_view bench_name);
void print_preamble(std::string_view bench_name, const EnvConfig& cfg);

}  // namespace sec::bench
