// workload/registry.hpp — algorithms and scenarios as data.
//
// AlgorithmRegistry maps a legend name ("SEC", "TRB", ...) to a factory
// producing a type-erased AnyStack from {threads, optional Config, optional
// EBR domain}. ScenarioRegistry maps a scenario name ("fig2", "latency",
// ...) to a ~30-line function that composes the shared Table/CSV/selection
// pipeline in ScenarioContext. The secbench CLI and the legacy per-figure
// stub binaries are both thin layers over these two registries; adding an
// algorithm or an experiment means one registration, not ten edited drivers.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"
#include "core/config.hpp"
#include "core/op_mix.hpp"
#include "core/stack_concept.hpp"
#include "reclaim/reclaimer.hpp"
#include "workload/env.hpp"
#include "workload/reporter.hpp"
#include "workload/runner.hpp"

namespace sec::bench {

namespace json {
struct Snapshot;  // workload/bench_json.hpp
}

using Value = std::uint64_t;

// Thread-bound passed to stack constructors: the N workers plus the main
// thread (and a little slack for gtest-style environments).
inline std::size_t tid_bound(unsigned threads) {
    return std::min<std::size_t>(kMaxThreads, threads + 8);
}

// Everything an algorithm factory may need for one run. `config` overrides
// the default sec::Config for Config-built structures (SEC, POOL) and is
// ignored by the others; `domain` plugs in an external reclamation domain
// where the structure supports one (AlgoSpec::supports_domain) — the handle
// must carry the scheme the algorithm variant was registered for, or the
// factory falls back to a private domain.
struct StackParams {
    unsigned threads = 1;
    const Config* config = nullptr;
    const reclaim::DomainHandle* domain = nullptr;
};

// A Config honouring StackParams: an explicit config wins; otherwise the
// default Config sized to the run's thread bound. Aggregators never exceed
// max_threads. Shared by the built-in factories (src/registry.cpp) and the
// sharded variants (src/shard.cpp) so the two can never drift.
Config effective_stack_config(const StackParams& p);

struct AlgoSpec {
    std::string name;         // legend name ("SEC", "TRB@hp"), the Table column
    std::string description;  // one-liner for `secbench --list`
    int legend_rank = 0;      // paper legend order (Fig. 2)
    bool default_set = false;  // one of the six Figure-2 competitors
    bool supports_domain = false;
    std::function<AnyStack(const StackParams&)> make;
    // Derived by AlgorithmRegistry::add from `name` ("BASE" or "BASE@scheme"):
    // the algorithm family and the reclamation scheme it is bound to ("" for
    // structures without a reclaimer, i.e. CC/FC).
    std::string base{};
    std::string reclaim{};
    // Removal order of the structure (kShape of the erased type). Printed by
    // `secbench --list`; the driver refuses shape-mixed `--algos` sets and
    // the `queue` scenario selects on it. Defaults to lifo so positional
    // registrations of the stack era stay valid.
    ContainerShape shape = ContainerShape::lifo;
};

class AlgorithmRegistry {
public:
    static AlgorithmRegistry& instance();

    // Open for extension: out-of-tree structures register here too. Specs
    // are stored behind stable pointers, so AlgoSpec* handed out earlier
    // survives later registrations.
    void add(AlgoSpec spec);

    const AlgoSpec* find(std::string_view name) const;
    // Resolve an algorithm family to its binding for a reclamation scheme.
    // The single home of the naming convention: the plain base name IS the
    // "ebr" binding; other schemes are registered as "BASE@scheme". Returns
    // nullptr when the combination does not exist (e.g. TSI@hp).
    const AlgoSpec* find_variant(std::string_view base,
                                 std::string_view scheme) const;
    // All registered algorithms / the six-competitor default set, both in
    // legend order.
    std::vector<const AlgoSpec*> all() const;
    std::vector<const AlgoSpec*> default_set() const;
    std::string names_csv() const;  // "CC, EB, ..." for error messages

private:
    AlgorithmRegistry();
    std::vector<std::unique_ptr<AlgoSpec>> specs_;
};

// A reclamation scheme as registry data: its CLI name (`--reclaim hp`), a
// one-liner, and a factory for a type-erased owning domain the reclamation
// scenario hands to per-variant stack factories.
struct ReclaimerSpec {
    std::string name;         // scheme name: "ebr", "hp", "qsbr", "leak"
    std::string description;  // one-liner for `secbench --list`
    std::function<reclaim::DomainHandle()> make_domain;
};

class ReclaimerRegistry {
public:
    static ReclaimerRegistry& instance();
    // Stable-pointer storage, same contract as AlgorithmRegistry::add.
    void add(ReclaimerSpec spec);
    const ReclaimerSpec* find(std::string_view name) const;
    std::vector<const ReclaimerSpec*> all() const;
    std::string names_csv() const;

private:
    ReclaimerRegistry();
    std::vector<std::unique_ptr<ReclaimerSpec>> specs_;
};

// The six competitors of Figure 2/3 as Table columns, legend order —
// derived from the registry, not a hand-kept list.
inline std::vector<std::string> algorithm_columns() {
    std::vector<std::string> columns;
    for (const AlgoSpec* a : AlgorithmRegistry::instance().default_set()) {
        columns.push_back(a->name);
    }
    return columns;
}

// Shared per-scenario state plus the Table/CSV/selection pipeline every
// scenario composes.
struct ScenarioContext {
    EnvConfig env;
    std::vector<const AlgoSpec*> algos;  // selection, legend order
    std::FILE* csv = nullptr;            // optional CSV sink (secbench --csv)
    // Optional BENCH_*.json snapshot sink (secbench --json / --baseline):
    // emit() feeds every Table cell into it, csv_row() the table-less
    // cells, so a snapshot is exactly what the run printed.
    json::Snapshot* json = nullptr;
    bool smoke = false;                  // tiny-budget mode (secbench --smoke)
    // The --reclaim scheme, when given: `algos` is already rebound to its
    // variants, and the reclamation scenario restricts its matrix to this
    // scheme instead of sweeping all four ("" = no restriction).
    std::string reclaim{};
    // The --sweep spec, when given; the `sweep` scenario parses it
    // (workload/sweep.hpp) and falls back to a small default grid when
    // empty.
    std::string sweep_spec{};
    // --shards / SEC_BENCH_SHARDS: pins the `sharding` scenario to one
    // shard count (0 = derive from the selection, else the default grid).
    unsigned shards = 0;
    // --load / SEC_BENCH_LOAD: offered load in Kops/s for the open-loop
    // `service` scenario (0 = the scenario's default; the `knee` scenario
    // uses it as the search's starting probe when given).
    double load_kops = 0;
    // --arrival / SEC_BENCH_ARRIVAL: "poisson" (default) or "burst" — the
    // arrival process of the service scenarios (workload/service.hpp).
    std::string arrival{};

    // Column names of the selected algorithms.
    std::vector<std::string> columns() const;
    // RunConfig for one grid point from `e` (defaults to this->env).
    RunConfig run_config(unsigned threads, const OpMix& mix) const;
    RunConfig run_config(unsigned threads, const OpMix& mix,
                         const EnvConfig& e) const;
    // Sweep the thread grid of `e` for one algorithm into `table`.
    void series(Table& table, const AlgoSpec& algo, const OpMix& mix) const;
    void series(Table& table, const AlgoSpec& algo, const OpMix& mix,
                const EnvConfig& e) const;
    // Print the table and append its rows to the CSV sink, if any.
    void emit(const Table& table) const;
    // One `table,key,column,value` row to the CSV sink (no-op without one) —
    // the file-sink path for scenarios whose results aren't a Table
    // (table1 / latency / reclamation / micro).
    void csv_row(std::string_view table, std::string_view key,
                 std::string_view column, double value) const;
};

struct ScenarioSpec {
    std::string name;   // CLI name, e.g. "fig2"
    std::string title;  // one-liner for `secbench --list`
    std::function<int(const ScenarioContext&)> run;
};

class ScenarioRegistry {
public:
    static ScenarioRegistry& instance();
    // Stable-pointer storage, same contract as AlgorithmRegistry::add.
    void add(ScenarioSpec spec);
    const ScenarioSpec* find(std::string_view name) const;
    std::vector<const ScenarioSpec*> all() const;

private:
    ScenarioRegistry();
    std::vector<std::unique_ptr<ScenarioSpec>> specs_;
};

// Run one registered scenario (preamble + body). Returns the scenario's
// exit code, or 2 for an unknown name (after listing the available set).
int run_scenario(std::string_view name, const ScenarioContext& ctx);

// What the legacy per-figure stub binaries call: EnvConfig::load() + the
// default algorithm set, no CSV sink.
int run_legacy_scenario(std::string_view name);

namespace detail {
// Defined in src/scenarios.cpp; called once from ScenarioRegistry's
// constructor so the scenario translation unit is linked into consumers of
// the registry (static-library registration would otherwise be dropped).
void register_builtin_scenarios(ScenarioRegistry& reg);
// Defined in src/shard.cpp, same linkage trick: the SEC@shardK (x reclaim
// scheme) variants self-register from the sharding translation unit.
void register_shard_algorithms(AlgorithmRegistry& reg);
}  // namespace detail

}  // namespace sec::bench
