// workload/bench_json.hpp — persisted perf trajectory: BENCH_*.json
// snapshots and the baseline regression gate.
//
// A Snapshot is every result cell one secbench invocation produced (each
// Table cell plus the csv_row cells of the table-less scenarios) together
// with enough metadata to re-run the exact configuration: git sha, compiler
// and flags, core count, scenario list, the effective EnvConfig, and the
// repeat count. `secbench --json FILE` writes one; `secbench --baseline
// FILE` re-runs the pinned configuration the file records and compares
// per-cell.
//
// The compare is built for cross-machine baselines (a laptop-refreshed
// BENCH_smoke.json gated on a shared CI runner):
//   * median-of-N — the run is repeated `repeats` times and each cell's
//     median is compared, so one descheduled window doesn't fail the gate;
//   * scale normalization — the global hardware-speed shift (the median
//     current/baseline ratio over gated cells) is divided out before the
//     tolerance test, so "this runner is 2x slower" passes while "the
//     sharding scenario alone got 2x slower" fails;
//   * direction awareness — only cells whose unit marks them
//     higher-is-better throughput ("Mops/s", "Kops/s") gate; latency and
//     diagnostic cells are reported but never fail the build.
// A gated cell regresses when its normalized delta falls strictly below
// -tolerance_pct, or when it vanished from the current run entirely.
//
// File format: a single JSON object, schema "sec-bench-snapshot-v1"
// (REPRODUCING.md §6 documents it field by field). The writer and the
// parser are self-contained — no third-party JSON dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sec::bench::json {

// One result cell, in the same shape as a CSV row plus the owning table's
// unit ("" for csv_row cells, which carry their semantics in the column
// name).
struct Cell {
    std::string table;
    std::string key;
    std::string column;
    std::string unit;
    double value = 0;
};

struct Metadata {
    // Build half (build_metadata() fills these from compile definitions).
    std::string git_sha;     // configure-time HEAD, "unknown" outside git
    std::string compiler;    // "gcc 13.2.0" / "clang ..."
    std::string flags;       // effective CXX flags incl. build-type flags
    std::string build_type;  // CMAKE_BUILD_TYPE
    bool march_native = false;  // SEC_NATIVE build (-march=native)
    unsigned cores = 0;         // hardware_concurrency at run time
    // Topology half (build_metadata() fills these from Topology::system()).
    // All zero in snapshots written before the exec/topo layer existed —
    // the parser defaults them, and the compare skips zero baseline fields
    // so old snapshots never warn spuriously.
    unsigned packages = 0;           // physical sockets
    unsigned cores_per_package = 0;  // physical cores per socket
    unsigned smt_width = 0;          // max SMT siblings per core (1 = none)
    unsigned l3_domains = 0;         // distinct L3 cache domains
    // Run half (secbench fills these from the effective configuration).
    std::string pin;        // placement policy name ("none" when unpinned)
    std::string scenarios;  // comma-joined scenario names, run order
    std::string algos;      // comma-joined algorithm selection
    std::string reclaim;    // --reclaim scheme ("" = default bindings)
    bool smoke = false;
    std::vector<unsigned> threads;  // thread grid
    unsigned duration_ms = 0;
    unsigned runs = 0;
    unsigned repeats = 1;  // snapshot-level repetitions (median-of-N)
    std::size_t prefill = 0;
    std::size_t value_range = 0;
    std::uint64_t seed = 0;
};

struct Snapshot {
    Metadata meta;
    std::vector<Cell> cells;

    void add(std::string_view table, std::string_view key,
             std::string_view column, std::string_view unit, double value);
    // First cell matching (table, key, column), nullptr when absent.
    const Cell* find(std::string_view table, std::string_view key,
                     std::string_view column) const noexcept;
};

// The build half of the metadata, baked in at configure time
// (SEC_GIT_SHA / SEC_CXX_FLAGS / SEC_BUILD_TYPE / SEC_NATIVE_BUILD) plus
// the runtime core count.
Metadata build_metadata();

// Serialize / parse a snapshot. On failure both return false and, when
// `err` is non-null, store a one-line reason.
bool write_snapshot(const Snapshot& snap, const std::string& path,
                    std::string* err = nullptr);
bool read_snapshot(const std::string& path, Snapshot& out,
                   std::string* err = nullptr);

// Collapse repeated runs of one configuration into per-cell medians (the
// noise guard). Cell identity is (table, key, column); within one run a
// duplicated identity keeps its last value (Table::add semantics). Order
// and units follow first appearance; `meta` is taken from the first run.
Snapshot median_of(const std::vector<Snapshot>& runs);

// True for units naming a higher-is-better throughput cell ("Mops/s",
// "Kops/s" — anything containing "ops"); only such cells gate the compare.
bool gated_unit(std::string_view unit) noexcept;

struct CellDelta {
    Cell base;
    double current = 0;        // meaningless when `missing`
    bool missing = false;      // cell absent from the current snapshot
    bool gated = false;        // unit gates (throughput, higher-is-better)
    double raw_delta_pct = 0;  // 100 * (current - base) / base
    double norm_delta_pct = 0;  // raw delta after dividing out `scale`
    bool regressed = false;     // gated && (missing || norm < -tolerance)
};

struct CompareResult {
    double scale = 1.0;  // median current/base ratio over gated cells
    double tolerance_pct = 0;
    std::vector<CellDelta> cells;  // baseline order
    unsigned regressions = 0;      // gated cells that failed
    unsigned extra = 0;  // current-only cells (reported, never gated)

    bool ok() const noexcept { return regressions == 0; }
};

CompareResult compare(const Snapshot& baseline, const Snapshot& current,
                      double tolerance_pct);

// One-line description of how `current`'s topology differs from
// `baseline`'s (packages / cores-per-package / SMT width / L3 domains /
// pin policy), or "" when they agree. Baseline fields that are zero or
// empty (snapshots written before these fields existed) never mismatch.
// The compare WARNS on a non-empty result — a cross-machine baseline is
// by design comparable after scale normalization, but a topology shift is
// exactly the context a surprising per-cell delta needs.
std::string topology_mismatch(const Metadata& baseline,
                              const Metadata& current);

// Human-readable comparison report (secbench prints it to stdout; the CI
// log is the "loud" half of the loud-but-soft gate).
void print_compare(const CompareResult& result, std::FILE* out);

}  // namespace sec::bench::json
