// core/spine.hpp — the lock-free Treiber spine shared by SecStack and
// ElimPool: batched single-CAS chain push, batched single-CAS multi-pop
// with EBR retirement, and teardown. Keeping it in one place keeps the two
// structures from diverging.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "core/common.hpp"
#include "core/ebr.hpp"

namespace sec::detail {

template <class V>
struct SpineNode {
    V value;
    SpineNode* next;
};

// Link vals[0..n) above the current top with a single CAS. vals[n-1] ends
// up topmost; within a batch the operations are concurrent, so any internal
// order is linearizable.
template <class V>
void spine_push_chain(std::atomic<SpineNode<V>*>& top, const V* vals,
                      std::size_t n) {
    SpineNode<V>* bottom = nullptr;
    SpineNode<V>* chain = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        chain = new SpineNode<V>{vals[i], chain};
        if (bottom == nullptr) bottom = chain;
    }
    bottom->next = top.load(std::memory_order_relaxed);
    while (!top.compare_exchange_weak(bottom->next, chain,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        cpu_relax();
    }
}

// Detach up to n nodes with a single CAS; returns how many were popped.
// Caller must hold an ebr::Guard on `domain`.
template <class V>
std::size_t spine_pop_chain(std::atomic<SpineNode<V>*>& top,
                            ebr::Domain& domain, V* out, std::size_t n) {
    SpineNode<V>* head = top.load(std::memory_order_acquire);
    for (;;) {
        if (head == nullptr) return 0;
        SpineNode<V>* end = head;
        std::size_t count = 0;
        while (end != nullptr && count < n) {
            end = end->next;
            ++count;
        }
        if (top.compare_exchange_weak(head, end, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
            SpineNode<V>* node = head;
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = node->value;
                SpineNode<V>* next = node->next;
                domain.retire(node);
                node = next;
            }
            return count;
        }
        cpu_relax();
    }
}

// Caller must hold an ebr::Guard on the owning domain.
template <class V>
std::optional<V> spine_peek(const std::atomic<SpineNode<V>*>& top) {
    SpineNode<V>* head = top.load(std::memory_order_acquire);
    if (head == nullptr) return std::nullopt;
    return head->value;
}

// Teardown only: no concurrent access may remain.
template <class V>
void spine_destroy(std::atomic<SpineNode<V>*>& top) {
    SpineNode<V>* n = top.load(std::memory_order_relaxed);
    while (n != nullptr) {
        SpineNode<V>* next = n->next;
        delete n;
        n = next;
    }
    top.store(nullptr, std::memory_order_relaxed);
}

}  // namespace sec::detail
