// core/spine.hpp — the lock-free Treiber spine shared by SecStack, ElimPool,
// and TreiberStack: batched single-CAS chain push, batched single-CAS
// multi-pop with reclaimer retirement, and teardown. Keeping it in one place
// keeps the structures from diverging.
//
// The pop/peek primitives take a reclaimer Guard (reclaim/reclaimer.hpp)
// rather than assuming EBR. Blanket guards (EBR/QSBR/leaky) compile to the
// plain walk; hazard-pointer guards additionally announce each node before
// it is dereferenced and revalidate the anchor: as long as `top` still
// equals the protected head, no node of the chain under it can have been
// popped — and spine nodes are never re-pushed after a pop — so the whole
// prefix is intact and the freshly-announced walker node was live when its
// hazard was published.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "core/common.hpp"

namespace sec::detail {

template <class V>
struct SpineNode {
    V value;
    SpineNode* next;
};

// Link vals[0..n) above the current top with a single CAS. vals[n-1] ends
// up topmost; within a batch the operations are concurrent, so any internal
// order is linearizable. Pushes dereference no shared node, so they need no
// guard under any reclaimer.
template <class V>
void spine_push_chain(std::atomic<SpineNode<V>*>& top, const V* vals,
                      std::size_t n) {
    SpineNode<V>* bottom = nullptr;
    SpineNode<V>* chain = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        chain = new SpineNode<V>{vals[i], chain};
        if (bottom == nullptr) bottom = chain;
    }
    bottom->next = top.load(std::memory_order_relaxed);
    // At most K aggregator freezers race on `top`, so first-try success is
    // the common case even at high thread counts — that is the point of
    // batching (paper §3).
    while (SEC_UNLIKELY(!top.compare_exchange_weak(
        bottom->next, chain, std::memory_order_release,
        std::memory_order_relaxed))) {
        cpu_relax();
    }
}

// Detach up to n nodes with a single CAS; returns how many were popped.
// `guard` must be a live Guard of the domain the spine's nodes retire into;
// slots 0 (anchor) and 1 (walker) of a hazard guard are used.
template <class V, class G>
std::size_t spine_pop_chain(std::atomic<SpineNode<V>*>& top, G& guard, V* out,
                            std::size_t n) {
    for (;;) {
        SpineNode<V>* head = guard.protect(0u, top);
        if (head == nullptr) return 0;
        SpineNode<V>* end = head;
        std::size_t count = 0;
        bool restart = false;
        while (end != nullptr && count < n) {
            SpineNode<V>* next = end->next;
            // Pull the line we will chase one iteration from now; the walk
            // is otherwise a serial load-to-load dependency chain and eats
            // a full miss per node on cold spines.
            if (next != nullptr) prefetch(next);
            ++count;
            end = next;
            if (end != nullptr && count < n) {
                // `end` is dereferenced next iteration: announce it, then
                // revalidate the anchor (no-ops for blanket guards).
                guard.publish(1u, end);
                if (SEC_UNLIKELY(!guard.validate(top, head))) {
                    restart = true;
                    break;
                }
            }
        }
        if (SEC_UNLIKELY(restart)) {
            cpu_relax();
            continue;
        }
        SpineNode<V>* expected = head;
        if (SEC_LIKELY(top.compare_exchange_weak(expected, end,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))) {
            // The chain head..end is exclusively ours now; values are copied
            // out before each node is handed to the domain.
            SpineNode<V>* node = head;
            for (std::size_t i = 0; i < count; ++i) {
                out[i] = node->value;
                SpineNode<V>* next = node->next;
                guard.domain().retire(node);
                node = next;
            }
            return count;
        }
        cpu_relax();
    }
}

// Read the top value without detaching it; uses slot 0 of a hazard guard.
template <class V, class G>
std::optional<V> spine_peek(const std::atomic<SpineNode<V>*>& top, G& guard) {
    SpineNode<V>* head = guard.protect(0u, top);
    if (head == nullptr) return std::nullopt;
    return head->value;
}

// Teardown only: no concurrent access may remain.
template <class V>
void spine_destroy(std::atomic<SpineNode<V>*>& top) {
    SpineNode<V>* n = top.load(std::memory_order_relaxed);
    while (n != nullptr) {
        SpineNode<V>* next = n->next;
        delete n;
        n = next;
    }
    top.store(nullptr, std::memory_order_relaxed);
}

}  // namespace sec::detail
