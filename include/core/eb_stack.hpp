// core/eb_stack.hpp — elimination-backoff stack (Hendler, Shavit,
// Yerushalmi, SPAA'04 lineage): a Treiber stack plus a collision array where
// a push that lost its CAS waits briefly so a concurrent pop can take its
// value directly. Matched pairs never touch the central top. The paper (§2)
// contrasts its three-CAS collision protocol with SEC's two-F&I rendezvous.
// Reclamation is pluggable (sec::reclaim): the pop loop re-protects the head
// through the guard each attempt, so hazard pointers work too — collision
// cells are domain-owned arrays and never freed, so elimination needs no
// protection under any scheme.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <type_traits>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class EbStack {
    static_assert(std::is_trivially_copyable_v<V>,
                  "EbStack exchanges values through atomic cells");

public:
    using value_type = V;
    static constexpr ContainerShape kShape = ContainerShape::lifo;
    using reclaimer_type = R;

    explicit EbStack(std::size_t max_threads)
        : EbStack(max_threads, reclaim::DomainRef<R>()) {}
    EbStack(std::size_t max_threads, R& domain)
        : EbStack(max_threads, reclaim::DomainRef<R>(domain)) {}

    ~EbStack() {
        Node* n = top_.load(std::memory_order_relaxed);
        while (n != nullptr) {
            Node* next = n->next;
            delete n;
            n = next;
        }
    }

    EbStack(const EbStack&) = delete;
    EbStack& operator=(const EbStack&) = delete;

    bool push(const V& v) {
        Node* node = new Node{v, top_.load(std::memory_order_relaxed)};
        const std::size_t id = detail::tid();
        for (;;) {
            if (top_.compare_exchange_weak(node->next, node,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
                return true;
            }
            // Contention: park the value in the collision array and hope a
            // pop eliminates us before the wait window closes.
            if (id < max_threads_ && try_eliminate_push(id, v)) {
                delete node;
                return true;
            }
        }
    }

    std::optional<V> pop() {
        typename R::Guard guard(*domain_);
        const std::size_t id = detail::tid();
        for (;;) {
            Node* head = guard.protect(0u, top_);
            if (head == nullptr) return std::nullopt;
            // head->next is safe: head is protected; a stale next just
            // fails the CAS.
            Node* expected = head;
            if (top_.compare_exchange_strong(expected, head->next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                V v = head->value;
                domain_->retire(head);
                return v;
            }
            if (id < max_threads_) {
                if (std::optional<V> v = try_eliminate_pop(id)) return v;
            }
            detail::cpu_relax();
        }
    }

    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        Node* head = guard.protect(0u, top_);
        if (head == nullptr) return std::nullopt;
        return head->value;
    }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const V& v) { return push(v); }
    std::optional<V> take() { return pop(); }

private:
    struct Node {
        V value;
        Node* next;
    };

    // Exchange cell states: (sequence << 2) | phase. The sequence number,
    // bumped every time the owning thread recycles its cell, defeats ABA on
    // the phase transitions.
    static constexpr std::uint64_t kIdlePhase = 0;
    static constexpr std::uint64_t kWaiting = 1;
    static constexpr std::uint64_t kTaken = 2;
    static constexpr std::uint64_t kWaitWindowNs = 512;

    struct alignas(kCacheLineSize) Cell {
        std::atomic<std::uint64_t> state{0};
        std::atomic<V> value{};
        std::uint64_t seq = 0;  // owned by the cell's thread
    };

    static constexpr std::uint64_t pack(std::uint64_t seq,
                                        std::uint64_t phase) noexcept {
        return (seq << 2) | phase;
    }

    EbStack(std::size_t max_threads, reclaim::DomainRef<R> domain)
        : max_threads_(std::min(std::max<std::size_t>(max_threads, 1),
                                kMaxThreads)),
          num_slots_(std::min<std::size_t>(max_threads_, 16)),
          domain_(std::move(domain)),
          cells_(std::make_unique<Cell[]>(max_threads_)),
          slots_(std::make_unique<std::atomic<Cell*>[]>(num_slots_)) {
        for (std::size_t i = 0; i < num_slots_; ++i) slots_[i] = nullptr;
    }

    bool try_eliminate_push(std::size_t id, const V& v) {
        Cell& cell = cells_[id];
        const std::uint64_t seq = cell.seq;
        cell.value.store(v, std::memory_order_relaxed);
        cell.state.store(pack(seq, kWaiting), std::memory_order_release);
        auto& slot = slots_[rng_for(id).next_below(num_slots_)];
        Cell* expected = nullptr;
        if (!slot.compare_exchange_strong(expected, &cell,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
            // Slot occupied; withdraw the offer — but a popper holding a
            // stale pointer to this cell from an earlier round may already
            // have claimed it, so withdraw via CAS exactly like the timed
            // path (an unconditional reset would clobber its kTaken and
            // deliver the value twice).
            std::uint64_t st = pack(seq, kWaiting);
            const bool withdrawn = cell.state.compare_exchange_strong(
                st, pack(seq, kIdlePhase), std::memory_order_acq_rel,
                std::memory_order_acquire);
            ++cell.seq;
            return !withdrawn;  // claimed by a stale popper: eliminated
        }
        detail::spin_for_ns(kWaitWindowNs);
        std::uint64_t st = pack(seq, kWaiting);
        const bool cancelled = cell.state.compare_exchange_strong(
            st, pack(seq, kIdlePhase), std::memory_order_acq_rel,
            std::memory_order_acquire);
        // Whether we cancelled or a pop took the value, clear our slot entry
        // (the pop may have cleared it already).
        Cell* self = &cell;
        slot.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
        ++cell.seq;
        return !cancelled;
    }

    std::optional<V> try_eliminate_pop(std::size_t id) {
        auto& slot = slots_[rng_for(id).next_below(num_slots_)];
        Cell* cell = slot.load(std::memory_order_acquire);
        if (cell == nullptr) return std::nullopt;
        std::uint64_t st = cell->state.load(std::memory_order_acquire);
        if ((st & 3) != kWaiting) return std::nullopt;
        // Read before claiming: if the claim CAS succeeds the cell cannot
        // have been recycled in between (the sequence would have moved).
        const V v = cell->value.load(std::memory_order_relaxed);
        if (!cell->state.compare_exchange_strong(st, (st & ~3ull) | kTaken,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
            return std::nullopt;
        }
        slot.compare_exchange_strong(cell, nullptr, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
        return v;
    }

    Xoshiro256& rng_for(std::size_t id) const {
        thread_local Xoshiro256 rng(0xE11Aull ^
                                    (id * 0x9E3779B97F4A7C15ull));
        return rng;
    }

    std::size_t max_threads_;
    std::size_t num_slots_;
    reclaim::DomainRef<R> domain_;
    std::unique_ptr<Cell[]> cells_;
    std::unique_ptr<std::atomic<Cell*>[]> slots_;
    std::atomic<Node*> top_{nullptr};
};

}  // namespace sec
