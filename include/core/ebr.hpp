// core/ebr.hpp — DEBRA-style epoch-based reclamation.
//
// The paper integrates DEBRA for node reclamation (§4). A Domain tracks a
// global epoch plus one announcement slot per thread; retired nodes are
// stamped with the epoch at retire time and freed once the global epoch has
// advanced two steps past it (no reader can still hold a reference). Epoch
// advancement is amortised into retire(), so frees keep pace with retires
// during a run rather than piling up until destruction — memory stays
// bounded under churn, which bench/memory_reclamation.cpp makes observable
// via the retired/freed/limbo counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/common.hpp"

namespace sec::ebr {

class Domain {
public:
    Domain() = default;
    ~Domain();

    Domain(const Domain&) = delete;
    Domain& operator=(const Domain&) = delete;

    // Hand `p` to the domain; it is deleted once no epoch-protected reader
    // can still reach it. Callable with or without an active Guard.
    template <class T>
    void retire(T* p) {
        retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
    }

    void retire_erased(void* p, void (*deleter)(void*));

    // Reclaim everything that is provably unreachable; if no thread holds a
    // Guard this drains the entire limbo backlog.
    void drain_all();

    // Accounting (relaxed counters; exact once all workers have joined).
    std::uint64_t retired_count() const noexcept {
        return retired_total_.load(std::memory_order_acquire);
    }
    std::uint64_t freed_count() const noexcept {
        return freed_total_.load(std::memory_order_acquire);
    }
    std::uint64_t in_limbo() const noexcept {
        return retired_count() - freed_count();
    }
    std::uint64_t epoch() const noexcept {
        return global_epoch_.load(std::memory_order_acquire);
    }

    // Reader-side critical section; prefer the Guard RAII wrapper. Nestable.
    void enter() noexcept;
    void exit() noexcept;

private:
    static constexpr std::uint64_t kInactive = ~std::uint64_t{0};
    // Retires between amortised advance/sweep attempts on the owning thread.
    static constexpr std::uint32_t kScanInterval = 64;
    // Retired pointers per limbo chunk: amortises tracker allocation to one
    // per kChunkSize retires (a per-retire heap node would double the
    // allocation traffic of every pop in the benchmarked stacks).
    static constexpr std::uint32_t kChunkSize = 64;

    struct Retired {
        void* p;
        void (*deleter)(void*);
        std::uint64_t epoch;
    };

    // Entries are appended in retire order, so epochs within a chunk (and
    // across the chunk list, oldest chunk first) are non-decreasing.
    struct Chunk {
        Retired entries[kChunkSize];
        std::uint32_t count = 0;
        Chunk* next = nullptr;
    };

    struct alignas(kCacheLineSize) Reservation {
        std::atomic<std::uint64_t> epoch{kInactive};
        std::uint32_t nesting = 0;  // owned by the announcing thread
    };

    struct alignas(kCacheLineSize) LimboList {
        std::atomic_flag lock = ATOMIC_FLAG_INIT;
        Chunk* head = nullptr;  // oldest
        Chunk* tail = nullptr;  // newest (append target)
        std::uint32_t retires_since_scan = 0;
    };

    bool try_advance() noexcept;
    bool any_active() const noexcept;
    // Free nodes in limbo_[i] with epoch+2 <= limit (limit==kInactive: all).
    void sweep(std::size_t i, std::uint64_t limit);

    std::atomic<std::uint64_t> global_epoch_{2};
    std::atomic<std::uint64_t> retired_total_{0};
    std::atomic<std::uint64_t> freed_total_{0};
    Reservation reservations_[kMaxThreads];
    LimboList limbo_[kMaxThreads];
};

// Owns a private Domain by default, or borrows an external one — the shared
// plumbing behind every stack's `(args...)` / `(args..., Domain&)` ctor pair.
class DomainRef {
public:
    DomainRef() : owned_(std::make_unique<Domain>()), domain_(owned_.get()) {}
    explicit DomainRef(Domain& d) noexcept : domain_(&d) {}

    Domain& operator*() const noexcept { return *domain_; }
    Domain* operator->() const noexcept { return domain_; }

private:
    std::unique_ptr<Domain> owned_;
    Domain* domain_;
};

class Guard {
public:
    explicit Guard(Domain& d) noexcept : domain_(d) { domain_.enter(); }
    ~Guard() { domain_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

private:
    Domain& domain_;
};

}  // namespace sec::ebr
