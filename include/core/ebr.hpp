// core/ebr.hpp — compatibility shim: the DEBRA-style epoch scheme the paper
// integrates (§4) now lives in the pluggable reclamation subsystem as
// sec::reclaim::EpochDomain (reclaim/epoch.hpp), alongside QSBR, hazard
// pointers, and the leaky baseline. The sec::ebr names are aliases so
// existing callers and the `(args..., Domain&)` stack constructors keep
// working unchanged.
#pragma once

#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::ebr {

using Domain = reclaim::EpochDomain;
using Guard = reclaim::EpochDomain::Guard;
using DomainRef = reclaim::DomainRef<reclaim::EpochDomain>;

}  // namespace sec::ebr
