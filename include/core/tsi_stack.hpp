// core/tsi_stack.hpp — timestamped stack (Dodds, Haas, Kirsch, POPL'15
// lineage): each thread pushes into its own single-producer pool, stamping
// elements with a hardware timestamp, so pushes touch no shared memory; a
// pop scans every pool for the youngest untaken element and claims it with
// one CAS on its `taken` flag. This is why TSI dominates push-only workloads
// (Figure 3: no synchronisation at all) and collapses on pop-only (every pop
// pays an all-pools scan).
//
// Reclamation is pluggable but restricted to blanket schemes (EBR / QSBR /
// leaky): the all-pools scan dereferences nodes it discovers mid-walk and
// has no anchor to revalidate a per-node hazard against, so hazard pointers
// are rejected at compile time.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class TsiStack {
    static_assert(R::kBlanketProtection,
                  "TsiStack's all-pool scan cannot announce per-node hazards; "
                  "use a blanket reclaimer (EpochDomain/QsbrDomain/LeakyDomain)");

public:
    using value_type = V;
    static constexpr ContainerShape kShape = ContainerShape::lifo;
    using reclaimer_type = R;

    explicit TsiStack(std::size_t max_threads)
        : TsiStack(max_threads, reclaim::DomainRef<R>()) {}
    TsiStack(std::size_t max_threads, R& domain)
        : TsiStack(max_threads, reclaim::DomainRef<R>(domain)) {}

    ~TsiStack() {
        for (std::size_t i = 0; i < num_pools_; ++i) {
            Node* n = pools_[i].head.load(std::memory_order_relaxed);
            while (n != nullptr) {
                Node* next = n->next;
                delete n;
                n = next;
            }
        }
    }

    TsiStack(const TsiStack&) = delete;
    TsiStack& operator=(const TsiStack&) = delete;

    bool push(const V& v) {
        Pool& pool = pools_[pool_of(detail::tid())];
        Node* node = new Node;
        node->value = v;
        node->taken.store(false, std::memory_order_relaxed);
        node->ts = now();
        Node* head = pool.head.load(std::memory_order_relaxed);
        do {
            node->next = head;
        } while (!pool.head.compare_exchange_weak(head, node,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed));
        return true;
    }

    std::optional<V> pop() {
        typename R::Guard guard(*domain_);
        for (;;) {
            Node* best = nullptr;
            std::uint64_t best_ts = 0;
            for (std::size_t i = 0; i < num_pools_; ++i) {
                Node* n = first_untaken(pools_[i]);
                if (n != nullptr && (best == nullptr || n->ts > best_ts)) {
                    best = n;
                    best_ts = n->ts;
                }
            }
            if (best == nullptr) return std::nullopt;  // all pools empty
            bool expected = false;
            if (best->taken.compare_exchange_strong(
                    expected, true, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                return best->value;
            }
            // Lost the claim race; rescan.
            detail::cpu_relax();
        }
    }

    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        const Node* best = nullptr;
        std::uint64_t best_ts = 0;
        for (std::size_t i = 0; i < num_pools_; ++i) {
            const Node* n = first_untaken(pools_[i]);
            if (n != nullptr && (best == nullptr || n->ts > best_ts)) {
                best = n;
                best_ts = n->ts;
            }
        }
        if (best == nullptr) return std::nullopt;
        return best->value;
    }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const V& v) { return push(v); }
    std::optional<V> take() { return pop(); }

private:
    struct Node {
        V value{};
        std::uint64_t ts = 0;
        std::atomic<bool> taken{false};
        Node* next = nullptr;  // toward older elements; immutable once linked
    };

    struct alignas(kCacheLineSize) Pool {
        std::atomic<Node*> head{nullptr};
    };

    TsiStack(std::size_t max_threads, reclaim::DomainRef<R> domain)
        : num_pools_(std::min(std::max<std::size_t>(max_threads, 1),
                              kMaxThreads)),
          domain_(std::move(domain)),
          pools_(std::make_unique<Pool[]>(num_pools_)) {}

    std::size_t pool_of(std::size_t tid) const noexcept {
        return tid < num_pools_ ? tid : tid % num_pools_;
    }

    static std::uint64_t now() noexcept {
#if defined(__x86_64__)
        return __rdtsc();
#else
        return static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
#endif
    }

    // Skip (and detach) the taken prefix of `pool`, returning the youngest
    // live node. Detaching keeps pop cost amortised instead of rescanning an
    // ever-growing dead prefix; detached nodes go to the domain's limbo.
    Node* first_untaken(Pool& pool) {
        Node* head = pool.head.load(std::memory_order_acquire);
        Node* n = head;
        while (n != nullptr && n->taken.load(std::memory_order_acquire)) {
            n = n->next;
        }
        if (n != head) {
            // CAS the whole dead prefix off; the winner retires it.
            if (pool.head.compare_exchange_strong(head, n,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
                Node* dead = head;
                while (dead != n) {
                    Node* next = dead->next;
                    domain_->retire(dead);
                    dead = next;
                }
            }
        }
        return n;
    }

    const Node* first_untaken(const Pool& pool) const {
        const Node* n = pool.head.load(std::memory_order_acquire);
        while (n != nullptr && n->taken.load(std::memory_order_acquire)) {
            n = n->next;
        }
        return n;
    }

    std::size_t num_pools_;
    reclaim::DomainRef<R> domain_;
    std::unique_ptr<Pool[]> pools_;
};

}  // namespace sec
