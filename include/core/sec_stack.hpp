// core/sec_stack.hpp — the SEC stack: sharded elimination-combining on top
// of a single lock-free (Treiber) spine.
//
// Threads batch their operations in K aggregators (core/aggregator.hpp);
// eliminated pairs never reach the spine, and each leftover run is applied
// with ONE CAS — a run of n pushes links its chain under the top in a single
// exchange, a run of n pops detaches n nodes in a single exchange. The spine
// therefore sees at most K concurrent writers instead of one per thread,
// which is where the paper's high-thread-count wins come from (Figure 2),
// while keeping full LIFO semantics and per-op linearizability. Node
// reclamation is pluggable (sec::reclaim); EBR remains the default.
//
// Runtime self-tuning: attach a sec::TuningState via Config::tuning (and an
// adapt::AdaptiveController driving it) and the ACTIVE aggregator count and
// freezer backoff follow the workload at runtime — the aggregator engine
// re-reads both with one relaxed load per operation and tolerates the
// active set shrinking mid-flight (core/aggregator.hpp, DESIGN.md §5). The
// registry's SEC@adaptive variant wires this up; a plain Config keeps the
// paper's static behaviour bit-for-bit.
#pragma once

#include <atomic>
#include <optional>

#include "core/aggregator.hpp"
#include "core/common.hpp"
#include "core/config.hpp"
#include "core/container_concept.hpp"
#include "core/spine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class SecStack {
public:
    using value_type = V;
    using reclaimer_type = R;
    static constexpr ContainerShape kShape = ContainerShape::lifo;

    explicit SecStack(Config cfg) : aggs_(cfg) {}
    SecStack(Config cfg, R& domain) : aggs_(cfg), domain_(domain) {}

    ~SecStack() { detail::spine_destroy(top_); }

    SecStack(const SecStack&) = delete;
    SecStack& operator=(const SecStack&) = delete;

    bool push(const V& v) {
        // Overflow (more live threads than Config::max_threads) is a
        // configuration escape hatch, not a steady state — keep the slotted
        // batching path fall-through.
        if (SEC_UNLIKELY(aggs_.is_overflow(detail::tid()))) {
            detail::spine_push_chain(top_, &v, 1);
            return true;
        }
        (void)aggs_.execute(
            Aggs::kOpPush, v,
            [this](std::size_t, const V* vals, std::size_t n) {
                detail::spine_push_chain(top_, vals, n);
            },
            [this](std::size_t, V* out, std::size_t n) {
                typename R::Guard guard(*domain_);
                return detail::spine_pop_chain(top_, guard, out, n);
            });
        return true;
    }

    std::optional<V> pop() {
        if (SEC_UNLIKELY(aggs_.is_overflow(detail::tid()))) {
            typename R::Guard guard(*domain_);
            V out;
            return detail::spine_pop_chain(top_, guard, &out, 1) == 1
                       ? std::optional<V>(out)
                       : std::nullopt;
        }
        return aggs_.execute(
            Aggs::kOpPop, V{},
            [this](std::size_t, const V* vals, std::size_t n) {
                detail::spine_push_chain(top_, vals, n);
            },
            [this](std::size_t, V* out, std::size_t n) {
                typename R::Guard guard(*domain_);
                return detail::spine_pop_chain(top_, guard, out, n);
            });
    }

    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        return detail::spine_peek(top_, guard);
    }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    // Degree counters (Table 1); meaningful when Config::collect_stats.
    StatsSnapshot stats() const { return aggs_.stats(); }

    const Config& config() const noexcept { return aggs_.config(); }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const V& v) { return push(v); }
    std::optional<V> take() { return pop(); }

private:
    using Aggs = detail::AggregatorSet<V>;

    Aggs aggs_;
    reclaim::DomainRef<R> domain_;
    alignas(kCacheLineSize) std::atomic<detail::SpineNode<V>*> top_{nullptr};
};

}  // namespace sec
