// core/treiber_stack.hpp — the classic lock-free stack (Treiber '86): a
// single top pointer updated by CAS. The contention baseline of Figure 2
// ("TRB collapses under contention": every operation fights for one line).
// Push/pop are the n=1 case of the shared spine primitives. Templated over
// the reclamation scheme (sec::reclaim); EBR remains the default.
#pragma once

#include <atomic>
#include <optional>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "core/spine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class TreiberStack {
public:
    using value_type = V;
    using reclaimer_type = R;
    static constexpr ContainerShape kShape = ContainerShape::lifo;

    explicit TreiberStack(std::size_t /*max_threads*/) {}
    TreiberStack(std::size_t /*max_threads*/, R& domain) : domain_(domain) {}

    ~TreiberStack() { detail::spine_destroy(top_); }

    TreiberStack(const TreiberStack&) = delete;
    TreiberStack& operator=(const TreiberStack&) = delete;

    bool push(const V& v) {
        detail::spine_push_chain(top_, &v, 1);
        return true;
    }

    std::optional<V> pop() {
        typename R::Guard guard(*domain_);
        V out;
        return detail::spine_pop_chain(top_, guard, &out, 1) == 1
                   ? std::optional<V>(out)
                   : std::nullopt;
    }

    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        return detail::spine_peek(top_, guard);
    }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const V& v) { return push(v); }
    std::optional<V> take() { return pop(); }

private:
    reclaim::DomainRef<R> domain_;
    std::atomic<detail::SpineNode<V>*> top_{nullptr};
};

}  // namespace sec
