// core/fc_queue.hpp — the flat-combining FIFO queue: the FlatCombiner
// protocol of core/fc_stack.hpp applied to a sequential ring-of-deque
// backend. The single-combiner baseline of the `queue` scenario, mirroring
// FcStack's role in the stack matrix (and SNIPPETS.md Snippet 3's
// flat_combining_queue.h): every request serialises through one lock, so it
// wins at low thread counts and flattens once the combiner saturates —
// exactly the envelope SecQueue's K concurrent aggregators are built to
// beat.
#pragma once

#include <deque>
#include <optional>

#include "core/container_concept.hpp"
#include "core/fc_stack.hpp"
#include "core/seq_stack.hpp"

namespace sec {

namespace detail {

// The sequential queue a combiner applies requests against: kPop removes
// the OLDEST element, kPeek observes it.
template <class V>
class SeqQueue {
public:
    // Pop/peek return the value (nullopt: empty); push returns nullopt.
    std::optional<V> apply(SeqOp op, const V& v) {
        switch (op) {
            case SeqOp::kPush:
                items_.push_back(v);
                return std::nullopt;
            case SeqOp::kPop: {
                if (items_.empty()) return std::nullopt;
                V out = items_.front();
                items_.pop_front();
                return out;
            }
            default: {  // kPeek
                if (items_.empty()) return std::nullopt;
                return items_.front();
            }
        }
    }

private:
    std::deque<V> items_;
};

}  // namespace detail

template <class V>
using FcQueue =
    detail::FlatCombiner<V, detail::SeqQueue<V>, ContainerShape::fifo>;

}  // namespace sec
