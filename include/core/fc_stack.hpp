// core/fc_stack.hpp — flat combining (Hendler, Incze, Shavit, Tchiboukdjian,
// SPAA'10): threads publish requests in per-thread slots; whoever wins the
// combiner lock applies every pending request against a sequential backend.
// One of the two combining baselines of Figure 2 ("FC/CC flatten early":
// the single combiner serialises all work).
//
// The combiner protocol is shape-agnostic — only the sequential backend
// decides whether apply(kPop) removes the newest or the oldest element — so
// the protocol lives in detail::FlatCombiner, parameterized on the backend
// and the shape trait it implements. FcStack (here, over detail::SeqStack)
// and FcQueue (core/fc_queue.hpp, over detail::SeqQueue) are instantiations
// of one protocol and cannot diverge.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "core/seq_stack.hpp"

namespace sec {

namespace detail {

// `Seq` must provide `std::optional<V> apply(SeqOp, const V&)` under the
// combiner lock; `Shape` names the removal order that backend implements.
template <class V, class Seq, ContainerShape Shape>
class FlatCombiner {
public:
    using value_type = V;
    static constexpr ContainerShape kShape = Shape;

    explicit FlatCombiner(std::size_t max_threads)
        : max_threads_(std::min(std::max<std::size_t>(max_threads, 1),
                                kMaxThreads)),
          slots_(std::make_unique<Slot[]>(max_threads_)) {}

    FlatCombiner(const FlatCombiner&) = delete;
    FlatCombiner& operator=(const FlatCombiner&) = delete;

    bool put(const V& v) {
        request(kPush, v);
        return true;
    }

    std::optional<V> take() { return request(kPop, V{}); }

    std::optional<V> peek() { return request(kPeek, V{}); }

    // Harness aliases (container_concept.hpp).
    bool push(const V& v) { return put(v); }
    std::optional<V> pop() { return take(); }

private:
    // Slot states double as opcodes; kDone* are terminal until the owner
    // resets the slot to idle.
    static constexpr std::uint32_t kIdle = 0;
    static constexpr std::uint32_t kPush = 1;
    static constexpr std::uint32_t kPop = 2;
    static constexpr std::uint32_t kPeek = 3;
    static constexpr std::uint32_t kDone = 4;
    static constexpr std::uint32_t kDoneValue = 5;
    static constexpr std::uint32_t kDoneEmpty = 6;

    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint32_t> state{kIdle};
        V in{};   // written by owner before publishing state
        V out{};  // written by combiner before the kDone* release store
    };

    std::optional<V> request(std::uint32_t op, const V& v) {
        const std::size_t id = detail::tid();
        if (id >= max_threads_) {
            // No publication slot for this thread: take the lock outright.
            detail::Backoff backoff;
            while (lock_.exchange(1, std::memory_order_acquire) != 0) {
                backoff.pause();
            }
            std::optional<V> r = seq_.apply(to_op(op), v);
            combine();  // serve whoever queued up behind us
            lock_.store(0, std::memory_order_release);
            return r;
        }
        Slot& slot = slots_[id];
        slot.in = v;
        slot.state.store(op, std::memory_order_release);
        detail::Backoff backoff;
        for (;;) {
            const std::uint32_t st = slot.state.load(std::memory_order_acquire);
            if (st >= kDone) return consume(slot, st);
            if (lock_.exchange(1, std::memory_order_acquire) == 0) {
                combine();
                lock_.store(0, std::memory_order_release);
                // combine() scans every slot, ours included, so we are done.
                const std::uint32_t fin =
                    slot.state.load(std::memory_order_acquire);
                return consume(slot, fin);
            }
            backoff.pause();
        }
    }

    std::optional<V> consume(Slot& slot, std::uint32_t st) {
        std::optional<V> r;
        if (st == kDoneValue) r = slot.out;
        slot.state.store(kIdle, std::memory_order_relaxed);
        return r;
    }

    // Called with lock_ held.
    void combine() {
        // Two passes pick up requests published while the first pass ran.
        for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t i = 0; i < max_threads_; ++i) {
                Slot& slot = slots_[i];
                const std::uint32_t st =
                    slot.state.load(std::memory_order_acquire);
                if (st == kIdle || st >= kDone) continue;
                std::optional<V> r = seq_.apply(to_op(st), slot.in);
                if (st == kPush) {
                    slot.state.store(kDone, std::memory_order_release);
                } else if (r.has_value()) {
                    slot.out = *r;
                    slot.state.store(kDoneValue, std::memory_order_release);
                } else {
                    slot.state.store(kDoneEmpty, std::memory_order_release);
                }
            }
        }
    }

    static detail::SeqOp to_op(std::uint32_t st) noexcept {
        return static_cast<detail::SeqOp>(st - kPush);
    }

    std::size_t max_threads_;
    std::unique_ptr<Slot[]> slots_;
    alignas(kCacheLineSize) std::atomic<std::uint32_t> lock_{0};
    Seq seq_;  // guarded by lock_
};

}  // namespace detail

template <class V>
using FcStack =
    detail::FlatCombiner<V, detail::SeqStack<V>, ContainerShape::lifo>;

}  // namespace sec
