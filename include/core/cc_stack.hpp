// core/cc_stack.hpp — CC-Synch combining (Fatourou & Kallimanis, PPoPP'12):
// requests are announced by swapping a node into a combining queue; the
// thread at the head serves a bounded run of successors, then hands the
// combiner role to the next waiter. The second combining baseline of
// Figure 2.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "core/seq_stack.hpp"

namespace sec {

template <class V>
class CcStack {
public:
    using value_type = V;
    static constexpr ContainerShape kShape = ContainerShape::lifo;

    explicit CcStack(std::size_t /*max_threads*/) {
        auto* initial = new CcNode();
        initial->status.store(kCombiner, std::memory_order_relaxed);
        track(initial);
        tail_.store(initial, std::memory_order_release);
    }

    ~CcStack() {
        for (CcNode* n : allocated_) delete n;
    }

    CcStack(const CcStack&) = delete;
    CcStack& operator=(const CcStack&) = delete;

    bool push(const V& v) {
        request(detail::SeqOp::kPush, v);
        return true;
    }

    std::optional<V> pop() { return request(detail::SeqOp::kPop, V{}); }

    std::optional<V> peek() { return request(detail::SeqOp::kPeek, V{}); }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const V& v) { return push(v); }
    std::optional<V> take() { return pop(); }

private:
    static constexpr std::uint32_t kWaiting = 0;
    static constexpr std::uint32_t kDone = 1;       // completed, result ready
    static constexpr std::uint32_t kDoneEmpty = 2;  // completed, no value
    static constexpr std::uint32_t kCombiner = 3;   // combiner role handoff
    // Max requests one combiner serves before handing off (bounds latency of
    // the waiter it would otherwise starve).
    static constexpr std::size_t kCombineLimit = 1024;

    struct alignas(kCacheLineSize) CcNode {
        std::atomic<CcNode*> next{nullptr};
        std::atomic<std::uint32_t> status{kWaiting};
        detail::SeqOp op = detail::SeqOp::kPush;  // plain; published by next
        V in{};
        V out{};
    };

    std::optional<V> request(detail::SeqOp op, const V& v) {
        CcNode* fresh = my_node();
        fresh->next.store(nullptr, std::memory_order_relaxed);
        fresh->status.store(kWaiting, std::memory_order_relaxed);
        CcNode* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
        cur->op = op;
        cur->in = v;
        cur->next.store(fresh, std::memory_order_release);
        set_my_node(cur);  // recycle: `cur` is ours once this op completes

        std::uint32_t st;
        detail::Backoff backoff;
        while ((st = cur->status.load(std::memory_order_acquire)) == kWaiting) {
            backoff.pause();
        }
        if (st != kCombiner) {
            return st == kDone ? std::optional<V>(cur->out) : std::nullopt;
        }

        // We are the combiner: serve from our own request onward.
        CcNode* tmp = cur;
        std::size_t served = 0;
        for (;;) {
            CcNode* next = tmp->next.load(std::memory_order_acquire);
            if (next == nullptr || served >= kCombineLimit) break;
            std::optional<V> r = seq_.apply(tmp->op, tmp->in);
            if (r.has_value()) {
                tmp->out = *r;
                tmp->status.store(kDone, std::memory_order_release);
            } else {
                tmp->status.store(
                    tmp->op == detail::SeqOp::kPush ? kDone : kDoneEmpty,
                    std::memory_order_release);
            }
            ++served;
            tmp = next;
        }
        tmp->status.store(kCombiner, std::memory_order_release);

        const std::uint32_t fin = cur->status.load(std::memory_order_acquire);
        return fin == kDone ? std::optional<V>(cur->out) : std::nullopt;
    }

    CcNode* my_node() {
        const std::size_t id = detail::tid();
        CcNode* n = nodes_[id]->load(std::memory_order_relaxed);
        if (n == nullptr) {
            n = new CcNode();
            track(n);
            nodes_[id]->store(n, std::memory_order_relaxed);
        }
        return n;
    }

    void set_my_node(CcNode* n) {
        nodes_[detail::tid()]->store(n, std::memory_order_relaxed);
    }

    void track(CcNode* n) {
        detail::Backoff backoff;
        while (alloc_lock_.test_and_set(std::memory_order_acquire)) {
            backoff.pause();
        }
        allocated_.push_back(n);
        alloc_lock_.clear(std::memory_order_release);
    }

    // Per-thread recycled node; indexed by the process-wide tid so id reuse
    // after thread exit reuses the node too.
    CacheAligned<std::atomic<CcNode*>> nodes_[kMaxThreads] = {};
    alignas(kCacheLineSize) std::atomic<CcNode*> tail_{nullptr};
    detail::SeqStack<V> seq_;  // only touched by the current combiner
    std::atomic_flag alloc_lock_ = ATOMIC_FLAG_INIT;
    std::vector<CcNode*> allocated_;
};

}  // namespace sec
