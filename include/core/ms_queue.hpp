// core/ms_queue.hpp — the classic lock-free FIFO queue (Michael & Scott,
// PODC'96): a dummy-headed linked list where every enqueue CASes one node
// onto tail->next (helping a lagging tail forward) and every dequeue CASes
// head one node ahead. The per-op contention baseline of the `queue`
// scenario — the FIFO counterpart of TreiberStack's role in Figure 2: both
// ends are single contended lines that every thread fights for, which is
// exactly what SecQueue's batching amortizes away.
//
// Templated over the reclamation scheme (sec::reclaim); EBR remains the
// default. Under hazard pointers the dequeue is the interesting path: it
// must protect TWO nodes — the dummy it will retire (slot 0) and the
// successor whose value it reads (slot 1) — revalidating head after the
// second announcement, since a concurrently retired dummy's next pointer
// may reference an already-freed node. reclaim_conformance_test drives
// exactly this two-node window.
#pragma once

#include <atomic>
#include <optional>

#include "core/common.hpp"
#include "core/container_concept.hpp"
#include "core/fifo_spine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class MsQueue {
public:
    using value_type = V;
    using reclaimer_type = R;
    static constexpr ContainerShape kShape = ContainerShape::fifo;

    explicit MsQueue(std::size_t /*max_threads*/) {
        detail::fifo_init(head_, tail_);
    }
    MsQueue(std::size_t /*max_threads*/, R& domain) : domain_(domain) {
        detail::fifo_init(head_, tail_);
    }

    ~MsQueue() { detail::fifo_destroy(head_, tail_); }

    MsQueue(const MsQueue&) = delete;
    MsQueue& operator=(const MsQueue&) = delete;

    bool put(const V& v) {
        Node* node = new Node{v};
        typename R::Guard guard(*domain_);
        for (;;) {
            // Protecting tail keeps `t` dereferenceable: a node is retired
            // only after head passes it, but tail may still point at it.
            Node* t = guard.protect(0u, tail_);
            Node* next = t->next.load(std::memory_order_acquire);
            if (SEC_UNLIKELY(next != nullptr)) {
                // Tail lagged behind a finished link: help it forward.
                tail_.compare_exchange_weak(t, next,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
                continue;
            }
            Node* expected = nullptr;
            if (SEC_LIKELY(t->next.compare_exchange_weak(
                    expected, node, std::memory_order_release,
                    std::memory_order_relaxed))) {
                // Swing tail; a failed CAS means someone helped already.
                tail_.compare_exchange_strong(t, node,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
                return true;
            }
            detail::cpu_relax();
        }
    }

    std::optional<V> take() {
        typename R::Guard guard(*domain_);
        for (;;) {
            Node* h = guard.protect(0u, head_);  // dummy we may retire
            Node* t = tail_.load(std::memory_order_acquire);
            Node* next = h->next.load(std::memory_order_acquire);
            if (next == nullptr) return std::nullopt;  // empty
            // Second protected node: announce the successor, then make sure
            // head did not move — if it did, h may be retired and `next`
            // read from freed memory, so start over.
            guard.publish(1u, next);
            if (SEC_UNLIKELY(!guard.validate(head_, h))) {
                detail::cpu_relax();
                continue;
            }
            if (SEC_UNLIKELY(h == t)) {
                // Head caught a lagging tail: help before advancing past it
                // (head must never overtake tail).
                tail_.compare_exchange_weak(t, next,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
                continue;
            }
            // Copy before the CAS: once head advances, a later dequeuer may
            // retire `next` (as its dummy) while we still hold the value.
            V out = next->value;
            Node* expected = h;
            if (SEC_LIKELY(head_.compare_exchange_weak(
                    expected, next, std::memory_order_acq_rel,
                    std::memory_order_acquire))) {
                guard.domain().retire(h);
                return out;
            }
            detail::cpu_relax();
        }
    }

    // Front element (what take() would return).
    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        return detail::fifo_peek(head_, guard);
    }

    // Harness aliases (container_concept.hpp) and queue-idiomatic names.
    bool push(const V& v) { return put(v); }
    std::optional<V> pop() { return take(); }
    bool enqueue(const V& v) { return put(v); }
    std::optional<V> dequeue() { return take(); }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

private:
    using Node = detail::QueueNode<V>;

    reclaim::DomainRef<R> domain_;
    alignas(kCacheLineSize) std::atomic<Node*> head_{nullptr};
    alignas(kCacheLineSize) std::atomic<Node*> tail_{nullptr};
};

}  // namespace sec
