// core/config.hpp — SecStack/ElimPool configuration and the per-run degree
// statistics (batching / elimination / combining, paper Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/common.hpp"

namespace sec {

// How threads are spread across aggregators (§3.2: threads are assigned
// "evenly"; the paper's prose example is contiguous blocks).
enum class AggregatorMapping : std::uint8_t {
    kContiguous,  // threads [0,M/K) -> agg 0, [M/K,2M/K) -> agg 1, ...
    kRoundRobin,  // thread t -> agg t % K
};

inline constexpr std::size_t kMaxAggregators = 5;

struct Config {
    // Number of aggregators (batches being formed concurrently). The paper's
    // sweet spot for update-heavy loads is 2-4 (§6, Figure 4).
    std::size_t num_aggregators = 4;
    // Bound on concurrently-live threads using the structure. Per-thread
    // publication slots are sized by this.
    std::size_t max_threads = kMaxThreads;
    AggregatorMapping mapping = AggregatorMapping::kContiguous;
    // Backoff the freezer executes before freezing a batch, to let the batch
    // grow and raise the elimination degree (§3.1).
    std::uint64_t freezer_backoff_ns = 256;
    // When true, per-batch degree counters are maintained (small overhead).
    bool collect_stats = false;

    void validate() const {
        if (num_aggregators < 1 || num_aggregators > kMaxAggregators) {
            throw std::invalid_argument(
                "sec::Config: num_aggregators must be in [1, 5]");
        }
        if (max_threads < 1 || max_threads > kMaxThreads) {
            throw std::invalid_argument(
                "sec::Config: max_threads must be in [1, kMaxThreads]");
        }
        if (mapping != AggregatorMapping::kContiguous &&
            mapping != AggregatorMapping::kRoundRobin) {
            throw std::invalid_argument("sec::Config: unknown mapping");
        }
    }
};

// Snapshot of the degree counters (Table 1 metrics). `batched_ops` counts
// operations that went through a frozen batch; of those, `eliminated_ops`
// were matched push/pop pairs and `combined_ops` were applied to the central
// structure by the combiner.
struct StatsSnapshot {
    std::uint64_t batches = 0;
    std::uint64_t batched_ops = 0;
    std::uint64_t eliminated_ops = 0;
    std::uint64_t combined_ops = 0;

    double batching_degree() const noexcept {
        return batches ? static_cast<double>(batched_ops) /
                             static_cast<double>(batches)
                       : 0.0;
    }
    double elimination_pct() const noexcept {
        return batched_ops ? 100.0 * static_cast<double>(eliminated_ops) /
                                 static_cast<double>(batched_ops)
                           : 0.0;
    }
    double combining_pct() const noexcept {
        return batched_ops ? 100.0 * static_cast<double>(combined_ops) /
                                 static_cast<double>(batched_ops)
                           : 0.0;
    }
};

}  // namespace sec
