// core/config.hpp — SecStack/ElimPool configuration and the per-run degree
// statistics (batching / elimination / combining, paper Table 1).
//
// Every knob documents its unit, its legal range, and the paper section it
// reproduces, so a sweep spec (`secbench --sweep`) or a hand-written Config
// can be checked against the paper without opening the implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/common.hpp"

namespace sec {

class TuningState;  // core/adaptive.hpp — runtime-adjustable knob overrides

// How threads are spread across aggregators (§3.2: threads are assigned
// "evenly"; the paper's prose example is contiguous blocks). Under adaptive
// tuning the same policy is applied to the ACTIVE prefix of the aggregator
// set, so the mapping survives the active count changing at runtime.
enum class AggregatorMapping : std::uint8_t {
    kContiguous,  // threads [0,M/K) -> agg 0, [M/K,2M/K) -> agg 1, ...
    kRoundRobin,  // thread t -> agg t % K
};

inline constexpr std::size_t kMaxAggregators = 5;

// Upper bound on Config::freezer_backoff_ns: what a TuningState can
// represent (48 bits of nanoseconds ≈ 78 hours — far beyond any sane
// window), enforced by validate() so static and adaptive runs of one
// Config can never silently diverge.
inline constexpr std::uint64_t kMaxFreezerBackoffNs =
    (std::uint64_t{1} << 48) - 1;

struct Config {
    // Number of aggregators — concurrent batches being formed.
    //   unit: count · legal range: [1, kMaxAggregators] (validate() throws
    //   outside it) · paper: §3.2, swept in §6/Figure 4, whose update-heavy
    //   sweet spot is 2-4. With `tuning` attached this becomes the CEILING
    //   of the runtime-active set; statically it is the exact count.
    std::size_t num_aggregators = 4;
    // Bound on concurrently-live threads using the structure; per-thread
    // publication slots are sized by this.
    //   unit: threads · legal range: [1, kMaxThreads] · paper: §3 ("M
    //   threads"). Threads with ids at or past the bound take the direct
    //   spine path (AggregatorSet::is_overflow).
    std::size_t max_threads = kMaxThreads;
    // Thread → aggregator assignment policy.
    //   legal range: the two enumerators above · paper: §3.2 prose
    //   ("evenly"); `secbench ablation_mapping` compares the two.
    AggregatorMapping mapping = AggregatorMapping::kContiguous;
    // Backoff the freezer executes before freezing a batch, to let the
    // batch grow and raise the elimination degree.
    //   unit: nanoseconds (busy-wait, steady_clock granularity) · legal
    //   range: [0, kMaxFreezerBackoffNs], validate() throws above it — 0
    //   DISABLES the wait entirely (freeze immediately; the backoff branch
    //   is skipped, not a zero-length
    //   spin) · paper: §3.1; swept by `secbench ablation_backoff` and
    //   `--sweep backoff=...`. With `tuning` attached this is only the
    //   STARTING value; the controller moves it at runtime.
    std::uint64_t freezer_backoff_ns = 256;
    // When true, per-batch degree counters are maintained (small overhead).
    //   paper: Table 1 metrics. Required (and forced on) for SEC@adaptive —
    //   the counters are the controller's feedback signal.
    bool collect_stats = false;
    // When true (the paper's stack semantics), the freezer matches
    // concurrent push/pop pairs and exchanges their values directly, so
    // eliminated pairs never touch the central structure. Elimination is
    // only legal for LIFO: handing a dequeuer a *concurrent* enqueue's value
    // would skip every older element in a FIFO, so SecQueue constructs its
    // aggregators with this forced false — batching and single-CAS combining
    // are shape-agnostic, elimination is not (DESIGN.md §12).
    bool eliminate = true;
    // Optional runtime tuning overrides (non-owning; the pointee must
    // outlive every structure built from this Config). When set, the hot
    // path reads {active aggregators, freezer backoff} from it with one
    // relaxed load per operation attempt and the values above act as
    // ceiling/start respectively; when null, behaviour and performance are
    // exactly the static paper configuration. See core/adaptive.hpp.
    const TuningState* tuning = nullptr;

    void validate() const {
        if (num_aggregators < 1 || num_aggregators > kMaxAggregators) {
            throw std::invalid_argument(
                "sec::Config: num_aggregators must be in [1, 5]");
        }
        if (max_threads < 1 || max_threads > kMaxThreads) {
            throw std::invalid_argument(
                "sec::Config: max_threads must be in [1, kMaxThreads]");
        }
        if (mapping != AggregatorMapping::kContiguous &&
            mapping != AggregatorMapping::kRoundRobin) {
            throw std::invalid_argument("sec::Config: unknown mapping");
        }
        if (freezer_backoff_ns > kMaxFreezerBackoffNs) {
            // TuningState packs the backoff into 48 bits; allowing more
            // here would make an adaptive run silently truncate what the
            // same Config spins statically.
            throw std::invalid_argument(
                "sec::Config: freezer_backoff_ns must be < 2^48");
        }
    }
};

// Snapshot of the degree counters (Table 1 metrics). `batched_ops` counts
// operations that went through a frozen batch; of those, `eliminated_ops`
// were matched push/pop pairs and `combined_ops` were applied to the central
// structure by the combiner. Also the feedback signal of the sec::adapt
// controller (core/adaptive.hpp), which works on per-epoch deltas of a
// cumulative snapshot.
struct StatsSnapshot {
    std::uint64_t batches = 0;
    std::uint64_t batched_ops = 0;
    std::uint64_t eliminated_ops = 0;
    std::uint64_t combined_ops = 0;

    double batching_degree() const noexcept {
        return batches ? static_cast<double>(batched_ops) /
                             static_cast<double>(batches)
                       : 0.0;
    }
    double elimination_pct() const noexcept {
        return batched_ops ? 100.0 * static_cast<double>(eliminated_ops) /
                                 static_cast<double>(batched_ops)
                           : 0.0;
    }
    double combining_pct() const noexcept {
        return batched_ops ? 100.0 * static_cast<double>(combined_ops) /
                                 static_cast<double>(batched_ops)
                           : 0.0;
    }
};

}  // namespace sec
