// core/fifo_spine.hpp — the lock-free FIFO spine shared by SecQueue and
// (structurally) mirrored by MsQueue: a dummy-headed linked list with
// batched single-atomic chain enqueue and batched single-CAS multi-dequeue
// with reclaimer retirement. The queue-shaped sibling of core/spine.hpp.
//
// Enqueue publication (fifo_put_chain) is ONE unconditional exchange on the
// tail no matter how many values the batch carries: the producer links its
// values into a private chain first..last, swings `tail` to `last` with an
// exchange, then stores `prev->next = first`. The exchange totally orders
// batches; the trailing next-store is the only cross-batch link write and
// has exactly one writer per node, so enqueues never retry — this is what
// makes the combining engine's "n operations, one atomic on the hot line"
// property shape-agnostic (DESIGN.md §12).
//
// The window between the exchange and the next-store means a dequeuer can
// observe `head->next == nullptr` while the exchange of an in-flight
// enqueue has already landed. fifo_take_chain surfaces that as EMPTY: the
// dequeue linearizes before the enqueue's final link, which is a legal
// order because the enqueue has not returned yet. The window is a few
// instructions wide and closes without any other thread's help.
//
// Reclamation mirrors spine.hpp: take/peek need a live reclaimer Guard.
// Blanket guards (EBR/QSBR/leaky) compile to the plain walk; hazard guards
// announce the anchor dummy in slot 0 and each walker node in slot 1,
// revalidating the anchor after every announcement — as long as `head`
// still equals the protected dummy no node of the chain behind it can have
// been detached, and queue nodes are never re-linked after a detach, so the
// walked prefix is intact. Values are copied DURING the protected walk:
// after the head CAS the batch's last walked node becomes the new dummy and
// may be retired by a later dequeuer, so reading it after the CAS would be
// a use-after-retire under hazard pointers.
//
// The enqueue side needs no guard under any reclaimer: the only shared node
// it dereferences is the exchange's `prev`, and `prev` cannot have been
// retired — a node is retired only once `head` has moved PAST it, which
// requires its `next` to be non-null, and `prev->next` stays null until
// this very store (each node has exactly one next-writer).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

#include "core/common.hpp"

namespace sec::detail {

template <class V>
struct QueueNode {
    V value;
    std::atomic<QueueNode*> next{nullptr};
};

// Allocate the initial dummy and point head and tail at it. The dummy's
// value is never observed.
template <class V>
void fifo_init(std::atomic<QueueNode<V>*>& head,
               std::atomic<QueueNode<V>*>& tail) {
    QueueNode<V>* dummy = new QueueNode<V>{};
    head.store(dummy, std::memory_order_relaxed);
    tail.store(dummy, std::memory_order_relaxed);
}

// Append vals[0..n) behind the current tail with a single exchange.
// vals[0] is dequeued first; within a batch the operations are concurrent,
// so any internal order is linearizable.
template <class V>
void fifo_put_chain(std::atomic<QueueNode<V>*>& tail, const V* vals,
                    std::size_t n) {
    QueueNode<V>* first = nullptr;
    QueueNode<V>* last = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
        QueueNode<V>* node = new QueueNode<V>{vals[i]};
        if (first == nullptr) {
            first = node;
        } else {
            last->next.store(node, std::memory_order_relaxed);
        }
        last = node;
    }
    // At most K aggregator freezers (plus overflow threads) touch `tail`,
    // and the exchange never fails — no retry loop at all.
    QueueNode<V>* prev = tail.exchange(last, std::memory_order_acq_rel);
    prev->next.store(first, std::memory_order_release);
}

// Detach up to n values from the head with a single CAS; returns how many
// were dequeued. `guard` must be a live Guard of the domain the spine's
// nodes retire into; slots 0 (anchor dummy) and 1 (walker) of a hazard
// guard are used. The batch's last walked node survives as the new dummy —
// its value has already been copied out, which is why the dummy's payload
// is dead weight rather than a leak.
template <class V, class G>
std::size_t fifo_take_chain(std::atomic<QueueNode<V>*>& head, G& guard,
                            V* out, std::size_t n) {
    for (;;) {
        QueueNode<V>* h = guard.protect(0u, head);
        QueueNode<V>* end = h;
        std::size_t count = 0;
        bool restart = false;
        while (count < n) {
            QueueNode<V>* next = end->next.load(std::memory_order_acquire);
            if (next == nullptr) break;  // drained (or in-flight enqueue gap)
            // `next` is dereferenced right away: announce it, then
            // revalidate the anchor (no-ops for blanket guards).
            guard.publish(1u, next);
            if (SEC_UNLIKELY(!guard.validate(head, h))) {
                restart = true;
                break;
            }
            out[count++] = next->value;
            QueueNode<V>* after =
                next->next.load(std::memory_order_relaxed);
            if (after != nullptr) prefetch(after);
            end = next;
        }
        if (SEC_UNLIKELY(restart)) {
            cpu_relax();
            continue;
        }
        if (count == 0) return 0;
        QueueNode<V>* expected = h;
        if (SEC_LIKELY(head.compare_exchange_weak(
                expected, end, std::memory_order_acq_rel,
                std::memory_order_acquire))) {
            // Nodes h .. pred(end) are exclusively ours now; `end` stays in
            // the list as the new dummy and is never touched again here.
            QueueNode<V>* node = h;
            for (std::size_t i = 0; i < count; ++i) {
                QueueNode<V>* next =
                    node->next.load(std::memory_order_relaxed);
                guard.domain().retire(node);
                node = next;
            }
            return count;
        }
        cpu_relax();
    }
}

// Read the front value without detaching it; uses slots 0 and 1 of a
// hazard guard.
template <class V, class G>
std::optional<V> fifo_peek(const std::atomic<QueueNode<V>*>& head, G& guard) {
    for (;;) {
        QueueNode<V>* h = guard.protect(0u, head);
        QueueNode<V>* next = h->next.load(std::memory_order_acquire);
        if (next == nullptr) return std::nullopt;
        guard.publish(1u, next);
        if (SEC_UNLIKELY(!guard.validate(head, h))) {
            cpu_relax();
            continue;
        }
        return next->value;
    }
}

// Teardown only: no concurrent access may remain. Frees the dummy too.
template <class V>
void fifo_destroy(std::atomic<QueueNode<V>*>& head,
                  std::atomic<QueueNode<V>*>& tail) {
    QueueNode<V>* node = head.load(std::memory_order_relaxed);
    while (node != nullptr) {
        QueueNode<V>* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
    }
    head.store(nullptr, std::memory_order_relaxed);
    tail.store(nullptr, std::memory_order_relaxed);
}

}  // namespace sec::detail
