// core/container_concept.hpp — the shape-parameterized ConcurrentContainer
// concept every structure in this library models.
//
// PR 2 introduced a stack-only `ConcurrentStack` concept; nothing in the
// harness (phase templates, registry factories, reclaim templating, the
// sharding façade, the net front-end) actually depends on LIFO order — only
// on "insert a value" / "remove some value" / "observe without removing".
// This header names that contract once:
//
//   * `put` / `take` are the canonical shape-neutral operations. `push` /
//     `pop` remain REQUIRED thin aliases — they are the operational spelling
//     the whole harness uses (runner phase loops, AnyStack, SecServer), and
//     queues additionally expose `enqueue`/`dequeue` for idiomatic call
//     sites. All spellings must hit the same code path.
//   * `kShape` is a compile-time trait naming the removal order the
//     container guarantees; the conformance harness
//     (tests/container_conformance_test.cpp) derives its order-checking
//     oracle from it, secbench prints it in `--list` and refuses to
//     benchmark a shape-mixed `--algos` set within one scenario.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <string_view>

namespace sec {

enum class ContainerShape : std::uint8_t {
    lifo = 0,       // take() returns the newest element (stack order)
    fifo = 1,       // take() returns the oldest element (queue order)
    unordered = 2,  // take() returns *some* element (ElimPool: order is
                    // deliberately dropped to buy throughput)
};

constexpr std::string_view shape_name(ContainerShape s) noexcept {
    switch (s) {
        case ContainerShape::lifo: return "lifo";
        case ContainerShape::fifo: return "fifo";
        default: return "unordered";
    }
}

// What a container must provide to participate in the library: a value
// type, a removal-order trait, put/push (false only on resource
// exhaustion), and optional-returning take/pop/peek (nullopt == EMPTY; for
// FIFO shapes peek observes the element take() would return, i.e. the
// front). ElimPool rides along via an adapter whose peek always returns
// nullopt.
template <class C>
concept ConcurrentContainer =
    requires(C c, const typename C::value_type v) {
        typename C::value_type;
        { C::kShape } -> std::convertible_to<ContainerShape>;
        { c.put(v) } -> std::convertible_to<bool>;
        { c.take() } -> std::same_as<std::optional<typename C::value_type>>;
        { c.push(v) } -> std::convertible_to<bool>;
        { c.pop() } -> std::same_as<std::optional<typename C::value_type>>;
        { c.peek() } -> std::same_as<std::optional<typename C::value_type>>;
    };

// Shape refinements, for interfaces that genuinely require one removal
// order (none of the harness does; tests use these to assert a type landed
// in the matrix it claims).
template <class C>
concept ConcurrentStackLike =
    ConcurrentContainer<C> && (C::kShape == ContainerShape::lifo);

template <class C>
concept ConcurrentQueueLike =
    ConcurrentContainer<C> && (C::kShape == ContainerShape::fifo);

}  // namespace sec
