// core/common.hpp — small shared utilities: thread-id registry, cache-line
// alignment, a fast PRNG, and calibrated short spins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

// Branch-shape hints for the measured hot paths (spine walk, aggregator
// execute loop, hazard validation, shard steal sweep). Only annotate
// branches whose skew is structural — overflow fallbacks, CAS retries,
// anchor invalidation — never ones whose skew is workload-dependent, so a
// hint can't pessimize an unanticipated mix. Macros (not [[likely]]) so the
// condition itself carries the hint into gcc/clang's block layout and they
// compose inside `while` headers.
#if defined(__GNUC__) || defined(__clang__)
#define SEC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define SEC_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define SEC_LIKELY(x) (x)
#define SEC_UNLIKELY(x) (x)
#endif

namespace sec {

// Best-effort read prefetch into all cache levels. The pointer-chasing
// walks (Treiber spine, member-slot scans) know the next line one step
// before they dereference it; issuing the prefetch there overlaps the miss
// with the current iteration's work. A no-op where the builtin is missing —
// and always safe: prefetching an invalid address does not fault.
inline void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

// Upper bound on concurrently-live threads the library supports. Thread ids
// are recycled when a thread exits, so this bounds *live* threads, not the
// total spawned over a process lifetime (gtest suites spawn thousands).
inline constexpr std::size_t kMaxThreads = 512;

inline constexpr std::size_t kCacheLineSize = 64;

// A T on its own cache line, so per-thread counters/slots never false-share.
template <class T>
struct alignas(kCacheLineSize) CacheAligned {
    T value{};

    CacheAligned() = default;
    explicit CacheAligned(T v) : value(std::move(v)) {}

    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
};

// xoshiro256** — fast, high-quality, per-thread PRNG for workload draws.
class Xoshiro256 {
public:
    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto& word : s_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    // Uniform draw in [0, bound). bound == 0 is treated as 1.
    std::uint64_t next_below(std::uint64_t bound) noexcept {
        return bound > 1 ? next() % bound : 0;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4];
};

namespace detail {

// Process-wide small thread id in [0, kMaxThreads). Ids are recycled when the
// owning thread exits, so sequential test cases and bench phases reuse the low
// ids instead of marching past every per-thread array bound.
std::size_t tid() noexcept;

// Monotonic high-water mark over every id tid() has handed out: all live
// thread ids are < tid_hwm(). Lets slot scans stop at the live prefix
// instead of walking max_threads entries. Relaxed — a freezer with a stale
// (smaller) view can only miss a BRAND-NEW thread's first operation, whose
// owner re-drives its own aggregator until served (the execute retry loop),
// and that owner's view includes itself by construction.
std::size_t tid_hwm() noexcept;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin-then-yield waiter: pure pause loops livelock on machines with fewer
// cores than threads (the combiner never gets scheduled while its waiters
// burn their quanta), so fall back to yield after a short spin.
class Backoff {
public:
    void pause() noexcept {
        if (++spins_ >= kSpinLimit) {
            spins_ = 0;
            std::this_thread::yield();
        } else {
            cpu_relax();
        }
    }

private:
    static constexpr int kSpinLimit = 64;
    int spins_ = 0;
};

// Busy-wait roughly `ns` nanoseconds (used for the freezer backoff window and
// elimination rendezvous; precision beyond steady_clock granularity is not
// needed).
inline void spin_for_ns(std::uint64_t ns) noexcept {
    if (ns == 0) return;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline) cpu_relax();
}

}  // namespace detail
}  // namespace sec
