// core/seq_stack.hpp — the sequential stack a combiner applies requests
// against, shared by the flat-combining and CC-Synch baselines so their
// semantics cannot diverge.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace sec::detail {

enum class SeqOp : std::uint32_t { kPush, kPop, kPeek };

template <class V>
class SeqStack {
public:
    // Pop/peek return the value (nullopt: empty); push returns nullopt.
    std::optional<V> apply(SeqOp op, const V& v) {
        switch (op) {
            case SeqOp::kPush:
                items_.push_back(v);
                return std::nullopt;
            case SeqOp::kPop: {
                if (items_.empty()) return std::nullopt;
                V out = items_.back();
                items_.pop_back();
                return out;
            }
            default: {  // kPeek
                if (items_.empty()) return std::nullopt;
                return items_.back();
            }
        }
    }

private:
    std::vector<V> items_;
};

}  // namespace sec::detail
