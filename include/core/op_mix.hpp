// core/op_mix.hpp — the paper's workload mixes (§6): an operation mix is a
// push/pop/peek percentage split; "updates" are pushes + pops.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sec {

struct OpMix {
    std::string_view name;
    std::uint8_t push_pct = 50;
    std::uint8_t pop_pct = 50;
    // Remainder up to 100 is read-only peeks.

    constexpr unsigned update_pct() const noexcept {
        return static_cast<unsigned>(push_pct) + pop_pct;
    }
    constexpr unsigned peek_pct() const noexcept { return 100 - update_pct(); }
};

// The three standard mixes of Figures 2/5/9 and Table 1, legend order.
inline constexpr std::array<OpMix, 3> kStandardMixes = {{
    {"upd100", 50, 50},
    {"upd50", 25, 25},
    {"upd10", 5, 5},
}};

inline constexpr OpMix kUpdateHeavy = kStandardMixes[0];
inline constexpr OpMix kPushOnly = {"push_only", 100, 0};
inline constexpr OpMix kPopOnly = {"pop_only", 0, 100};

}  // namespace sec
