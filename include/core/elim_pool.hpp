// core/elim_pool.hpp — the SEC machinery generalised to an unordered pool
// (paper conclusion: the sharded elimination/combining layer is not
// stack-specific). Unlike SecStack, which funnels every combined run through
// ONE top pointer, ElimPool gives each aggregator its own spine: the last
// shared contention point disappears, at the price of LIFO order. extract()
// falls back to stealing from sibling spines when the local one is empty.
// bench/ablation_pool_vs_stack.cpp measures what that buys. Reclamation is
// pluggable (sec::reclaim); EBR remains the default.
//
// Adaptivity note: with Config::tuning attached, combines land only on the
// active prefix of the aggregator set, but extract()'s steal loop always
// walks ALL num_aggregators spines — values parked on a since-deactivated
// aggregator's spine stay reachable after a shrink.
#pragma once

#include <atomic>
#include <memory>
#include <optional>

#include "core/aggregator.hpp"
#include "core/common.hpp"
#include "core/config.hpp"
#include "core/spine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class ElimPool {
public:
    using value_type = V;
    using reclaimer_type = R;

    explicit ElimPool(Config cfg)
        : aggs_(cfg),
          spines_(std::make_unique<Spine[]>(aggs_.num_aggregators())) {}
    ElimPool(Config cfg, R& domain)
        : aggs_(cfg),
          domain_(domain),
          spines_(std::make_unique<Spine[]>(aggs_.num_aggregators())) {}

    ~ElimPool() {
        for (std::size_t a = 0; a < aggs_.num_aggregators(); ++a) {
            detail::spine_destroy(spines_[a].top);
        }
    }

    ElimPool(const ElimPool&) = delete;
    ElimPool& operator=(const ElimPool&) = delete;

    bool insert(const V& v) {
        if (aggs_.is_overflow(detail::tid())) {
            detail::spine_push_chain(spines_[0].top, &v, 1);
            return true;
        }
        (void)aggs_.execute(
            Aggs::kOpPush, v,
            [this](std::size_t a, const V* vals, std::size_t n) {
                detail::spine_push_chain(spines_[a].top, vals, n);
            },
            [this](std::size_t a, V* out, std::size_t n) {
                return pop_any(a, out, n);
            });
        return true;
    }

    std::optional<V> extract() {
        if (aggs_.is_overflow(detail::tid())) {
            V out;
            return pop_any(0, &out, 1) == 1 ? std::optional<V>(out)
                                            : std::nullopt;
        }
        return aggs_.execute(
            Aggs::kOpPop, V{},
            [this](std::size_t a, const V* vals, std::size_t n) {
                detail::spine_push_chain(spines_[a].top, vals, n);
            },
            [this](std::size_t a, V* out, std::size_t n) {
                return pop_any(a, out, n);
            });
    }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    StatsSnapshot stats() const { return aggs_.stats(); }

private:
    using Aggs = detail::AggregatorSet<V>;

    struct alignas(kCacheLineSize) Spine {
        std::atomic<detail::SpineNode<V>*> top{nullptr};
    };

    // Pop up to n values, preferring the local spine, then stealing.
    std::size_t pop_any(std::size_t a, V* out, std::size_t n) {
        typename R::Guard guard(*domain_);
        std::size_t got = detail::spine_pop_chain(spines_[a].top, guard, out,
                                                  n);
        const std::size_t k = aggs_.num_aggregators();
        for (std::size_t step = 1; got < n && step < k; ++step) {
            got += detail::spine_pop_chain(spines_[(a + step) % k].top,
                                           guard, out + got, n - got);
        }
        return got;
    }

    Aggs aggs_;
    reclaim::DomainRef<R> domain_;
    std::unique_ptr<Spine[]> spines_;
};

}  // namespace sec
