// core/aggregator.hpp — the SEC batching engine (paper §3).
//
// An AggregatorSet partitions threads across K aggregators (contiguous
// blocks or round-robin). A thread publishes its operation in its own
// cache-line slot, then races for its aggregator's freezer lock. The winner
// — the freezer — optionally backs off for the freezer-backoff window so the
// batch can grow (§3.1: "a short backoff before freezing B to increase the
// elimination degree"), then freezes the batch:
//   1. elimination — concurrent push/pop pairs exchange values directly,
//      two slot writes per pair, never touching the shared structure;
//   2. combining  — leftover same-direction operations are applied to the
//      backing structure in ONE batched call (a single CAS on a Treiber
//      spine for an arbitrarily long run of pushes or pops).
// Per-batch degree counters back the paper's Table 1. Every knob (count,
// unit, legal range, paper section) is documented on sec::Config
// (core/config.hpp); this engine consumes it verbatim — K is
// Config::num_aggregators in [1, kMaxAggregators], the backoff window is
// Config::freezer_backoff_ns in nanoseconds with 0 meaning "freeze
// immediately".
//
// Runtime adaptivity (DESIGN.md §5): when Config::tuning is set, the number
// of ACTIVE aggregators and the backoff window are re-read from the
// TuningState — one relaxed load per operation attempt — instead of being
// frozen at construction. Threads map into the active prefix [0, active).
// Because freezers running under different active-count views may scan
// overlapping member lists during a transition, ownership of a pending op
// is pinned by the OWNER: each slot records the aggregator index its op was
// published to (written before the pending release-store), and a freezer
// serves only slots recorded for it — plain loads, no hot-path RMW. When
// the mapping moves under a waiting owner, the owner re-points its record
// under the OLD aggregator's lock (so no freezer of the old index is
// mid-scan) after re-checking it is still unserved; it re-maps every spin
// iteration and always scans its own slot once it takes a freezer lock, so
// an op stranded by a shrink always rescues itself. Static configurations
// (tuning == nullptr) skip the record entirely and keep the original
// protocol and its exact performance.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/adaptive.hpp"
#include "core/common.hpp"
#include "core/config.hpp"

namespace sec::detail {

template <class V>
class AggregatorSet {
public:
    static constexpr std::uint32_t kOpPush = 1;
    static constexpr std::uint32_t kOpPop = 2;

    explicit AggregatorSet(const Config& cfg) : cfg_(cfg) {
        cfg_.validate();
        num_aggs_ = std::min(cfg_.num_aggregators, cfg_.max_threads);
        slots_ = std::make_unique<Slot[]>(cfg_.max_threads);
        aggs_ = std::make_unique<Agg[]>(num_aggs_);
        for (std::size_t a = 0; a < num_aggs_; ++a) aggs_[a].index = a;
        for (std::size_t t = 0; t < cfg_.max_threads; ++t) {
            aggs_[agg_of(t, num_aggs_)].tids.push_back(
                static_cast<std::uint32_t>(t));
        }
        if (cfg_.tuning != nullptr) {
            // Member lists for every possible active count: under active
            // count A, the freezer of aggregator a scans exactly the
            // threads that agg_of(t, A) assigns to a. Built once; 5 *
            // max_threads ids at most.
            tids_by_active_.resize(num_aggs_);
            for (std::size_t active = 1; active <= num_aggs_; ++active) {
                auto& per_agg = tids_by_active_[active - 1];
                per_agg.resize(num_aggs_);
                for (std::size_t t = 0; t < cfg_.max_threads; ++t) {
                    per_agg[agg_of(t, active)].push_back(
                        static_cast<std::uint32_t>(t));
                }
            }
        }
        for (std::size_t a = 0; a < num_aggs_; ++a) {
            Agg& agg = aggs_[a];
            // Scratch must hold the largest member list this aggregator can
            // ever scan — under adaptivity that is its list at active == 1
            // (aggregator 0 then owns every thread).
            std::size_t cap = agg.tids.size();
            for (const auto& per_agg : tids_by_active_) {
                cap = std::max(cap, per_agg[a].size());
            }
            agg.scratch_push = std::make_unique<std::uint32_t[]>(cap);
            agg.scratch_pop = std::make_unique<std::uint32_t[]>(cap);
            agg.scratch_vals = std::make_unique<V[]>(cap);
        }
    }

    std::size_t num_aggregators() const noexcept { return num_aggs_; }
    const Config& config() const noexcept { return cfg_; }

    // True when `tid` has no publication slot (more live threads than
    // Config::max_threads); callers must take their direct fallback path.
    bool is_overflow(std::size_t tid) const noexcept {
        return tid >= cfg_.max_threads;
    }

    // Run one operation through the batching protocol. `apply_pushes(agg,
    // vals, n)` must push n values onto the backing structure; `apply_pops(
    // agg, out, n)` must pop up to n values, returning how many it got.
    // Returns the popped value for kOpPop (nullopt: empty), nullopt for push.
    template <class ApplyPushes, class ApplyPops>
    std::optional<V> execute(std::uint32_t op, const V& in,
                             ApplyPushes&& apply_pushes,
                             ApplyPops&& apply_pops) {
        const bool adaptive = cfg_.tuning != nullptr;
        const std::size_t id = detail::tid();
        Slot& slot = slots_[id];
        Tune tune = current_tune();
        std::size_t recorded = agg_of(id, tune.active);
        slot.in = in;
        if (adaptive) {
            // Pin the op to one aggregator index before it becomes visible;
            // the pending release-store below publishes both together.
            slot.agg.store(static_cast<std::uint32_t>(recorded),
                           std::memory_order_relaxed);
        }
        slot.state.store(op, std::memory_order_release);
        Backoff backoff;
        for (;;) {
            std::uint32_t st = slot.state.load(std::memory_order_acquire);
            if (st >= kDonePushed) return consume(slot, st);
            // Static configurations never remap: `recorded` IS the home
            // aggregator for the thread's lifetime, so the mul/div mapping
            // is hoisted out of the attempt loop entirely.
            const std::size_t cur =
                adaptive ? agg_of(id, tune.active) : recorded;
            if (SEC_UNLIKELY(adaptive && cur != recorded)) {
                // The active count moved under us: re-point our record to
                // the current aggregator, under the OLD one's lock so no
                // freezer of the old index can be scanning concurrently —
                // and only if we are still unserved (a freezer that beat us
                // to the lock may have completed the op already).
                Agg& old_agg = aggs_[recorded];
                while (old_agg.lock.exchange(1, std::memory_order_acquire) !=
                       0) {
                    backoff.pause();
                }
                if (slot.state.load(std::memory_order_relaxed) <= kOpPop) {
                    slot.agg.store(static_cast<std::uint32_t>(cur),
                                   std::memory_order_relaxed);
                    recorded = cur;
                }
                old_agg.lock.store(0, std::memory_order_release);
                continue;  // state may have gone done meanwhile
            }
            Agg& agg = aggs_[cur];
            if (agg.lock.exchange(1, std::memory_order_acquire) == 0) {
                // We are the freezer. A previous freezer may have served us
                // between our load and the lock; only combine while our own
                // op is still open.
                if (slot.state.load(std::memory_order_relaxed) <= kOpPop) {
                    combine(agg, tune, apply_pushes, apply_pops);
                }
                agg.lock.store(0, std::memory_order_release);
                st = slot.state.load(std::memory_order_acquire);
                if (st >= kDonePushed) return consume(slot, st);
            }
            backoff.pause();
            // One relaxed TuningState load per attempt keeps the mapping
            // and the freeze parameters current while we wait. Static
            // configurations hoist it: their Tune is immutable, and the
            // extra null-check-plus-copy per attempt was measurable on the
            // uncontended path.
            if (adaptive) tune = current_tune();
        }
    }

    // One consistent snapshot: the counters are written with plain
    // load+store under each aggregator's freezer lock (see combine()), so a
    // lock-free reader could both under-count a mid-batch bump and tear
    // ACROSS counters — batched already bumped, eliminated not yet — and
    // Table 1 / the adaptive controller divide one counter by another.
    // Taking the lock per aggregator makes the four counters mutually
    // consistent and flushes every completed batch into the read (lock
    // hand-off: the freezer's release store pairs with our acquire
    // exchange). Held only for four relaxed loads, so a concurrent freezer
    // waits nanoseconds, and stats() never holds two locks at once.
    StatsSnapshot stats() const {
        StatsSnapshot s;
        for (std::size_t a = 0; a < num_aggs_; ++a) {
            Agg& agg = aggs_[a];
            Backoff backoff;
            while (agg.lock.exchange(1, std::memory_order_acquire) != 0) {
                backoff.pause();
            }
            s.batches += agg.batches.load(std::memory_order_relaxed);
            s.batched_ops += agg.batched.load(std::memory_order_relaxed);
            s.eliminated_ops += agg.eliminated.load(std::memory_order_relaxed);
            s.combined_ops += agg.combined.load(std::memory_order_relaxed);
            agg.lock.store(0, std::memory_order_release);
        }
        return s;
    }

private:
    // Slot states: 0 idle, kOpPush/kOpPop pending, >= kDonePushed terminal.
    static constexpr std::uint32_t kIdle = 0;
    static constexpr std::uint32_t kDonePushed = 3;
    static constexpr std::uint32_t kDoneValue = 4;
    static constexpr std::uint32_t kDoneEmpty = 5;

    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint32_t> state{kIdle};
        // Adaptive only: the aggregator index this op is pinned to. Written
        // by the owner before the pending release store (or re-pointed
        // under the old aggregator's lock), read by freezers after their
        // acquire load of `state`, so a freezer that sees the op sees its
        // pin.
        std::atomic<std::uint32_t> agg{0};
        V in{};   // owner-written before the pending release store
        V out{};  // freezer-written before the kDoneValue release store
    };

    struct alignas(kCacheLineSize) Agg {
        std::atomic<std::uint32_t> lock{0};
        std::size_t index = 0;
        std::vector<std::uint32_t> tids;  // members under the full active set
        // Scratch for the freezer; guarded by `lock`.
        std::unique_ptr<std::uint32_t[]> scratch_push;
        std::unique_ptr<std::uint32_t[]> scratch_pop;
        std::unique_ptr<V[]> scratch_vals;
        // Degree counters (Table 1); freezer-only writers.
        std::atomic<std::uint64_t> batches{0};
        std::atomic<std::uint64_t> batched{0};
        std::atomic<std::uint64_t> eliminated{0};
        std::atomic<std::uint64_t> combined{0};
    };

    // The knobs one operation attempt runs under. Static configurations
    // read the Config once; adaptive ones decode a single relaxed load of
    // the TuningState (clamped into [1, num_aggs_] so a controller bug can
    // never index out of range).
    struct Tune {
        std::size_t active;
        std::uint64_t backoff_ns;
    };

    Tune current_tune() const noexcept {
        if (cfg_.tuning == nullptr) {
            return {num_aggs_, cfg_.freezer_backoff_ns};
        }
        const TuningState::Tuning t = cfg_.tuning->load();
        const std::size_t active = std::min<std::size_t>(
            std::max<std::uint32_t>(t.active_aggregators, 1), num_aggs_);
        return {active, t.backoff_ns};
    }

    // Thread → aggregator under `active` aggregators (the active prefix).
    std::size_t agg_of(std::size_t tid, std::size_t active) const noexcept {
        if (cfg_.mapping == AggregatorMapping::kRoundRobin) {
            return tid % active;
        }
        return tid * active / cfg_.max_threads;  // contiguous blocks
    }

    std::optional<V> consume(Slot& slot, std::uint32_t st) {
        std::optional<V> r;
        if (st == kDoneValue) r = slot.out;
        slot.state.store(kIdle, std::memory_order_relaxed);
        return r;
    }

    template <class ApplyPushes, class ApplyPops>
    void combine(Agg& agg, const Tune& tune, ApplyPushes&& apply_pushes,
                 ApplyPops&& apply_pops) {
        const bool adaptive = cfg_.tuning != nullptr;
        const std::vector<std::uint32_t>& members =
            adaptive ? tids_by_active_[tune.active - 1][agg.index] : agg.tids;
        std::size_t np = 0, nq = 0;
        // Member lists are ascending, so every live slot sits in the prefix
        // below the tid high-water mark — stop there instead of walking all
        // max_threads entries. A stale (smaller) view can only miss a
        // brand-new thread, which re-drives its own aggregator until served.
        const std::size_t hwm = detail::tid_hwm();
        auto scan = [&] {
            // Rebuilding from scratch on the rescan is safe in both modes:
            // only a freezer holding THIS aggregator's lock may serve a
            // slot pinned (or statically assigned) to it, and an owner
            // needs the same lock to re-point its pin — pending slots stay
            // pending across the backoff.
            np = nq = 0;
            const std::size_t m = members.size();
            for (std::size_t j = 0; j < m; ++j) {
                const std::uint32_t t = members[j];
                if (t >= hwm) break;
                // Each Slot is its own cache line; touch the next member's
                // line while this one's acquire load resolves.
                if (j + 1 < m && members[j + 1] < hwm) {
                    prefetch(&slots_[members[j + 1]]);
                }
                Slot& s = slots_[t];
                const std::uint32_t st =
                    s.state.load(std::memory_order_acquire);
                if (st != kOpPush && st != kOpPop) continue;
                // Adaptive: serve only ops pinned to this aggregator; a
                // not-yet-migrated op from another view is its owner's job.
                if (adaptive &&
                    s.agg.load(std::memory_order_relaxed) != agg.index) {
                    continue;
                }
                if (st == kOpPush) {
                    agg.scratch_push[np++] = t;
                } else {
                    agg.scratch_pop[nq++] = t;
                }
            }
        };
        scan();
        if (tune.backoff_ns > 0 && np + nq > 1) {
            // Freezer backoff: let the batch fill before freezing it.
            detail::spin_for_ns(tune.backoff_ns);
            scan();
        }
        const std::size_t batch = np + nq;
        if (batch == 0) return;

        // Freeze: the snapshot is the batch. Eliminate push/pop pairs —
        // unless the owning container is FIFO-shaped, where pairing a pop
        // with a concurrent push is not linearizable (Config::eliminate).
        const std::size_t pairs =
            cfg_.eliminate ? std::min(np, nq) : std::size_t{0};
        for (std::size_t i = 0; i < pairs; ++i) {
            Slot& ps = slots_[agg.scratch_push[i]];
            Slot& qs = slots_[agg.scratch_pop[i]];
            qs.out = ps.in;
            qs.state.store(kDoneValue, std::memory_order_release);
            ps.state.store(kDonePushed, std::memory_order_release);
        }

        // Combine the leftover run (all pushes or all pops) in one shot.
        if (np > pairs) {
            const std::size_t n = np - pairs;
            for (std::size_t i = 0; i < n; ++i) {
                agg.scratch_vals[i] = slots_[agg.scratch_push[pairs + i]].in;
            }
            apply_pushes(agg.index, agg.scratch_vals.get(), n);
            for (std::size_t i = 0; i < n; ++i) {
                slots_[agg.scratch_push[pairs + i]].state.store(
                    kDonePushed, std::memory_order_release);
            }
        } else if (nq > pairs) {
            const std::size_t n = nq - pairs;
            const std::size_t got =
                apply_pops(agg.index, agg.scratch_vals.get(), n);
            for (std::size_t i = 0; i < got; ++i) {
                Slot& qs = slots_[agg.scratch_pop[pairs + i]];
                qs.out = agg.scratch_vals[i];
                qs.state.store(kDoneValue, std::memory_order_release);
            }
            for (std::size_t i = got; i < n; ++i) {
                slots_[agg.scratch_pop[pairs + i]].state.store(
                    kDoneEmpty, std::memory_order_release);
            }
        }

        if (cfg_.collect_stats) {
            // Plain load+store, not fetch_add: combine() runs under
            // agg.lock, so each counter has one writer at a time (the lock
            // hand-off orders successive freezers) and an atomic RMW per
            // counter per batch would be pure waste — 4 RMWs dominate the
            // per-op cost when batches are small. stats() takes the same
            // lock, so readers see whole batches only, never a mid-bump
            // tear.
            auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t x) {
                c.store(c.load(std::memory_order_relaxed) + x,
                        std::memory_order_relaxed);
            };
            bump(agg.batches, 1);
            bump(agg.batched, batch);
            bump(agg.eliminated, 2 * pairs);
            bump(agg.combined, batch - 2 * pairs);
        }
    }

    Config cfg_;
    std::size_t num_aggs_ = 1;
    std::unique_ptr<Slot[]> slots_;
    std::unique_ptr<Agg[]> aggs_;
    // [active - 1][agg] -> member tids; built only under Config::tuning.
    std::vector<std::vector<std::vector<std::uint32_t>>> tids_by_active_;
};

}  // namespace sec::detail
