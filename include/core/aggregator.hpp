// core/aggregator.hpp — the SEC batching engine (paper §3).
//
// An AggregatorSet partitions threads across K aggregators (contiguous
// blocks or round-robin). A thread publishes its operation in its own
// cache-line slot, then races for its aggregator's freezer lock. The winner
// — the freezer — optionally backs off for `freezer_backoff_ns` so the batch
// can grow (§3.1: "a short backoff before freezing B to increase the
// elimination degree"), then freezes the batch:
//   1. elimination — concurrent push/pop pairs exchange values directly,
//      two slot writes per pair, never touching the shared structure;
//   2. combining  — leftover same-direction operations are applied to the
//      backing structure in ONE batched call (a single CAS on a Treiber
//      spine for an arbitrarily long run of pushes or pops).
// Per-batch degree counters back the paper's Table 1.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/common.hpp"
#include "core/config.hpp"

namespace sec::detail {

template <class V>
class AggregatorSet {
public:
    static constexpr std::uint32_t kOpPush = 1;
    static constexpr std::uint32_t kOpPop = 2;

    explicit AggregatorSet(const Config& cfg) : cfg_(cfg) {
        cfg_.validate();
        num_aggs_ = std::min(cfg_.num_aggregators, cfg_.max_threads);
        slots_ = std::make_unique<Slot[]>(cfg_.max_threads);
        aggs_ = std::make_unique<Agg[]>(num_aggs_);
        for (std::size_t a = 0; a < num_aggs_; ++a) aggs_[a].index = a;
        for (std::size_t t = 0; t < cfg_.max_threads; ++t) {
            aggs_[agg_of(t)].tids.push_back(static_cast<std::uint32_t>(t));
        }
        for (std::size_t a = 0; a < num_aggs_; ++a) {
            Agg& agg = aggs_[a];
            agg.scratch_push =
                std::make_unique<std::uint32_t[]>(agg.tids.size());
            agg.scratch_pop =
                std::make_unique<std::uint32_t[]>(agg.tids.size());
            agg.scratch_vals = std::make_unique<V[]>(agg.tids.size());
        }
    }

    std::size_t num_aggregators() const noexcept { return num_aggs_; }
    const Config& config() const noexcept { return cfg_; }

    // True when `tid` has no publication slot (more live threads than
    // Config::max_threads); callers must take their direct fallback path.
    bool is_overflow(std::size_t tid) const noexcept {
        return tid >= cfg_.max_threads;
    }

    // Run one operation through the batching protocol. `apply_pushes(agg,
    // vals, n)` must push n values onto the backing structure; `apply_pops(
    // agg, out, n)` must pop up to n values, returning how many it got.
    // Returns the popped value for kOpPop (nullopt: empty), nullopt for push.
    template <class ApplyPushes, class ApplyPops>
    std::optional<V> execute(std::uint32_t op, const V& in,
                             ApplyPushes&& apply_pushes,
                             ApplyPops&& apply_pops) {
        const std::size_t id = detail::tid();
        Slot& slot = slots_[id];
        Agg& agg = aggs_[agg_of(id)];
        slot.in = in;
        slot.state.store(op, std::memory_order_release);
        Backoff backoff;
        for (;;) {
            std::uint32_t st = slot.state.load(std::memory_order_acquire);
            if (st >= kDonePushed) return consume(slot, st);
            if (agg.lock.exchange(1, std::memory_order_acquire) == 0) {
                // We are the freezer. A previous freezer may have served us
                // between our load and the lock; only combine if still open.
                if (slot.state.load(std::memory_order_relaxed) <= kOpPop) {
                    combine(agg, apply_pushes, apply_pops);
                }
                agg.lock.store(0, std::memory_order_release);
                st = slot.state.load(std::memory_order_acquire);
                return consume(slot, st);
            }
            backoff.pause();
        }
    }

    StatsSnapshot stats() const {
        StatsSnapshot s;
        for (std::size_t a = 0; a < num_aggs_; ++a) {
            const Agg& agg = aggs_[a];
            s.batches += agg.batches.load(std::memory_order_relaxed);
            s.batched_ops += agg.batched.load(std::memory_order_relaxed);
            s.eliminated_ops += agg.eliminated.load(std::memory_order_relaxed);
            s.combined_ops += agg.combined.load(std::memory_order_relaxed);
        }
        return s;
    }

private:
    // Slot states: 0 idle, kOpPush/kOpPop pending, >= kDonePushed terminal.
    static constexpr std::uint32_t kIdle = 0;
    static constexpr std::uint32_t kDonePushed = 3;
    static constexpr std::uint32_t kDoneValue = 4;
    static constexpr std::uint32_t kDoneEmpty = 5;

    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint32_t> state{kIdle};
        V in{};   // owner-written before the pending release store
        V out{};  // freezer-written before the kDoneValue release store
    };

    struct alignas(kCacheLineSize) Agg {
        std::atomic<std::uint32_t> lock{0};
        std::size_t index = 0;
        std::vector<std::uint32_t> tids;
        // Scratch for the freezer; guarded by `lock`.
        std::unique_ptr<std::uint32_t[]> scratch_push;
        std::unique_ptr<std::uint32_t[]> scratch_pop;
        std::unique_ptr<V[]> scratch_vals;
        // Degree counters (Table 1); freezer-only writers.
        std::atomic<std::uint64_t> batches{0};
        std::atomic<std::uint64_t> batched{0};
        std::atomic<std::uint64_t> eliminated{0};
        std::atomic<std::uint64_t> combined{0};
    };

    std::size_t agg_of(std::size_t tid) const noexcept {
        if (cfg_.mapping == AggregatorMapping::kRoundRobin) {
            return tid % num_aggs_;
        }
        return tid * num_aggs_ / cfg_.max_threads;  // contiguous blocks
    }

    std::optional<V> consume(Slot& slot, std::uint32_t st) {
        std::optional<V> r;
        if (st == kDoneValue) r = slot.out;
        slot.state.store(kIdle, std::memory_order_relaxed);
        return r;
    }

    template <class ApplyPushes, class ApplyPops>
    void combine(Agg& agg, ApplyPushes&& apply_pushes, ApplyPops&& apply_pops) {
        std::size_t np = 0, nq = 0;
        auto scan = [&] {
            np = nq = 0;
            for (std::uint32_t t : agg.tids) {
                const std::uint32_t s =
                    slots_[t].state.load(std::memory_order_acquire);
                if (s == kOpPush) {
                    agg.scratch_push[np++] = t;
                } else if (s == kOpPop) {
                    agg.scratch_pop[nq++] = t;
                }
            }
        };
        scan();
        if (cfg_.freezer_backoff_ns > 0 && np + nq > 1) {
            // Freezer backoff: let the batch fill before freezing it.
            detail::spin_for_ns(cfg_.freezer_backoff_ns);
            scan();
        }
        const std::size_t batch = np + nq;
        if (batch == 0) return;

        // Freeze: the snapshot is the batch. Eliminate push/pop pairs.
        const std::size_t pairs = std::min(np, nq);
        for (std::size_t i = 0; i < pairs; ++i) {
            Slot& ps = slots_[agg.scratch_push[i]];
            Slot& qs = slots_[agg.scratch_pop[i]];
            qs.out = ps.in;
            qs.state.store(kDoneValue, std::memory_order_release);
            ps.state.store(kDonePushed, std::memory_order_release);
        }

        // Combine the leftover run (all pushes or all pops) in one shot.
        if (np > pairs) {
            const std::size_t n = np - pairs;
            for (std::size_t i = 0; i < n; ++i) {
                agg.scratch_vals[i] = slots_[agg.scratch_push[pairs + i]].in;
            }
            apply_pushes(agg.index, agg.scratch_vals.get(), n);
            for (std::size_t i = 0; i < n; ++i) {
                slots_[agg.scratch_push[pairs + i]].state.store(
                    kDonePushed, std::memory_order_release);
            }
        } else if (nq > pairs) {
            const std::size_t n = nq - pairs;
            const std::size_t got =
                apply_pops(agg.index, agg.scratch_vals.get(), n);
            for (std::size_t i = 0; i < got; ++i) {
                Slot& qs = slots_[agg.scratch_pop[pairs + i]];
                qs.out = agg.scratch_vals[i];
                qs.state.store(kDoneValue, std::memory_order_release);
            }
            for (std::size_t i = got; i < n; ++i) {
                slots_[agg.scratch_pop[pairs + i]].state.store(
                    kDoneEmpty, std::memory_order_release);
            }
        }

        if (cfg_.collect_stats) {
            agg.batches.fetch_add(1, std::memory_order_relaxed);
            agg.batched.fetch_add(batch, std::memory_order_relaxed);
            agg.eliminated.fetch_add(2 * pairs, std::memory_order_relaxed);
            agg.combined.fetch_add(batch - 2 * pairs,
                                   std::memory_order_relaxed);
        }
    }

    Config cfg_;
    std::size_t num_aggs_ = 1;
    std::unique_ptr<Slot[]> slots_;
    std::unique_ptr<Agg[]> aggs_;
};

}  // namespace sec::detail
