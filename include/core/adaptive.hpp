// core/adaptive.hpp — runtime self-tuning for the SEC machinery
// (sec::adapt): a TuningState the hot path reads with ONE relaxed load, and
// an AdaptiveController that hill-climbs the two knobs the paper hand-tunes
// per workload (§6/Figure 4: the 2-4 aggregator sweet spot; §3.1: the
// freezer backoff window).
//
// The controller samples the per-batch degree counters (StatsSnapshot,
// core/config.hpp) over fixed epoch windows and publishes adjustments to
//   (a) the number of ACTIVE aggregators within [1, Config::num_aggregators]
//   (b) the freezer backoff window in nanoseconds
// through the TuningState. AggregatorSet (core/aggregator.hpp) re-reads the
// state once per operation attempt and tolerates the active set shrinking or
// growing mid-flight via its claim protocol. Modelled on flat-combining-
// style runtime adaptation (PAPERS.md: adaptive optimisation in runtime
// systems) — feedback-driven, no oracle, no stop-the-world reconfiguration.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "core/config.hpp"

namespace sec {

// The published tuning knobs, packed into ONE 64-bit atomic so a hot-path
// reader pays a single relaxed load per operation attempt.
//
// Memory-ordering contract: all accesses are relaxed. A reader may observe
// any previously published pair — arbitrarily stale, and different readers
// may observe different pairs at the same instant — but never a torn mix of
// two publications, because both knobs travel in the same word. Relaxed
// suffices because the knobs are performance hints, not synchronisation:
// every reachable (active, backoff) pair is semantically valid, and the
// claim protocol in AggregatorSet::combine keeps correctness independent of
// WHEN each thread observes a new pair. Nothing is ever ordered "after" a
// tuning change.
class TuningState {
public:
    struct Tuning {
        std::uint32_t active_aggregators;  // in [1, num_aggregators]
        std::uint64_t backoff_ns;          // freezer backoff window
    };

    TuningState(std::uint32_t active_aggregators,
                std::uint64_t backoff_ns) noexcept {
        store(active_aggregators, backoff_ns);
    }

    TuningState(const TuningState&) = delete;
    TuningState& operator=(const TuningState&) = delete;

    Tuning load() const noexcept {
        const std::uint64_t p = packed_.load(std::memory_order_relaxed);
        return {static_cast<std::uint32_t>(p >> kBackoffBits),
                p & kBackoffMask};
    }

    void store(std::uint32_t active_aggregators,
               std::uint64_t backoff_ns) noexcept {
        packed_.store(
            (static_cast<std::uint64_t>(active_aggregators) << kBackoffBits) |
                (backoff_ns & kBackoffMask),
            std::memory_order_relaxed);
    }

private:
    // 48 bits of backoff (≈ 78 hours in ns — far beyond any sane window),
    // 16 bits of active-aggregator count (kMaxAggregators is 5).
    static constexpr unsigned kBackoffBits = 48;
    static constexpr std::uint64_t kBackoffMask =
        (std::uint64_t{1} << kBackoffBits) - 1;

    std::atomic<std::uint64_t> packed_;
};

namespace adapt {

struct Options {
    // Epoch window between controller steps (background-thread mode).
    // Short on purpose: the active-set climb moves ±1 per epoch, so the
    // window start-up transient (default active count -> the workload's
    // right count) costs at most kMaxAggregators epochs.
    std::chrono::microseconds epoch{500};
    // Per-batch degree band for the active-set hill step: below the band an
    // aggregator is mostly freezing singleton batches (too many aggregators
    // for the offered concurrency — shrink); above it batches saturate
    // (spread the threads wider — grow).
    double degree_low = 1.5;
    double degree_high = 6.0;
    // Freezer-backoff ladder: 0 <-> quantum, then doubling up to the cap.
    std::uint64_t backoff_quantum_ns = 64;
    std::uint64_t max_backoff_ns = 4096;
    // A backoff probe is kept only when the objective IMPROVES by more
    // than this fraction; anything else (including a plateau) reverts it,
    // so under pure measurement noise the backoff oscillates around its
    // current value instead of random-walking away from it.
    double hysteresis = 0.10;
    // After a failed (reverted) probe, hold the backoff still for this many
    // epochs before probing again: without a gradient the knob should sit
    // at its operating point, not flap every epoch.
    std::uint32_t probe_cooldown_epochs = 8;
    // Once the published tuning has been unchanged for `stable_epochs`
    // consecutive steps, the background loop stretches its sleep by
    // `stable_sleep_multiplier` — a converged controller's wakeups are pure
    // interference (on few-core hosts they preempt a freezer mid-batch).
    // Any published change snaps the cadence back to `epoch`.
    std::uint32_t stable_epochs = 8;
    std::uint32_t stable_sleep_multiplier = 8;
    // Epochs with fewer batches than this are treated as idle and skipped.
    std::uint64_t min_epoch_batches = 4;
};

// The epoch/sample/step loop. Feedback signal: deltas of the degree
// counters the structure already maintains (Config::collect_stats must be
// on). Two coupled hill climbs per epoch:
//   active aggregators — ±1 step driven by the per-batch degree band
//     (degree = batched_ops / batches per epoch);
//   freezer backoff    — probe a ladder step in the current direction, keep
//     it while batched-ops-per-epoch improves, revert and flip on regress
//     (classic hill climbing with hysteresis).
// step() is deterministic in its input sequence, so tests drive it directly
// with synthetic snapshots; start() runs the same step() from a background
// thread every Options::epoch. step() is NOT thread-safe against itself —
// one caller at a time (the background thread, or the test).
class AdaptiveController {
public:
    using Sampler = std::function<StatsSnapshot()>;

    // `max_active` caps the active-set climb (the structure's configured
    // num_aggregators). The controller never publishes outside
    // [1, max_active] / [0, Options::max_backoff_ns].
    AdaptiveController(TuningState& state, Sampler sampler,
                      std::size_t max_active, Options options = {});
    ~AdaptiveController();  // stops the background thread, if running

    AdaptiveController(const AdaptiveController&) = delete;
    AdaptiveController& operator=(const AdaptiveController&) = delete;

    void start();  // spawn the epoch loop (idempotent while running)
    void stop();   // request exit and join (idempotent)

    // One controller step against a CUMULATIVE snapshot (the controller
    // keeps the previous sample and works on deltas). `window_scale` is the
    // length of the window this delta covers, in units of Options::epoch —
    // the background loop passes its stability-stretched sleep factor so
    // backoff-probe verdicts compare rates, not raw counts, across unequal
    // windows. The per-batch degree is a ratio and needs no scaling.
    void step(const StatsSnapshot& cumulative, double window_scale = 1.0);

    std::uint64_t epochs() const noexcept { return epochs_; }

private:
    void run();
    std::uint64_t step_backoff(std::uint64_t backoff, int direction) const;

    TuningState& state_;
    Sampler sampler_;
    std::uint32_t max_active_;
    Options opt_;

    StatsSnapshot last_{};      // previous cumulative sample
    std::uint64_t epochs_ = 0;  // completed steps

    // Backoff hill-climb state: when probing_, the last step moved backoff
    // away from probe_origin_ in direction_ and awaits its verdict.
    double prev_objective_ = -1.0;
    std::uint64_t probe_origin_ = 0;
    int direction_ = +1;
    bool probing_ = false;
    std::uint32_t cooldown_ = 0;  // epochs left before the next probe

    std::atomic<bool> stop_{false};
    std::thread thread_;
};

}  // namespace adapt
}  // namespace sec
