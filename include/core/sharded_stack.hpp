// core/sharded_stack.hpp — the sec::shard façade: K independent inner
// stacks behind one ConcurrentContainer surface (DESIGN.md §8).
//
// The paper's SEC scales until its aggregator/elimination layer saturates
// the one cache-line-contended anchor every thread shares (the spine top
// plus K freezer locks). ShardedStack adds the next scaling axis ABOVE the
// stack concept: it partitions load across `num_shards` independent inner
// stacks — any ConcurrentContainer, SEC in the registry's SEC@shardK variants —
// with
//
//   affinity   every thread owns a home shard. A thread pinned by an
//              exec::WorkerPool placement policy maps its L3 cache domain
//              to a shard (domain mod K), so all threads sharing an L3
//              share a home shard and the shard's combiner handoffs stay
//              inside one cache. Unpinned threads derive the home from
//              their small thread id (detail::tid()): ids are dense and
//              recycled, so the identity hash (id mod K) is both perfectly
//              balanced and stable for the thread's lifetime; a
//              multiplicative mix would only decorrelate adversarial id
//              patterns the thread registry never produces, at the price
//              of real imbalance on small thread counts.
//   stealing   pushes always hit the home shard. A pop that finds its home
//              shard empty probes the other shards round-robin from
//              home + 1, bounded by ShardConfig::steal_probes, before
//              reporting empty — so a consumer-heavy thread drains its
//              neighbours instead of spinning on EMPTY while values sit one
//              shard over. With the default bound (all other shards) a
//              quiescent empty verdict is exact: no concurrent pushers and
//              a full sweep of empty probes means every shard was empty.
//   isolation  each shard is cache-line padded and built by a caller
//              factory, so per-shard state — including each inner stack's
//              PRIVATE reclamation domain — never false-shares and never
//              funnels through a shared limbo list; drain and limbo
//              accounting stay per-shard by construction.
//
// What is given up: cross-shard LIFO. Each shard is individually
// linearizable and LIFO (a thread that is never stolen from sees exact
// stack order), but two values pushed by threads of different shards have
// no pop-order relation — the same relaxation every sharded/distributed
// queue makes. `secbench sharding` measures what that buys and reports the
// per-shard load imbalance and steal rate next to aggregate throughput.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/common.hpp"
#include "core/config.hpp"
#include "core/stack_concept.hpp"
#include "exec/placement.hpp"

namespace sec::shard {

// Shard-count ceiling: per-thread steal/ops counters are statically sized
// by this, and the registry's widest variant (SEC@shard8) sits at the top
// of it. Doubling it is a one-line change.
inline constexpr std::size_t kMaxShards = 8;

struct ShardConfig {
    // Number of independent inner stacks.
    //   unit: count · legal range: [1, kMaxShards] (validate() throws
    //   outside it). 1 degenerates to a pass-through façade.
    std::size_t num_shards = 4;
    // Bound on concurrently-live threads, sizing the per-thread counter
    // slots. Threads with ids at or past the bound still operate (affinity
    // needs no slot) but are excluded from the stats.
    //   unit: threads · legal range: [1, kMaxThreads]
    std::size_t max_threads = kMaxThreads;
    // Foreign shards a pop probes before reporting empty.
    //   unit: count · 0 means "all of them" (num_shards - 1), larger values
    //   are clamped to that; smaller values trade drain exactness for a
    //   cheaper empty verdict.
    std::size_t steal_probes = 0;

    void validate() const {
        if (num_shards < 1 || num_shards > kMaxShards) {
            throw std::invalid_argument(
                "sec::shard::ShardConfig: num_shards must be in [1, "
                "kMaxShards]");
        }
        if (max_threads < 1 || max_threads > kMaxThreads) {
            throw std::invalid_argument(
                "sec::shard::ShardConfig: max_threads must be in [1, "
                "kMaxThreads]");
        }
    }
};

// Aggregated per-shard load counters (`secbench sharding` reports these
// next to the Mops columns). All counts are cumulative over the structure's
// lifetime, summed over the per-thread slots at snapshot time.
struct ShardStats {
    std::vector<std::uint64_t> shard_ops;  // pushes + successful pops landed per shard
    std::uint64_t pushes = 0;          // total pushes
    std::uint64_t pops = 0;            // total successful pops
    std::uint64_t steals = 0;          // pops served by a foreign shard
    std::uint64_t steal_probes = 0;    // foreign-shard probe attempts
    std::uint64_t empty_pops = 0;      // pops empty after the probe sweep

    // Load imbalance: max over mean of shard_ops — 1.0 is perfectly
    // balanced, num_shards is everything-on-one-shard. 1.0 when idle.
    double imbalance() const noexcept;
    // Share of successful pops served by stealing, in percent.
    double steal_pct() const noexcept;
};

template <ConcurrentContainer Inner>
class ShardedStack {
public:
    using value_type = typename Inner::value_type;
    using inner_type = Inner;
    // The façade relaxes cross-shard order either way; per-shard order is
    // whatever the inner containers guarantee, so the shape is theirs.
    static constexpr ContainerShape kShape = Inner::kShape;

    // `make_inner(shard)` builds shard number `shard`'s inner stack. Each
    // call should produce a fully independent structure (own spine, own
    // reclamation domain) — sharing a domain across shards would re-create
    // the single limbo funnel sharding exists to remove.
    template <class Factory>
    ShardedStack(const ShardConfig& cfg, Factory&& make_inner) : cfg_(cfg) {
        cfg_.validate();
        shards_ = std::make_unique<Shard[]>(cfg_.num_shards);
        for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
            shards_[s].inner = make_inner(s);
            if (shards_[s].inner == nullptr) {
                throw std::invalid_argument(
                    "sec::shard::ShardedStack: factory returned null");
            }
        }
        counters_ = std::make_unique<Counters[]>(cfg_.max_threads);
        // cfg_ is immutable after validate(), so the steal-sweep bound is a
        // constant — computed once here instead of re-deriving (branch +
        // min) on every pop that finds its home shard empty.
        probe_bound_ = cfg_.steal_probes == 0
                           ? cfg_.num_shards - 1
                           : std::min(cfg_.steal_probes, cfg_.num_shards - 1);
    }

    ShardedStack(const ShardedStack&) = delete;
    ShardedStack& operator=(const ShardedStack&) = delete;

    std::size_t num_shards() const noexcept { return cfg_.num_shards; }
    const ShardConfig& config() const noexcept { return cfg_; }
    Inner& shard(std::size_t s) noexcept { return *shards_[s].inner; }
    const Inner& shard(std::size_t s) const noexcept {
        return *shards_[s].inner;
    }

    // Home shard of the calling thread — fixed for the thread's lifetime
    // (an exec::WorkerPool pin happens before the worker body runs, and an
    // unpinned thread's tid is stable). L3-domain mapping when pinned, tid
    // hash otherwise; see `affinity` in the header comment.
    std::size_t home_shard() const noexcept {
        const int l3 = exec::this_thread_placement().l3;
        if (l3 >= 0) return static_cast<std::size_t>(l3) % cfg_.num_shards;
        return detail::tid() % cfg_.num_shards;
    }

    bool push(const value_type& v) {
        const std::size_t id = detail::tid();
        const std::size_t home = home_shard();
        const bool ok = shards_[home].inner->push(v);
        if (ok && id < cfg_.max_threads) {
            bump(counters_[id].push_by_shard[home]);
        }
        return ok;
    }

    std::optional<value_type> pop() {
        const std::size_t id = detail::tid();
        const std::size_t home = home_shard();
        Counters* c = id < cfg_.max_threads ? &counters_[id] : nullptr;
        // The sweep exists for the imbalanced minority of pops; the home
        // shard serving is the design's steady state (affinity).
        if (auto v = shards_[home].inner->pop(); SEC_LIKELY(v.has_value())) {
            if (SEC_LIKELY(c != nullptr)) bump(c->pop_by_shard[home]);
            return v;
        }
        // Home is empty: bounded round-robin steal sweep over the others.
        // Wrap by increment, not modulo — a div per probe is pure overhead
        // on a path that already eats a cross-shard cache miss — and lean
        // on the next victim's top-of-spine line while probing this one.
        std::size_t s = home;
        for (std::size_t i = 1; i <= probe_bound_; ++i) {
            if (++s == cfg_.num_shards) s = 0;
            if (i < probe_bound_) {
                const std::size_t peek_next =
                    s + 1 == cfg_.num_shards ? 0 : s + 1;
                prefetch(shards_[peek_next].inner.get());
            }
            if (c != nullptr) bump(c->probes);
            if (auto v = shards_[s].inner->pop()) {
                if (c != nullptr) {
                    bump(c->pop_by_shard[s]);
                    bump(c->steals);
                }
                return v;
            }
        }
        if (c != nullptr) bump(c->empties);
        return std::nullopt;
    }

    std::optional<value_type> peek() const {
        const std::size_t home = home_shard();
        if (auto v = shards_[home].inner->peek()) return v;
        std::size_t s = home;
        for (std::size_t i = 1; i <= probe_bound_; ++i) {
            if (++s == cfg_.num_shards) s = 0;
            if (auto v = shards_[s].inner->peek()) return v;
        }
        return std::nullopt;
    }

    // Reclamation hooks (workload/runner.hpp). A stealing thread may have
    // touched ANY shard's domain, so both forward to every shard.
    void quiesce() {
        if constexpr (requires(Inner& s) { s.quiesce(); }) {
            for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
                shards_[s].inner->quiesce();
            }
        }
    }
    void reclaim_offline() {
        if constexpr (requires(Inner& s) { s.reclaim_offline(); }) {
            for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
                shards_[s].inner->reclaim_offline();
            }
        }
    }

    // Degree counters summed across shards, when the inner type keeps them
    // (SEC with Config::collect_stats).
    StatsSnapshot stats() const
        requires requires(const Inner& s) {
            { s.stats() } -> std::same_as<StatsSnapshot>;
        }
    {
        StatsSnapshot total;
        for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
            const StatsSnapshot one = shards_[s].inner->stats();
            total.batches += one.batches;
            total.batched_ops += one.batched_ops;
            total.eliminated_ops += one.eliminated_ops;
            total.combined_ops += one.combined_ops;
        }
        return total;
    }

    // Per-shard load distribution, summed over the per-thread slots.
    // Relaxed reads: concurrent callers see a momentarily stale but untorn
    // count; the scenario reads after the workers joined.
    ShardStats shard_stats() const {
        ShardStats out;
        out.shard_ops.assign(cfg_.num_shards, 0);
        const std::size_t hwm =
            std::min(detail::tid_hwm(), cfg_.max_threads);
        for (std::size_t t = 0; t < hwm; ++t) {
            const Counters& c = counters_[t];
            for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
                const std::uint64_t pu =
                    c.push_by_shard[s].load(std::memory_order_relaxed);
                const std::uint64_t po =
                    c.pop_by_shard[s].load(std::memory_order_relaxed);
                out.shard_ops[s] += pu + po;
                out.pushes += pu;
                out.pops += po;
            }
            out.steals += c.steals.load(std::memory_order_relaxed);
            out.steal_probes += c.probes.load(std::memory_order_relaxed);
            out.empty_pops += c.empties.load(std::memory_order_relaxed);
        }
        return out;
    }

    // Shape-neutral aliases (container_concept.hpp).
    bool put(const value_type& v) { return push(v); }
    std::optional<value_type> take() { return pop(); }

private:
    struct alignas(kCacheLineSize) Shard {
        std::unique_ptr<Inner> inner;
    };

    // Owner-written load counters, one cache-aligned slot per thread id.
    // Plain load+store on relaxed atomics: a slot has exactly one live
    // writer (ids are recycled only after the owning thread exits), and
    // readers (shard_stats) tolerate staleness — the same single-writer
    // idiom as the aggregator degree counters.
    struct alignas(kCacheLineSize) Counters {
        std::atomic<std::uint64_t> push_by_shard[kMaxShards]{};
        std::atomic<std::uint64_t> pop_by_shard[kMaxShards]{};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> probes{0};
        std::atomic<std::uint64_t> empties{0};
    };

    static void bump(std::atomic<std::uint64_t>& c) noexcept {
        c.store(c.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    ShardConfig cfg_;
    std::size_t probe_bound_ = 0;  // foreign shards per sweep, fixed in ctor
    std::unique_ptr<Shard[]> shards_;
    std::unique_ptr<Counters[]> counters_;
};

}  // namespace sec::shard
