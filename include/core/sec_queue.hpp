// core/sec_queue.hpp — the SEC queue: the same K-aggregator batching engine
// as SecStack (core/aggregator.hpp) applied to the FIFO spine
// (core/fifo_spine.hpp).
//
// Nothing about batched publication + single-atomic application is
// LIFO-specific: a run of n enqueues links a private chain behind the tail
// with ONE exchange, and a combiner drains a run of n dequeues with ONE
// head CAS, so the spine sees at most K concurrent writers per end instead
// of one per thread. What does NOT carry over is elimination — handing a
// dequeuer the value of a *concurrent* enqueue would skip every older
// element, which is only linearizable for LIFO — so the aggregators are
// constructed with Config::eliminate forced off and every batch is applied
// to the spine (stats therefore report eliminated_ops == 0 by
// construction). Per-producer FIFO still holds across batches: a producer
// owns one publication slot, so it has at most one enqueue per batch, and
// its k-th enqueue's tail exchange lands before its (k+1)-th is even
// published. See DESIGN.md §12 and the order oracle in
// tests/container_conformance_test.cpp.
//
// Node reclamation is pluggable (sec::reclaim); EBR remains the default.
#pragma once

#include <atomic>
#include <optional>

#include "core/aggregator.hpp"
#include "core/common.hpp"
#include "core/config.hpp"
#include "core/container_concept.hpp"
#include "core/fifo_spine.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec {

template <class V, reclaim::Reclaimer R = reclaim::EpochDomain>
class SecQueue {
public:
    using value_type = V;
    using reclaimer_type = R;
    static constexpr ContainerShape kShape = ContainerShape::fifo;

    explicit SecQueue(Config cfg) : aggs_(fifo_config(cfg)) {
        detail::fifo_init(head_, tail_);
    }
    SecQueue(Config cfg, R& domain)
        : aggs_(fifo_config(cfg)), domain_(domain) {
        detail::fifo_init(head_, tail_);
    }

    ~SecQueue() { detail::fifo_destroy(head_, tail_); }

    SecQueue(const SecQueue&) = delete;
    SecQueue& operator=(const SecQueue&) = delete;

    bool put(const V& v) {
        if (SEC_UNLIKELY(aggs_.is_overflow(detail::tid()))) {
            detail::fifo_put_chain(tail_, &v, 1);
            return true;
        }
        (void)aggs_.execute(
            Aggs::kOpPush, v,
            [this](std::size_t, const V* vals, std::size_t n) {
                detail::fifo_put_chain(tail_, vals, n);
            },
            [this](std::size_t, V* out, std::size_t n) {
                typename R::Guard guard(*domain_);
                return detail::fifo_take_chain(head_, guard, out, n);
            });
        return true;
    }

    std::optional<V> take() {
        if (SEC_UNLIKELY(aggs_.is_overflow(detail::tid()))) {
            typename R::Guard guard(*domain_);
            V out;
            return detail::fifo_take_chain(head_, guard, &out, 1) == 1
                       ? std::optional<V>(out)
                       : std::nullopt;
        }
        return aggs_.execute(
            Aggs::kOpPop, V{},
            [this](std::size_t, const V* vals, std::size_t n) {
                detail::fifo_put_chain(tail_, vals, n);
            },
            [this](std::size_t, V* out, std::size_t n) {
                typename R::Guard guard(*domain_);
                return detail::fifo_take_chain(head_, guard, out, n);
            });
    }

    // Front element (what take() would return).
    std::optional<V> peek() const {
        typename R::Guard guard(*domain_);
        return detail::fifo_peek(head_, guard);
    }

    // Harness aliases (container_concept.hpp) and queue-idiomatic names.
    bool push(const V& v) { return put(v); }
    std::optional<V> pop() { return take(); }
    bool enqueue(const V& v) { return put(v); }
    std::optional<V> dequeue() { return take(); }

    // Reclamation hooks the workload runner drives (see runner.hpp).
    void quiesce() { domain_->quiesce(); }
    void reclaim_offline() { domain_->offline(); }

    // Degree counters (Table 1); meaningful when Config::collect_stats.
    // eliminated_ops is structurally zero — see the header comment.
    StatsSnapshot stats() const { return aggs_.stats(); }

    const Config& config() const noexcept { return aggs_.config(); }

private:
    using Aggs = detail::AggregatorSet<V>;

    // FIFO makes elimination illegal regardless of what the caller's
    // Config says; force it off so no sweep or hand-built Config can
    // accidentally construct a non-linearizable queue.
    static Config fifo_config(Config cfg) {
        cfg.eliminate = false;
        return cfg;
    }

    Aggs aggs_;
    reclaim::DomainRef<R> domain_;
    alignas(kCacheLineSize) std::atomic<detail::QueueNode<V>*> head_{nullptr};
    alignas(kCacheLineSize) std::atomic<detail::QueueNode<V>*> tail_{nullptr};
};

}  // namespace sec
