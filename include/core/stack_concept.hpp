// core/stack_concept.hpp — AnyStack, the type-erased container handle the
// registry and the secbench scenario driver work in terms of. The static
// contract it erases is the shape-parameterized ConcurrentContainer concept
// (core/container_concept.hpp); the class keeps its historical name because
// every call site spells operations push/pop — the canonical put/take are
// forwarded to the same virtuals, and `shape()` carries the erased type's
// kShape trait to runtime consumers (secbench --list, the net STATS frame).
//
// AnyStack keeps virtual dispatch OFF the measured hot path: the Model
// interface erases whole *phases* (prefill / timed mixed loop / fixed-op
// loop), not individual operations. A worker thread crosses the virtual
// boundary once per phase and then runs a loop that was instantiated against
// the concrete stack type (see the phase_* templates in workload/runner.hpp),
// so push/pop/peek inline exactly as they do in the statically-typed
// run_throughput path. The per-op virtuals below exist for tests and
// low-rate use, never for measurement loops.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/config.hpp"
#include "core/container_concept.hpp"
#include "core/op_mix.hpp"

namespace sec {

namespace bench {
class LatencyHistogram;  // workload/histogram.hpp
}

// Per-worker inputs of one phase. Each phase seeds its own PRNG so phases
// are independently reproducible and reorderable across scenarios.
struct PhaseArgs {
    std::uint64_t seed = 1;
    std::size_t value_range = std::size_t{1} << 20;
    OpMix mix = kUpdateHeavy;
};

// Per-lane inputs of the open-loop service phases (workload/service.hpp).
// A producer lane replays `schedule` — ns offsets from `epoch`, ascending —
// pushing each request stamped with its *scheduled* arrival offset as the
// value; a consumer charges completion minus scheduled arrival, so a
// request that sat behind a stalled combiner (or a producer that fell
// behind its own schedule) is billed its full queueing delay, not just the
// pop in flight. That accounting is what makes the harness free of
// coordinated omission.
struct ServeProduceArgs {
    const std::uint64_t* schedule = nullptr;  // sorted ns offsets from epoch
    std::size_t count = 0;
    std::chrono::steady_clock::time_point epoch{};
};

struct ServeConsumeArgs {
    std::chrono::steady_clock::time_point epoch{};
    // Deterministic fault injection (tests): one spin-stall of `stall_ns`
    // after this consumer's `stall_after_op`-th successful pop. stall_ns ==
    // 0 disables. The stall sits OUTSIDE the timed pop, so it shows up in
    // the arrival-to-completion (sojourn) histogram of every backed-up
    // request but never in the per-op service-time histogram — the
    // coordinated-omission proof in tests/service_test.cpp rests on that.
    std::uint64_t stall_after_op = 0;
    std::uint64_t stall_ns = 0;
};

class AnyStack {
public:
    // Every erased stack trades in 64-bit values (what the harness pushes).
    using value_type = std::uint64_t;

    class Model {
    public:
        virtual ~Model() = default;

        // Per-op entry points (tests / setup / teardown — not measurement).
        virtual bool push(value_type v) = 0;
        virtual std::optional<value_type> pop() = 0;
        virtual std::optional<value_type> peek() = 0;

        // The erased type's kShape trait (ContainerShape); drives the net
        // STATS frame and secbench shape checks.
        virtual ContainerShape shape() const = 0;

        // Phase entry points: one virtual call, then a concrete-typed loop.
        virtual void prefill(std::size_t count, const PhaseArgs& args) = 0;
        virtual std::uint64_t mixed_until(const std::atomic<bool>& stop,
                                          const PhaseArgs& args) = 0;
        virtual std::uint64_t mixed_ops(std::uint64_t count,
                                        const PhaseArgs& args) = 0;
        virtual std::uint64_t timed_until(const std::atomic<bool>& stop,
                                          const PhaseArgs& args,
                                          bench::LatencyHistogram& hist) = 0;
        // Open-loop service lanes (workload/service.hpp): one virtual call
        // per lane, then the concrete-typed produce/consume loop.
        virtual std::uint64_t serve_produce(const ServeProduceArgs& args) = 0;
        virtual std::uint64_t serve_consume(const std::atomic<bool>& stop,
                                            const ServeConsumeArgs& args,
                                            bench::LatencyHistogram& sojourn,
                                            bench::LatencyHistogram& service) = 0;

        // Degree counters when the concrete type maintains them (SecStack,
        // ElimPool with Config::collect_stats).
        virtual bool has_stats() const { return false; }
        virtual StatsSnapshot stats() const { return {}; }
    };

    AnyStack() = default;
    explicit AnyStack(std::unique_ptr<Model> model) : model_(std::move(model)) {}

    explicit operator bool() const noexcept { return model_ != nullptr; }

    bool push(value_type v) { return model_->push(v); }
    std::optional<value_type> pop() { return model_->pop(); }
    std::optional<value_type> peek() { return model_->peek(); }

    // Shape-neutral aliases (same virtuals; see container_concept.hpp).
    bool put(value_type v) { return model_->push(v); }
    std::optional<value_type> take() { return model_->pop(); }
    ContainerShape shape() const { return model_->shape(); }

    void prefill(std::size_t count, const PhaseArgs& args) {
        model_->prefill(count, args);
    }
    std::uint64_t mixed_until(const std::atomic<bool>& stop,
                              const PhaseArgs& args) {
        return model_->mixed_until(stop, args);
    }
    std::uint64_t mixed_ops(std::uint64_t count, const PhaseArgs& args) {
        return model_->mixed_ops(count, args);
    }
    std::uint64_t timed_until(const std::atomic<bool>& stop,
                              const PhaseArgs& args,
                              bench::LatencyHistogram& hist) {
        return model_->timed_until(stop, args, hist);
    }
    std::uint64_t serve_produce(const ServeProduceArgs& args) {
        return model_->serve_produce(args);
    }
    std::uint64_t serve_consume(const std::atomic<bool>& stop,
                                const ServeConsumeArgs& args,
                                bench::LatencyHistogram& sojourn,
                                bench::LatencyHistogram& service) {
        return model_->serve_consume(stop, args, sojourn, service);
    }

    bool has_stats() const { return model_->has_stats(); }
    StatsSnapshot stats() const { return model_->stats(); }

private:
    std::unique_ptr<Model> model_;
};

}  // namespace sec
