// net/server.hpp — SecServer, the socket front-end that turns a
// registry-built stack into a servable system (DESIGN.md §11).
//
// One event-loop thread owns every socket and the stack handle. Each
// EventBackend::wait() batch is drained completely — every readable
// connection read to EAGAIN, every complete frame decoded and applied to
// the stack, every response appended to the connection's write buffer —
// before the next wait. The readiness batch therefore becomes the unit of
// work exactly the way an aggregator batch is in the paper: the kernel
// crossing (epoll_wait / io_uring_enter) is amortized over every request
// it surfaced, and responses flush as one writev-sized burst per
// connection per batch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/stack_concept.hpp"
#include "exec/worker_pool.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace sec::net {

struct ServerConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
    std::string backend{};   // "" = "epoll"; see make_event_backend
    // Event-loop placement (`secserve --pin`): the loop thread runs as a
    // single-worker exec pool, so it takes the first cpu of the policy's
    // plan. kNone = unpinned, the historical behaviour.
    topo::PinPolicy pin = topo::PinPolicy::kNone;
};

// Event-loop-thread counters, readable from any thread while the server
// runs (relaxed atomics — monotonic counters, no ordering contract).
struct ServerStats {
    std::uint64_t accepted = 0;   // connections accepted over the lifetime
    std::uint64_t requests = 0;   // frames decoded and applied
    std::uint64_t pushes = 0;     // kPushReq handled
    std::uint64_t pops = 0;       // kPopReq handled, value returned
    std::uint64_t empties = 0;    // kPopReq handled, stack empty
    std::uint64_t batches = 0;    // wait() batches that carried work
    std::uint64_t max_batch = 0;  // most requests drained in one batch
};

class SecServer {
public:
    // Takes ownership of the stack; every request of every connection is
    // applied to it from the single event-loop thread.
    SecServer(AnyStack stack, ServerConfig cfg);
    ~SecServer();

    SecServer(const SecServer&) = delete;
    SecServer& operator=(const SecServer&) = delete;

    // Bind + listen + spawn the loop thread. False (with a one-line reason)
    // on bad backend names, bind failures, or backend setup failures.
    bool start(std::string* err);
    // Graceful shutdown: wake the loop, drain nothing further, close every
    // socket, join. Idempotent.
    void stop();

    // The bound port (resolves an ephemeral request); valid after start().
    std::uint16_t port() const noexcept { return bound_port_; }
    std::string_view backend_name() const noexcept;

    ServerStats stats() const;

private:
    struct Conn {
        std::vector<std::uint8_t> in;
        std::vector<std::uint8_t> out;
        std::size_t out_off = 0;     // bytes of `out` already written
        bool want_write = false;     // registered with write interest
    };

    void loop();
    void accept_ready();
    // Returns false when the connection must be closed (EOF / error /
    // protocol violation).
    bool conn_readable(int fd, Conn& conn, std::uint64_t& batch_requests);
    bool flush(int fd, Conn& conn);
    void apply(const Message& req, Conn& conn);
    void close_conn(int fd);

    AnyStack stack_;
    ServerConfig cfg_;
    std::unique_ptr<EventBackend> backend_;
    int listen_fd_ = -1;
    int wake_fd_ = -1;  // eventfd: stop() pokes the blocked wait()
    std::uint16_t bound_port_ = 0;
    std::unordered_map<int, Conn> conns_;
    // Single-worker pool instead of a bare std::thread: the loop thread is
    // tid-registered and pinnable like every other worker (prereq for the
    // loop-per-shard follow-on).
    std::unique_ptr<exec::WorkerPool> pool_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_{false};

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> pushes_{0};
    std::atomic<std::uint64_t> pops_{0};
    std::atomic<std::uint64_t> empties_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace sec::net
