// net/event_loop.hpp — the portable event-backend abstraction behind the
// sec::net server (DESIGN.md §11).
//
// The server's contract with a backend is deliberately batch-shaped: wait()
// returns a BATCH of ready file descriptors, and the server drains every
// decoded request of that batch into the stack before the next wait. That
// mirrors the paper's aggregator design one layer up — epoll amortizes the
// kernel crossing over many ready sockets exactly as the SEC aggregator
// amortizes the spine CAS over many queued operations — so a readiness (or
// io_uring completion) batch maps naturally onto an aggregator batch.
//
// Backends:
//   epoll    level-triggered epoll(7); always built, no dependencies.
//   iouring  batched-submission io_uring poll ring (raw syscalls, no
//            liburing); built only under -DSEC_IOURING=ON. One
//            io_uring_enter submits every re-arm of the batch and reaps the
//            next completion batch — submission batching on top of
//            completion batching.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sec::net {

// One ready descriptor of a wait() batch. `error` covers hangup and error
// conditions; the server treats it as "read until EOF, then drop".
struct IoEvent {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
};

class EventBackend {
public:
    virtual ~EventBackend() = default;

    // Register `fd` for readiness notification. want_write adds write
    // interest on top of the always-on read interest.
    virtual bool add(int fd, bool want_write, std::string* err) = 0;
    // Change the write-interest of an already-added fd.
    virtual bool modify(int fd, bool want_write) = 0;
    virtual void remove(int fd) = 0;

    // Block up to timeout_ms for the next readiness batch; returns the
    // number of events written to out[0, cap), 0 on timeout, -1 on a
    // non-retryable backend failure.
    virtual int wait(IoEvent* out, std::size_t cap, int timeout_ms) = 0;

    virtual std::string_view name() const noexcept = 0;
};

// A backend the CLI / environment can name, whether or not this build
// carries it — `available == false` means the name is valid but needs a
// different configure (-DSEC_IOURING=ON).
struct BackendInfo {
    std::string_view name;
    std::string_view description;
    bool available = false;
};

// Every nameable backend, in preference order (epoll first).
std::vector<BackendInfo> backend_infos();

// Name validity (strict env/CLI parsing) vs. availability in this build.
bool backend_known(std::string_view name) noexcept;
bool backend_available(std::string_view name) noexcept;

// Construct a backend by name ("" = "epoll"). Returns nullptr with a
// one-line reason in *err for unknown names, unavailable builds, or a
// failed runtime setup (e.g. io_uring_setup rejected by the kernel).
std::unique_ptr<EventBackend> make_event_backend(std::string_view name,
                                                 std::string* err);

namespace detail {
// Defined in src/net_epoll.cpp / src/net_iouring.cpp.
std::unique_ptr<EventBackend> make_epoll_backend(std::string* err);
#if defined(SEC_IOURING)
std::unique_ptr<EventBackend> make_iouring_backend(std::string* err);
#endif
}  // namespace detail

}  // namespace sec::net
