// net/client.hpp — the loopback client driver (DESIGN.md §11): replays the
// open-loop arrival schedules of workload/service.hpp over N real TCP
// connections against a SecServer (in-process or a separate secserve).
//
// Accounting contract, identical to the in-process service lanes: every
// request's identity is its schedule index (echoed by the server in the
// frame tag), and a reply is charged completion minus *scheduled* arrival
// (sojourn) — a reply delayed behind a backed-up connection is billed its
// full queueing delay even if the sender fell behind its own schedule. RTT
// (reply minus actual send) is recorded side by side as the closed-loop
// contrast, exactly like the sojourn/service histogram pair.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "workload/histogram.hpp"
#include "workload/service.hpp"

namespace sec::net {

struct LoopbackClientConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    unsigned connections = 2;
    // Offered load across ALL connections, Kops/s (the --load unit).
    double load_kops = 20.0;
    std::chrono::milliseconds duration{200};
    bench::ArrivalKind arrival = bench::ArrivalKind::kPoisson;
    std::chrono::milliseconds burst_period{10};
    double burst_duty = 0.25;
    unsigned push_pct = 50;  // % of requests that are pushes (rest pops)
    std::uint64_t seed = 0;
    // How long after the last send to wait for outstanding replies before
    // declaring them lost.
    std::chrono::milliseconds drain_grace{5000};
};

struct LoopbackClientResult {
    bool ok = false;          // false: setup failed, see `error`
    std::string error;
    std::uint64_t sent = 0;
    std::uint64_t replies = 0;
    std::uint64_t lost = 0;   // sent - replies once the grace expired
    std::uint64_t pushes = 0;
    std::uint64_t pop_hits = 0;
    std::uint64_t pop_empties = 0;
    double offered_kops = 0;  // from the generated schedules
    double achieved_kops = 0; // replies / window
    double window_s = 0;      // epoch -> last reply
    bench::LatencyHistogram sojourn;  // reply - scheduled arrival
    bench::LatencyHistogram rtt;      // reply - actual send
};

// Connect cfg.connections sockets, replay one arrival schedule per
// connection (sender thread paces, receiver thread charges replies), and
// merge the per-connection histograms. Blocking; returns when every reply
// arrived or the drain grace expired.
LoopbackClientResult run_loopback_client(const LoopbackClientConfig& cfg);

}  // namespace sec::net
