// net/protocol.hpp — the sec::net wire protocol (DESIGN.md §11).
//
// Length-prefixed binary frames over a byte stream:
//
//   [u32 payload_len][payload]
//   payload = [u8 type][u64 tag][type-specific fields]
//
// All integers little-endian, encoded/decoded bytewise so the codec is
// endian- and alignment-portable with no third-party dependency. The tag is
// an opaque client token echoed verbatim in the response — the loopback
// driver stamps it with the request's schedule index so a reply can be
// charged against its *scheduled* arrival (the same coordinated-omission-
// free contract as the in-process service lanes, workload/runner.hpp).
//
// Message sizes are exact per type and tiny by construction; a frame whose
// length field exceeds kMaxPayload, is zero, or disagrees with its type's
// wire size is a protocol error, not a "read more" state — a desynchronized
// or hostile peer must be dropped, never re-synchronized by guesswork.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sec::net {

enum class MsgType : std::uint8_t {
    kPushReq = 1,   // + u64 value
    kPopReq = 2,    //   (no fields)
    kStatsReq = 3,  //   (no fields)
    kPushResp = 4,  // + u8 ok
    kPopResp = 5,   // + u8 has_value, u64 value
    kStatsResp = 6, // + u64 pushes, pops, empties, batches + u8 shape
};

// Server-side counters a kStatsResp carries (a subset of NetServerStats,
// the ones a remote client can act on).
struct WireStats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;    // successful pops
    std::uint64_t empties = 0; // pops that found the container empty
    std::uint64_t batches = 0; // readiness/completion batches drained
    // ContainerShape of the served structure as its wire byte (0 lifo,
    // 1 fifo, 2 unordered) — a client learns whether PUSH/POP mean
    // stack push/pop or enqueue/dequeue without out-of-band knowledge.
    std::uint8_t shape = 0;
};

// One decoded (or to-be-encoded) message. Fields beyond `type`/`tag` are
// meaningful only for the types that carry them (see MsgType comments).
struct Message {
    MsgType type = MsgType::kPopReq;
    std::uint64_t tag = 0;
    std::uint64_t value = 0;  // kPushReq payload / kPopResp result
    bool ok = true;           // kPushResp success / kPopResp has_value
    WireStats stats{};        // kStatsResp
};

// Hard cap on a frame's payload: the largest legal message (kStatsResp) is
// 42 bytes, so anything bigger is garbage regardless of future growth slack.
inline constexpr std::size_t kMaxPayload = 64;
// Length prefix bytes preceding every payload.
inline constexpr std::size_t kHeaderBytes = 4;

// Exact payload size of a message type; 0 for an unknown type byte.
std::size_t payload_size(MsgType type) noexcept;

// Append one framed message to `out` (length prefix + payload).
void encode(const Message& msg, std::vector<std::uint8_t>& out);

enum class DecodeStatus {
    kOk,        // one message decoded; `consumed` bytes eaten
    kNeedMore,  // the buffer holds only a frame prefix; feed more bytes
    kError,     // malformed frame (oversized / zero / type-size mismatch /
                // unknown type) — the connection must be dropped
};

struct DecodeResult {
    DecodeStatus status = DecodeStatus::kNeedMore;
    std::size_t consumed = 0;  // valid only when status == kOk
};

// Decode the first complete frame of data[0, len). Never consumes bytes on
// kNeedMore or kError, so callers can retry with a longer buffer or close.
DecodeResult decode(const std::uint8_t* data, std::size_t len, Message& out);

}  // namespace sec::net
