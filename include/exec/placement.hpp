// exec/placement.hpp — the per-thread placement note the exec layer leaves
// for lower layers. A WorkerPool worker that was successfully pinned
// publishes where it runs ({cpu, package, core, L3 domain}); anything
// beneath the pool — ShardedStack's home-shard map today — can read it
// without depending on the pool or the topology parser. Deliberately tiny:
// core/ headers include this, so it must pull in nothing.
#pragma once

namespace sec::exec {

// Where the calling thread is pinned. All fields are -1 for an unpinned
// thread (no policy, pin refused by the kernel, or a thread the exec layer
// never saw) — consumers must treat -1 as "fall back to tid hashing".
struct ThreadPlacement {
    int cpu = -1;      // OS logical cpu id
    int package = -1;  // physical package (socket) index, dense
    int core = -1;     // physical core index, dense across the machine
    int l3 = -1;       // L3 cache domain index, dense

    bool pinned() const noexcept { return cpu >= 0; }
};

// The calling thread's placement. Set by sec::exec::WorkerPool when a pin
// policy is active and the affinity call succeeded; default elsewhere.
const ThreadPlacement& this_thread_placement() noexcept;

namespace detail {
// Mutable access for the worker preamble (exec_worker_pool.cpp only).
ThreadPlacement& mutable_thread_placement() noexcept;
}  // namespace detail

}  // namespace sec::exec
