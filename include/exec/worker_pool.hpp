// exec/worker_pool.hpp — sec::exec::WorkerPool, the one place the workload,
// net, and test layers construct worker threads.
//
// Before this layer existed, fifteen files hand-rolled the same lifecycle:
// spawn std::thread, register a tid, announce QSBR quiescence in the loop,
// go offline at the phase boundary, join. Each copy drifted independently,
// and none of them knew which cpu the worker landed on — so placement
// claims ("SEC wins when workers share an L3") were unverifiable. The pool
// owns the whole preamble:
//
//   * tid registration — the worker touches sec::detail::tid() before the
//     body runs, so registration cost never lands inside a measured span
//   * affinity — a topo::PinPolicy plus the machine's Topology turns into
//     a per-worker cpu plan; pinning is best-effort (containers may refuse
//     sched_setaffinity) and a refused pin leaves the worker unpinned with
//     ctx.cpu == -1 rather than failing the run
//   * placement publication — a pinned worker's {cpu, package, core, L3}
//     appears in exec::this_thread_placement() for lower layers
//     (ShardedStack's home-shard map) to read
//   * counters — with PoolOptions::counters, each worker carries a
//     perf_event group (cycles / instructions / LLC misses) that degrades
//     to nothing when the kernel refuses the syscall
//   * structured start/stop — an internal barrier replaces the per-harness
//     std::barrier: workers call ctx.sync(), the coordinating thread calls
//     pool.sync() when it holds a barrier slot
//
// The QSBR hook contract (quiesce per iteration, offline at phase end)
// also lives here — runner.hpp and the conformance tests used to carry
// duplicate copies.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/perf_counters.hpp"
#include "exec/topology.hpp"

namespace sec::exec {

// ---- the QSBR hook contract ------------------------------------------------

// Per-iteration quiescence announcement: the point where QSBR-backed
// containers tell their domain "this thread holds no references". Compiles
// to nothing for containers without the hook (CC/FC) and for reclaimers
// where quiesce() is a no-op (EBR/HP/leaky).
template <class C>
inline void quiesce_hook(C& c) {
    if constexpr (requires { c.quiesce(); }) c.quiesce();
}

// Phase-boundary withdrawal: a worker that stops operating must leave the
// QSBR online set or it blocks reclamation forever. Every worker body calls
// this on the way out of an operating phase.
template <class C>
inline void offline_hook(C& c) {
    if constexpr (requires { c.reclaim_offline(); }) c.reclaim_offline();
}

// ---- the pool --------------------------------------------------------------

class WorkerPool;

// Handed to each worker body. `index` is the worker's slot in [0, size);
// `cpu` is the OS cpu it was actually pinned to, -1 when unpinned (no
// policy, or the kernel refused the affinity call).
struct WorkerContext {
    unsigned index = 0;
    int cpu = -1;

    // Arrive at the pool barrier and wait for the other parties (all
    // workers, plus the coordinator when it holds a slot).
    void sync();

    // Zero the worker's counter group — call at the start of the measured
    // span so prefill cycles don't pollute the per-op arithmetic. No-op
    // when counters are off or unavailable.
    void counters_restart();

private:
    friend class WorkerPool;
    WorkerPool* pool_ = nullptr;
    PerfGroup* perf_ = nullptr;
};

struct PoolOptions {
    // Placement policy; kNone (the default, and the CI fallback) spawns
    // exactly the historical unpinned threads.
    topo::PinPolicy pin = topo::PinPolicy::kNone;
    // Topology to plan against; nullptr = Topology::system(). Tests inject
    // fixture topologies here.
    const topo::Topology* topology = nullptr;
    // Open a per-worker perf_event counter group (graceful no-op when the
    // kernel refuses).
    bool counters = false;
    // Whether the constructing thread holds a barrier slot: true for
    // coordinator-driven harnesses (prefill → sync → timed window), false
    // for worker-only rendezvous (churn drivers). Parties = workers (+1).
    bool coordinator_in_barrier = true;
    // Skip the first `plan_offset` slots of the policy's cpu order — two
    // pools sharing one machine (service producers + consumers) stay
    // disjoint by offsetting the second pool by the first pool's size.
    unsigned plan_offset = 0;
};

class WorkerPool {
public:
    explicit WorkerPool(unsigned workers, PoolOptions opts = {});
    ~WorkerPool();  // joins if the caller didn't
    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    // Spawn the workers, each running `body(ctx)`. Call at most once.
    void start(std::function<void(WorkerContext&)> body);

    // Coordinator's barrier arrival (requires coordinator_in_barrier).
    void sync();

    // Join all workers. Idempotent.
    void join();

    // start + join with no coordinator barrier slot — the one-shot shape
    // every "spawn N, let them rendezvous, wait" call site wants.
    static void run(unsigned workers, PoolOptions opts,
                    std::function<void(WorkerContext&)> body);
    static void run(unsigned workers,
                    std::function<void(WorkerContext&)> body) {
        run(workers, PoolOptions{}, std::move(body));
    }

    unsigned size() const noexcept { return workers_; }
    // The cpu the plan assigns worker t (-1 under kNone). What the worker
    // actually got is its ctx.cpu.
    int planned_cpu(unsigned t) const noexcept;
    const topo::Topology& topology() const noexcept { return *topology_; }

    // Counter totals across workers; meaningful after join(). any() is
    // false when every group failed to open (denied syscall, counters off).
    const PerfTotals& counters() const noexcept { return totals_; }

private:
    friend struct WorkerContext;  // ctx.sync() arrives at the pool barrier

    struct Barrier;  // std::barrier behind a firewall (non-movable member)

    void worker_main(unsigned t);

    unsigned workers_;
    PoolOptions opts_;
    const topo::Topology* topology_;
    std::vector<int> plan_;  // empty under kNone
    std::unique_ptr<Barrier> barrier_;
    std::vector<std::thread> threads_;
    std::function<void(WorkerContext&)> body_;
    std::mutex totals_mu_;
    PerfTotals totals_;
};

}  // namespace sec::exec
