// exec/perf_counters.hpp — per-worker hardware counters via
// perf_event_open, the evidence layer behind the perf trajectory: a Mops
// delta with no cycles/instructions/LLC-miss context can't distinguish "the
// combiner got smarter" from "the machine got faster".
//
// One PerfGroup per worker thread: a three-event group (cycles leader,
// instructions, LLC misses) read atomically with PERF_FORMAT_GROUP so the
// three numbers describe the same span. Everything degrades gracefully —
// CI containers deny the syscall (EPERM under the default seccomp profile,
// or perf_event_paranoid), and SEC_PERF_DISABLE=1 forces the denied path
// for tests — open() just returns false and every sample reads as invalid
// zeros. Callers aggregate with PerfTotals and check any() before
// printing, so the unpinned/denied path emits nothing rather than zeros
// masquerading as measurements.
#pragma once

#include <cstdint>

namespace sec::exec {

// One worker's counter readings over one measured span.
struct PerfSample {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    bool valid = false;  // false: syscall denied / group never opened
};

// Aggregate over workers (and over repeat runs). `sampled` counts workers
// that contributed a valid sample — zero means the environment denied the
// syscall everywhere and the totals are meaningless.
struct PerfTotals {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    unsigned sampled = 0;

    bool any() const noexcept { return sampled > 0; }

    void add(const PerfSample& s) noexcept {
        if (!s.valid) return;
        cycles += s.cycles;
        instructions += s.instructions;
        llc_misses += s.llc_misses;
        ++sampled;
    }
    void merge(const PerfTotals& o) noexcept {
        cycles += o.cycles;
        instructions += o.instructions;
        llc_misses += o.llc_misses;
        sampled += o.sampled;
    }
};

// The calling thread's counter group. Not thread-safe; each worker owns
// its own, counting that thread only (inherit off).
class PerfGroup {
public:
    PerfGroup() = default;
    ~PerfGroup();
    PerfGroup(const PerfGroup&) = delete;
    PerfGroup& operator=(const PerfGroup&) = delete;

    // Open the group on the calling thread. false when the kernel refuses
    // (EPERM/EACCES/ENOSYS, paranoid sysctl) or SEC_PERF_DISABLE is set in
    // the environment; the group is then permanently unavailable and
    // start()/stop_and_read() are harmless no-ops yielding invalid samples.
    bool open();
    bool available() const noexcept { return leader_ >= 0; }

    // Reset + enable the group (start of the measured span).
    void start();
    // Disable + read (end of the span). Invalid when unavailable or the
    // read fails.
    PerfSample stop_and_read();

private:
    void close_all();

    int leader_ = -1;       // cycles; -1 = unavailable
    int instructions_ = -1;
    int llc_ = -1;
};

}  // namespace sec::exec
