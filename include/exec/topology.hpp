// exec/topology.hpp — sec::topo: what the machine looks like, and where
// workers should go.
//
// The paper's combining/elimination wins depend on WHICH threads share
// caches: two workers in one L3 domain trade a combiner handoff through a
// shared cache line, two workers on different sockets trade it through the
// interconnect. Topology parses the kernel's description of that layout
// (/sys/devices/system/cpu: topology/{package_id,core_id,
// thread_siblings_list} per cpu, cache/index*/shared_cpu_list for the L3
// domains) into dense logical-cpu → {package, core, L3, SMT-rank} maps, and
// turns a placement POLICY plus a worker count into a concrete cpu
// assignment:
//
//   none      no pinning; workers land wherever the scheduler puts them
//             (the historical behaviour, and the CI default)
//   compact   fill neighbouring capacity first: SMT siblings of one core,
//             then cores of one L3 domain, then the next domain/package —
//             maximises cache sharing, the combining-friendly layout
//   scatter   round-robin workers across packages (compact within each) —
//             maximises per-worker cache/bandwidth, the combining-hostile
//             contrast point
//   smt       ("smt-aware") one worker per physical core first, compact
//             order, SMT siblings only once every core has one — isolates
//             the SMT-sharing effect from the cache-sharing effect
//
// Hosts where sysfs is absent or unreadable (containers mounting nothing
// under /sys) fall back to a synthetic flat topology — every cpu its own
// core, one package, one L3 domain — so plans still exist and pinning
// degrades to "pin worker t to cpu t". Tests parse canned fixture trees via
// parse(root) instead of mocking.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sec::topo {

enum class PinPolicy {
    kNone,
    kCompact,
    kScatter,
    kSmtAware,
};

// "none" / "compact" / "scatter" / "smt" (alias "smt-aware") → policy;
// nullopt on anything else. Callers reject loudly — a typo must not
// silently run unpinned.
std::optional<PinPolicy> parse_pin_policy(std::string_view name) noexcept;
std::string_view pin_policy_name(PinPolicy policy) noexcept;

// One online logical cpu. Indices other than `cpu` are dense renumberings
// (0..n-1 in first-appearance order), not raw sysfs ids — fixture trees and
// real machines produce comparable maps.
struct CpuInfo {
    unsigned cpu = 0;  // OS logical cpu id
    int package = 0;   // physical package (socket), dense
    int core = 0;      // physical core, dense across packages
    int l3 = 0;        // L3 cache domain, dense
    int smt = 0;       // rank among the core's SMT siblings (0 = first)
};

class Topology {
public:
    // The host's topology, detected once and cached for the process.
    static const Topology& system();

    // Parse the real sysfs tree; synthetic flat fallback when unreadable.
    static Topology detect();

    // Parse a cpu directory tree rooted at `root` (the real
    // /sys/devices/system/cpu or a canned test fixture). nullopt when the
    // tree yields no usable cpu, with a one-line reason in *err.
    static std::optional<Topology> parse(const std::string& root,
                                         std::string* err = nullptr);

    // The canned fallback: `cpus` single-thread cores in one package and
    // one L3 domain.
    static Topology flat(unsigned cpus);

    unsigned num_cpus() const noexcept {
        return static_cast<unsigned>(cpus_.size());
    }
    unsigned packages() const noexcept { return packages_; }
    unsigned cores() const noexcept { return cores_; }
    unsigned cores_per_package() const noexcept {
        return packages_ > 0 ? cores_ / packages_ : cores_;
    }
    // Max SMT siblings per core (1 = no SMT anywhere).
    unsigned smt_width() const noexcept { return smt_width_; }
    unsigned l3_domains() const noexcept { return l3_domains_; }
    // True for the flat() fallback — metadata records that the maps are
    // synthesized, not measured.
    bool synthetic() const noexcept { return synthetic_; }

    // By position (0..num_cpus) — iteration order is ascending OS cpu id.
    const CpuInfo& cpu_at(std::size_t i) const noexcept { return cpus_[i]; }
    // By OS cpu id; nullptr for offline/unknown cpus.
    const CpuInfo* find_cpu(unsigned os_cpu) const noexcept;

    // The cpu assignment for `workers` workers under `policy`: slot t is
    // worker t's OS cpu id. Empty for kNone (and for a topology with no
    // cpus). More workers than cpus wrap around the policy's cpu order.
    // `offset` skips the first `offset` slots of that order — two pools
    // sharing one machine (service producers + consumers) plan disjoint
    // slots by offsetting the second pool by the first pool's size.
    std::vector<int> plan(PinPolicy policy, unsigned workers,
                          unsigned offset = 0) const;

private:
    void derive();  // dense indices + the summary counts

    std::vector<CpuInfo> cpus_;  // ascending OS cpu id
    unsigned packages_ = 0;
    unsigned cores_ = 0;
    unsigned smt_width_ = 1;
    unsigned l3_domains_ = 0;
    bool synthetic_ = false;
};

}  // namespace sec::topo
