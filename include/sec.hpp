// sec.hpp — umbrella header for the sec library: the SEC stack, its five
// competitors (Figure 2 legend order: CC, EB, FC, SEC, TRB, TSI), the FIFO
// trio (SEC_Q, MS, FCQ — the `queue` scenario's matrix), the pluggable
// reclamation subsystem (sec::reclaim — EBR default, plus QSBR, hazard
// pointers, and the leaky baseline), and shared utilities.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>

#include "core/cc_stack.hpp"
#include "core/common.hpp"
#include "core/config.hpp"
#include "core/container_concept.hpp"
#include "core/eb_stack.hpp"
#include "core/ebr.hpp"
#include "core/fc_queue.hpp"
#include "core/fc_stack.hpp"
#include "core/ms_queue.hpp"
#include "core/op_mix.hpp"
#include "core/sec_queue.hpp"
#include "core/sec_stack.hpp"
#include "core/treiber_stack.hpp"
#include "core/tsi_stack.hpp"
#include "reclaim/reclaim.hpp"

namespace sec {

// Construct any of the containers with a bound on concurrently-live threads:
// Config-based structures (SecStack, SecQueue) get a default Config sized to
// the bound, the others take the bound directly.
template <class S>
std::unique_ptr<S> make_stack(std::size_t max_threads) {
    if constexpr (std::is_constructible_v<S, Config>) {
        Config cfg;
        cfg.max_threads =
            std::min(std::max<std::size_t>(max_threads, 1), kMaxThreads);
        cfg.num_aggregators =
            std::min(cfg.num_aggregators, cfg.max_threads);
        return std::make_unique<S>(cfg);
    } else {
        return std::make_unique<S>(
            std::min(std::max<std::size_t>(max_threads, 1), kMaxThreads));
    }
}

}  // namespace sec
