// reclaim/reclaimer.hpp — the pluggable memory-reclamation interface.
//
// A Reclaimer is a domain that takes ownership of retired pointers and frees
// them once no reader can still hold a reference. Four implementations model
// the classic safety/latency/memory trade-off space:
//
//   EpochDomain  (epoch.hpp)  DEBRA-style EBR — the paper's §4 scheme
//   QsbrDomain   (qsbr.hpp)   quiescent-state; the workload runner announces
//                             quiescence at every iteration boundary
//   HazardDomain (hazard.hpp) per-thread hazard-pointer slots, scan-and-free
//   LeakyDomain  (leaky.hpp)  no-op baseline; frees only at destruction
//
// Readers protect themselves with the domain's nested Guard (RAII). Blanket
// schemes (EBR/QSBR/leaky) make every pointer reachable during the guard's
// lifetime safe to dereference; hazard pointers protect only pointers
// announced through the guard's protect()/publish() slots, which the shared
// spine primitives (core/spine.hpp) call on every traversal step. The
// kBlanketProtection flag lets structures whose traversals cannot announce
// per-node hazards (TsiStack's all-pool scan) reject non-blanket reclaimers
// at compile time.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/common.hpp"

namespace sec::reclaim {

// One consistent accounting snapshot. `freed` is loaded before `retired`
// (and clamped), so `in_limbo()` can never wrap to a huge value the way two
// independently-loaded counters can when a free lands between the loads.
struct Stats {
    std::uint64_t retired = 0;    // handed to retire() so far
    std::uint64_t freed = 0;      // deleters actually run
    std::uint64_t limbo_hwm = 0;  // high-water mark of retired - freed

    std::uint64_t in_limbo() const noexcept { return retired - freed; }
};

template <class R>
concept Reclaimer =
    requires(R r, const R cr, R& ref, void* p, void (*deleter)(void*)) {
        typename R::Guard;
        requires std::constructible_from<typename R::Guard, R&>;
        { R::kName } -> std::convertible_to<std::string_view>;
        { R::kBlanketProtection } -> std::convertible_to<bool>;
        { R::kDrainsOnDemand } -> std::convertible_to<bool>;
        r.retire_erased(p, deleter);
        r.drain_all();
        r.quiesce();
        r.offline();
        { cr.stats() } -> std::same_as<Stats>;
    };

// Owns a private domain by default, or borrows an external one — the shared
// plumbing behind every stack's `(args...)` / `(args..., R&)` ctor pair.
template <class R>
class DomainRef {
public:
    DomainRef() : owned_(std::make_unique<R>()), domain_(owned_.get()) {}
    explicit DomainRef(R& d) noexcept : domain_(&d) {}

    R& operator*() const noexcept { return *domain_; }
    R* operator->() const noexcept { return domain_; }

private:
    std::unique_ptr<R> owned_;
    R* domain_;
};

// Type-erased owning handle over any Reclaimer — what the registry and the
// reclamation scenario pass around so one StackParams field can carry a
// domain of any scheme. get<R>() recovers the concrete domain (nullptr on
// scheme mismatch), which the per-variant stack factories rely on.
class DomainHandle {
public:
    DomainHandle() = default;
    DomainHandle(DomainHandle&& o) noexcept : ptr_(o.ptr_), ops_(o.ops_) {
        o.ptr_ = nullptr;
        o.ops_ = nullptr;
    }
    DomainHandle& operator=(DomainHandle&& o) noexcept {
        if (this != &o) {
            reset();
            ptr_ = o.ptr_;
            ops_ = o.ops_;
            o.ptr_ = nullptr;
            o.ops_ = nullptr;
        }
        return *this;
    }
    DomainHandle(const DomainHandle&) = delete;
    DomainHandle& operator=(const DomainHandle&) = delete;
    ~DomainHandle() { reset(); }

    template <Reclaimer R>
    static DomainHandle make() {
        DomainHandle h;
        h.ptr_ = new R();
        h.ops_ = ops_for<R>();
        return h;
    }

    explicit operator bool() const noexcept { return ptr_ != nullptr; }
    std::string_view scheme() const noexcept { return ops_->name; }
    Stats stats() const { return ops_->stats(ptr_); }
    void drain_all() const { ops_->drain(ptr_); }

    template <Reclaimer R>
    R* get() const noexcept {
        return (ops_ != nullptr && ops_->name == R::kName)
                   ? static_cast<R*>(ptr_)
                   : nullptr;
    }

private:
    struct Ops {
        std::string_view name;
        Stats (*stats)(void*);
        void (*drain)(void*);
        void (*destroy)(void*);
    };

    template <Reclaimer R>
    static const Ops* ops_for() {
        static const Ops ops{
            R::kName,
            [](void* p) { return static_cast<const R*>(p)->stats(); },
            [](void* p) { static_cast<R*>(p)->drain_all(); },
            [](void* p) { delete static_cast<R*>(p); },
        };
        return &ops;
    }

    void reset() noexcept {
        if (ptr_ != nullptr) ops_->destroy(ptr_);
        ptr_ = nullptr;
        ops_ = nullptr;
    }

    void* ptr_ = nullptr;
    const Ops* ops_ = nullptr;
};

namespace detail {

// Spin-then-yield lock guard for the per-thread limbo lists every domain
// keeps (uncontended except when drain_all sweeps foreign lists).
struct SpinLockGuard {
    explicit SpinLockGuard(std::atomic_flag& f) noexcept : flag(f) {
        sec::detail::Backoff backoff;
        while (flag.test_and_set(std::memory_order_acquire)) {
            backoff.pause();
        }
    }
    ~SpinLockGuard() { flag.clear(std::memory_order_release); }
    SpinLockGuard(const SpinLockGuard&) = delete;
    SpinLockGuard& operator=(const SpinLockGuard&) = delete;

    std::atomic_flag& flag;
};

// CAS-max of `candidate` into `hwm` (the limbo high-water mark tracker).
inline void raise_hwm(std::atomic<std::uint64_t>& hwm,
                      std::uint64_t candidate) noexcept {
    std::uint64_t cur = hwm.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !hwm.compare_exchange_weak(cur, candidate,
                                      std::memory_order_relaxed)) {
    }
}

// The read-side guard of every blanket-protection scheme: any pointer
// reachable while the guard lives is safe to dereference, so protect() is a
// plain load and publish()/validate() compile away. The single definition
// keeps the three blanket schemes from diverging; EpochDomain derives from
// it to add its enter/exit bracketing, QSBR and leaky use it as-is.
template <class D>
class BlanketGuard {
public:
    explicit BlanketGuard(D& d) noexcept : d_(d) {}
    BlanketGuard(const BlanketGuard&) = delete;
    BlanketGuard& operator=(const BlanketGuard&) = delete;

    D& domain() const noexcept { return d_; }

    template <class T>
    T* protect(unsigned /*slot*/, const std::atomic<T*>& src) const noexcept {
        return src.load(std::memory_order_acquire);
    }
    template <class T>
    void publish(unsigned /*slot*/, T* /*p*/) const noexcept {}
    template <class T>
    bool validate(const std::atomic<T*>& /*src*/,
                  T* /*expected*/) const noexcept {
        return true;
    }

private:
    D& d_;
};

// A retired pointer awaiting its deleter — the backlog entry of the domains
// that defer frees to scans or destruction (hazard, leaky).
struct RetiredPtr {
    void* p;
    void (*deleter)(void*);
};

// Run every deleter in `items` and clear it; returns how many were freed.
// The destructor contract behind it: no Guard outlives the domain, so every
// backlog entry is freeable unconditionally.
inline std::uint64_t free_backlog(std::vector<RetiredPtr>& items) {
    for (const RetiredPtr& r : items) r.deleter(r.p);
    const std::uint64_t n = items.size();
    items.clear();
    return n;
}

// Shared retired/freed/high-water accounting for every domain. snapshot()
// is the single home of the ordering-sensitive one-call Stats read: freed
// is loaded BEFORE retired (freed <= retired holds at every instant, so the
// later-loaded retired can only be >= the earlier-loaded freed) and clamped,
// which is what keeps in_limbo() from wrapping when a free lands between
// the loads. Domains must not re-implement this read.
class Accounting {
public:
    // Call before the retired entry becomes freeable by a concurrent
    // sweep/scan: freed must never be observable above retired.
    void note_retired() noexcept {
        const std::uint64_t r =
            retired_.fetch_add(1, std::memory_order_acq_rel) + 1;
        const std::uint64_t f = freed_.load(std::memory_order_acquire);
        // `f` can race past our `r` sample while other threads retire and
        // free, so clamp before tracking the high-water mark.
        if (r > f) raise_hwm(hwm_, r - f);
    }

    void note_freed(std::uint64_t n) noexcept {
        if (n > 0) freed_.fetch_add(n, std::memory_order_acq_rel);
    }

    Stats snapshot() const noexcept {
        Stats s;
        s.freed = freed_.load(std::memory_order_acquire);  // first; see above
        s.retired = retired_.load(std::memory_order_acquire);
        s.limbo_hwm = hwm_.load(std::memory_order_relaxed);
        if (s.freed > s.retired) s.freed = s.retired;  // belt and braces
        return s;
    }

private:
    std::atomic<std::uint64_t> retired_{0};
    std::atomic<std::uint64_t> freed_{0};
    std::atomic<std::uint64_t> hwm_{0};
};

}  // namespace detail
}  // namespace sec::reclaim
