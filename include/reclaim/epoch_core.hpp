// reclaim/epoch_core.hpp — the grace-period engine shared by EpochDomain
// (EBR) and QsbrDomain (quiescent-state).
//
// Both schemes are the same machine — a global epoch, one announcement slot
// per thread, per-thread limbo lists of epoch-stamped retired pointers, and
// amortised advancement/sweeping — differing only in *when* a thread
// announces. EBR brackets every read-side critical section (enter/exit);
// QSBR leaves threads announced ("online") across operations and refreshes
// the announcement at quiescent points (quiescent/set_offline), which is
// what makes its read side free. Keeping one core keeps the two schemes'
// advancement and accounting from diverging.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/common.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim::detail {

class EpochCore {
public:
    static constexpr std::uint64_t kInactive = ~std::uint64_t{0};

    EpochCore() = default;
    ~EpochCore();

    EpochCore(const EpochCore&) = delete;
    EpochCore& operator=(const EpochCore&) = delete;

    void retire_erased(void* p, void (*deleter)(void*));

    // Reclaim everything that is provably unreachable; if no thread is
    // announced this drains the entire limbo backlog.
    void drain_all();

    Stats stats() const noexcept { return counters_.snapshot(); }

    std::uint64_t epoch() const noexcept {
        return global_epoch_.load(std::memory_order_acquire);
    }

    // EBR-style bracketed announcement (nestable; see EpochDomain::Guard).
    void enter() noexcept;
    void exit() noexcept;

    // QSBR-style sticky announcement. quiescent() brings an offline thread
    // online with the validated-announce dance, and merely refreshes the
    // announcement (one load + one store) for a thread already online.
    // set_offline() must be called when a thread stops operating on the
    // protected structures, or it blocks epoch advancement forever.
    void quiescent() noexcept;
    void set_offline() noexcept;

private:
    // Retires between amortised advance/sweep attempts on the owning thread.
    static constexpr std::uint32_t kScanInterval = 64;
    // Retired pointers per limbo chunk: amortises tracker allocation to one
    // per kChunkSize retires (a per-retire heap node would double the
    // allocation traffic of every pop in the benchmarked stacks).
    static constexpr std::uint32_t kChunkSize = 64;

    struct Retired {
        void* p;
        void (*deleter)(void*);
        std::uint64_t epoch;
    };

    // Entries are appended in retire order, so epochs within a chunk (and
    // across the chunk list, oldest chunk first) are non-decreasing.
    struct Chunk {
        Retired entries[kChunkSize];
        std::uint32_t count = 0;
        Chunk* next = nullptr;
    };

    struct alignas(kCacheLineSize) Reservation {
        std::atomic<std::uint64_t> epoch{kInactive};
        std::uint32_t nesting = 0;  // owned by the announcing thread
    };

    struct alignas(kCacheLineSize) LimboList {
        std::atomic_flag lock = ATOMIC_FLAG_INIT;
        Chunk* head = nullptr;  // oldest
        Chunk* tail = nullptr;  // newest (append target)
        std::uint32_t retires_since_scan = 0;
    };

    bool try_advance() noexcept;
    bool any_active() const noexcept;
    // Announce epoch `e` with the store/re-read loop that closes the window
    // where the global epoch moves between load and announcement.
    void validated_announce(std::atomic<std::uint64_t>& slot) noexcept;
    // Free nodes in limbo_[i] with epoch+2 <= limit (limit==kInactive: all).
    void sweep(std::size_t i, std::uint64_t limit);

    std::atomic<std::uint64_t> global_epoch_{2};
    Accounting counters_;
    Reservation reservations_[kMaxThreads];
    LimboList limbo_[kMaxThreads];
};

}  // namespace sec::reclaim::detail
