// reclaim/reclaim.hpp — umbrella header for the sec::reclaim subsystem: the
// Reclaimer concept, the type-erased DomainHandle, and the four schemes
// (EBR / QSBR / hazard pointers / leaky). See DESIGN.md §4 for the contract
// and when each scheme wins.
#pragma once

#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim {

static_assert(Reclaimer<EpochDomain>);
static_assert(Reclaimer<QsbrDomain>);
static_assert(Reclaimer<HazardDomain>);
static_assert(Reclaimer<LeakyDomain>);

}  // namespace sec::reclaim
