// reclaim/qsbr.hpp — QsbrDomain: quiescent-state-based reclamation.
//
// The read side is free: Guard construction and destruction do nothing.
// Instead, each thread is "online" from its first quiesce() call and
// re-announces quiescence — a moment at which it holds no references into
// any protected structure — at every workload-runner iteration boundary
// (see the quiesce hook in workload/runner.hpp). Retired nodes are freed
// once every online thread has announced a quiescent state after the
// retire. A thread that stops operating MUST go offline (the runner's
// phase-boundary hook does this), or it blocks reclamation forever; a
// thread that never calls quiesce() must not touch the structure while
// other threads are freeing.
//
// Shares the grace-period engine with EpochDomain (epoch_core.hpp): QSBR is
// EBR with the announcement moved from the critical-section boundary to the
// inter-operation boundary, which is exactly what makes its reader overhead
// vanish — and why it needs the workload's cooperation.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "reclaim/epoch_core.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim {

class QsbrDomain {
public:
    static constexpr std::string_view kName = "qsbr";
    static constexpr bool kBlanketProtection = true;
    static constexpr bool kDrainsOnDemand = true;

    // No-op by design: protection comes from the thread being online and
    // between quiescence announcements, not from the guard.
    using Guard = detail::BlanketGuard<QsbrDomain>;

    QsbrDomain() = default;
    QsbrDomain(const QsbrDomain&) = delete;
    QsbrDomain& operator=(const QsbrDomain&) = delete;

    template <class T>
    void retire(T* p) {
        retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
    }
    void retire_erased(void* p, void (*deleter)(void*)) {
        core_.retire_erased(p, deleter);
    }

    void drain_all() { core_.drain_all(); }

    Stats stats() const noexcept { return core_.stats(); }

    // The runner hooks: announce a quiescent state (first call brings the
    // thread online), and withdraw from the online set at phase end.
    void quiesce() noexcept { core_.quiescent(); }
    void offline() noexcept { core_.set_offline(); }

    std::uint64_t interval() const noexcept { return core_.epoch(); }

private:
    detail::EpochCore core_;
};

}  // namespace sec::reclaim
