// reclaim/hazard.hpp — HazardDomain: hazard-pointer reclamation (Michael,
// PODC'02 lineage).
//
// Each thread owns a small block of hazard slots. A reader announces the
// pointer it is about to dereference in a slot (Guard::protect loops
// publish-then-revalidate until the announcement is stable), and a retire
// only frees pointers that appear in no slot — so protection is per-pointer,
// not blanket: structures must announce every node they dereference
// (kBlanketProtection == false). The shared spine primitives do exactly
// that; TsiStack's all-pool scan cannot, and rejects this domain at compile
// time.
//
// Frees are batched: every kScanInterval retires, the retiring thread scans
// the hazard slots of all threads seen so far and frees its own retired
// backlog minus the protected set. Memory in limbo is therefore bounded by
// threads x kScanInterval + live hazards, independent of run length — the
// tightest bound of the four schemes, paid for with two ordered stores per
// protected dereference.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/common.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim {

class HazardDomain {
public:
    static constexpr std::string_view kName = "hp";
    static constexpr bool kBlanketProtection = false;
    static constexpr bool kDrainsOnDemand = true;
    // Slots per thread: the spine walk needs 2 (anchor + walker); 4 leaves
    // headroom for richer traversals.
    static constexpr unsigned kSlotsPerThread = 4;

    class Guard {
    public:
        explicit Guard(HazardDomain& d) noexcept
            : d_(d), id_(sec::detail::tid()) {
            d_.note_thread(id_);
        }
        ~Guard() { clear(); }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

        HazardDomain& domain() const noexcept { return d_; }

        // Publish-then-revalidate until the announced pointer is still what
        // `src` holds: once that holds, the pointer cannot be freed while
        // the slot keeps naming it.
        template <class T>
        T* protect(unsigned slot, const std::atomic<T*>& src) noexcept {
            T* p = src.load(std::memory_order_acquire);
            for (;;) {
                publish(slot, p);
                T* q = src.load(std::memory_order_seq_cst);
                // The announcement is stable unless `src` moved in the
                // publish-to-revalidate window — a few nanoseconds, so one
                // pass is the overwhelmingly common shape.
                if (SEC_LIKELY(q == p)) return p;
                p = q;
            }
        }

        // Raw announcement for walk steps whose validity the caller proves
        // separately (spine_pop_chain revalidates the anchor after this).
        template <class T>
        void publish(unsigned slot, T* p) noexcept {
            d_.slots_[id_].hp[slot].store(
                const_cast<std::remove_const_t<T>*>(p),
                std::memory_order_seq_cst);
            used_ |= 1u << slot;
        }

        template <class T>
        bool validate(const std::atomic<T*>& src, T* expected) const noexcept {
            return src.load(std::memory_order_seq_cst) == expected;
        }

    private:
        void clear() noexcept {
            for (unsigned i = 0; used_ != 0; ++i, used_ >>= 1) {
                if (used_ & 1u) {
                    d_.slots_[id_].hp[i].store(nullptr,
                                               std::memory_order_release);
                }
            }
        }

        HazardDomain& d_;
        std::size_t id_;
        unsigned used_ = 0;
    };

    HazardDomain() = default;
    ~HazardDomain();

    HazardDomain(const HazardDomain&) = delete;
    HazardDomain& operator=(const HazardDomain&) = delete;

    template <class T>
    void retire(T* p) {
        retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
    }
    void retire_erased(void* p, void (*deleter)(void*));

    // Scan every thread's retired backlog; frees all but the pointers still
    // hazard-protected somewhere.
    void drain_all();

    Stats stats() const noexcept { return counters_.snapshot(); }

    // Hazard slots carry the protection; the runner hooks are no-ops.
    void quiesce() noexcept {}
    void offline() noexcept {}

private:
    // Retires between scan-and-free passes on the owning thread's backlog.
    static constexpr std::uint32_t kScanInterval = 128;

    struct alignas(kCacheLineSize) SlotBlock {
        std::atomic<void*> hp[kSlotsPerThread] = {};
    };

    struct alignas(kCacheLineSize) RetiredList {
        std::atomic_flag lock = ATOMIC_FLAG_INIT;
        std::vector<detail::RetiredPtr> items;
        std::uint32_t retires_since_scan = 0;
    };

    // Record `id` in the scanned-thread bound (ids are small and recycled,
    // so the bound stays near the live thread count).
    void note_thread(std::size_t id) noexcept {
        std::size_t bound = tid_bound_.load(std::memory_order_relaxed);
        while (id >= bound &&
               !tid_bound_.compare_exchange_weak(bound, id + 1,
                                                 std::memory_order_seq_cst)) {
        }
    }

    void collect_hazards(std::vector<void*>& out) const;
    void scan(std::size_t id);

    detail::Accounting counters_;
    std::atomic<std::size_t> tid_bound_{0};  // exclusive bound on ids seen
    SlotBlock slots_[kMaxThreads];
    RetiredList lists_[kMaxThreads];
};

}  // namespace sec::reclaim
