// reclaim/leaky.hpp — LeakyDomain: the no-op baseline that bounds the cost
// ceiling of reclamation.
//
// Readers pay nothing and retires only append to a per-thread backlog;
// nothing is freed until the domain is destroyed (at which point everything
// is, so ASan runs stay clean and the conformance suite can count
// destructors). drain_all() is deliberately a no-op: without any reader
// tracking there is never a moment mid-run when freeing is provably safe.
// Comparing any real scheme against this one isolates the price of safety:
// throughput above LeakyDomain is overhead, limbo growth below it is memory
// the scheme actually returned.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/common.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim {

class LeakyDomain {
public:
    static constexpr std::string_view kName = "leak";
    static constexpr bool kBlanketProtection = true;
    static constexpr bool kDrainsOnDemand = false;

    using Guard = detail::BlanketGuard<LeakyDomain>;

    LeakyDomain() = default;
    ~LeakyDomain() {
        std::uint64_t freed = 0;
        for (RetiredList& list : lists_) {
            freed += detail::free_backlog(list.items);
        }
        counters_.note_freed(freed);
    }

    LeakyDomain(const LeakyDomain&) = delete;
    LeakyDomain& operator=(const LeakyDomain&) = delete;

    template <class T>
    void retire(T* p) {
        retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
    }

    void retire_erased(void* p, void (*deleter)(void*)) {
        const std::size_t id = sec::detail::tid();
        counters_.note_retired();
        detail::SpinLockGuard lock(lists_[id].lock);
        lists_[id].items.push_back({p, deleter});
    }

    // Deliberate no-op; see the header comment.
    void drain_all() noexcept {}

    Stats stats() const noexcept { return counters_.snapshot(); }

    void quiesce() noexcept {}
    void offline() noexcept {}

private:
    struct alignas(kCacheLineSize) RetiredList {
        std::atomic_flag lock = ATOMIC_FLAG_INIT;
        std::vector<detail::RetiredPtr> items;
    };

    detail::Accounting counters_;
    RetiredList lists_[kMaxThreads];
};

}  // namespace sec::reclaim
