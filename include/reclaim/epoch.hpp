// reclaim/epoch.hpp — EpochDomain: DEBRA-style epoch-based reclamation (the
// paper's §4 scheme), refitted behind the sec::reclaim interface.
//
// A Guard brackets every read-side critical section: enter announces the
// current epoch, exit withdraws the announcement. Retired nodes are stamped
// with the epoch at retire time and freed once the global epoch has advanced
// two steps past it (no reader can still hold a reference). Epoch
// advancement is amortised into retire(), so frees keep pace with retires
// during a run rather than piling up until destruction — memory stays
// bounded under churn, which the `reclamation` scenario makes observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "reclaim/epoch_core.hpp"
#include "reclaim/reclaimer.hpp"

namespace sec::reclaim {

class EpochDomain {
public:
    static constexpr std::string_view kName = "ebr";
    static constexpr bool kBlanketProtection = true;
    static constexpr bool kDrainsOnDemand = true;

    // Reader-side critical section (nestable): BlanketGuard's free
    // traversal hooks plus the epoch announcement bracketing.
    class Guard : public detail::BlanketGuard<EpochDomain> {
    public:
        explicit Guard(EpochDomain& d) noexcept : BlanketGuard(d) {
            domain().enter();
        }
        ~Guard() { domain().exit(); }
    };

    EpochDomain() = default;
    EpochDomain(const EpochDomain&) = delete;
    EpochDomain& operator=(const EpochDomain&) = delete;

    // Hand `p` to the domain; it is deleted once no epoch-protected reader
    // can still reach it. Callable with or without an active Guard.
    template <class T>
    void retire(T* p) {
        retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
    }
    void retire_erased(void* p, void (*deleter)(void*)) {
        core_.retire_erased(p, deleter);
    }

    void drain_all() { core_.drain_all(); }

    Stats stats() const noexcept { return core_.stats(); }

    // Epoch announcements carry the protection; the runner's quiescence
    // hooks have nothing to add.
    void quiesce() noexcept {}
    void offline() noexcept {}

    // Accounting compatibility surface (sec::ebr::Domain API).
    std::uint64_t retired_count() const noexcept { return stats().retired; }
    std::uint64_t freed_count() const noexcept { return stats().freed; }
    std::uint64_t in_limbo() const noexcept { return stats().in_limbo(); }
    std::uint64_t epoch() const noexcept { return core_.epoch(); }

    // Prefer the Guard RAII wrapper. Nestable.
    void enter() noexcept { core_.enter(); }
    void exit() noexcept { core_.exit(); }

private:
    detail::EpochCore core_;
};

}  // namespace sec::reclaim
