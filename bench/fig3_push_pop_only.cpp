// fig3_push_pop_only.cpp — EXP2: asymmetric workloads, all six algorithms.
//
// Regenerates: Figure 3 (Emerald), Figure 6 (IceLake), Figure 10 (Sapphire).
// Expected shape (paper §6): TSI dominates push-only (up to 6x vs SEC —
// its pushes are synchronisation-free) and collapses on pop-only (SEC up to
// 3x faster — every TSI pop scans all pools); SEC and the others are
// roughly symmetric across the two directions.
//
// Pop-only uses a deep prefill so the measured window actually pops (the
// paper's 1000-node prefill drains instantly; afterwards throughput is
// dominated by EMPTY pops, in both the paper and here).
#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

struct SeriesRunner {
    sb::Table& table;
    const sb::EnvConfig& env;
    const sec::OpMix& mix;

    template <class S>
    void operator()(const char* name) const {
        sb::run_series<S>(table, env, mix, name);
    }
};

}  // namespace

int main() {
    sb::print_preamble("fig3_push_pop_only (EXP2)");
    sb::EnvConfig env = sb::EnvConfig::load();

    {
        sb::Table table("fig3_push_only", sb::algorithm_columns());
        std::fprintf(stderr, "workload push-only\n");
        sb::for_each_algorithm(SeriesRunner{table, env, sec::kPushOnly});
        table.print();
    }
    {
        // Prefill proportional to expected pop volume so the window measures
        // real pops rather than EMPTY returns (the paper's fixed 1000-node
        // prefill drains within milliseconds; see EXPERIMENTS.md).
        sb::EnvConfig pop_env = env;
        const std::size_t volume = static_cast<std::size_t>(
            25e6 * (static_cast<double>(env.duration_ms) / 1000.0) * 1.3);
        pop_env.prefill = std::min<std::size_t>(
            std::max<std::size_t>(env.prefill, volume), 40'000'000);
        sb::Table table("fig3_pop_only", sb::algorithm_columns());
        std::fprintf(stderr, "workload pop-only (prefill=%zu)\n", pop_env.prefill);
        sb::for_each_algorithm(SeriesRunner{table, pop_env, sec::kPopOnly});
        table.print();
    }
    return 0;
}
