// fig3_push_pop_only — legacy EXP2 driver, now a stub over the `fig3`
// scenario (src/scenarios.cpp; run `secbench fig3` for the CLI).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("fig3"); }
