// fig2_throughput.cpp — EXP1: throughput vs thread count for the three
// paper workloads, all six algorithms.
//
// Regenerates: Figure 2a (Emerald), Figure 2b / Figure 5 (IceLake),
// Figure 9 (Sapphire) — same experiment, machine-dependent thread grid.
// Expected shape (paper §6): SEC wins at high thread counts (up to 2-2.6x),
// FC/CC flatten early, TRB collapses under contention, EB scales but trails
// SEC, TSI is competitive at 100% updates and degrades at 50%/10%.
//
// Scale via env: SEC_BENCH_DURATION_MS / _RUNS / _THREADS / _PREFILL, or
// SEC_BENCH_PAPER=1 for the paper's full 5s x 5-run methodology.
#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

struct SeriesRunner {
    sb::Table& table;
    const sb::EnvConfig& env;
    const sec::OpMix& mix;

    template <class S>
    void operator()(const char* name) const {
        sb::run_series<S>(table, env, mix, name);
    }
};

}  // namespace

int main() {
    sb::print_preamble("fig2_throughput (EXP1)");
    const sb::EnvConfig env = sb::EnvConfig::load();

    for (const sec::OpMix& mix : sec::kStandardMixes) {
        sb::Table table(std::string("fig2_") + std::string(mix.name),
                        sb::algorithm_columns());
        std::fprintf(stderr, "workload %s (%u%% updates)\n", mix.name.data(),
                     mix.update_pct());
        sb::for_each_algorithm(SeriesRunner{table, env, mix});
        table.print();
    }
    return 0;
}
