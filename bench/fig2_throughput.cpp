// fig2_throughput — legacy EXP1 driver, now a stub over the `fig2` scenario
// (src/scenarios.cpp; run `secbench fig2` for the CLI with selection flags).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("fig2"); }
