// memory_reclamation.cpp — reclamation behaviour under churn (paper §4).
//
// The paper integrates DEBRA and describes exactly when SEC retires nodes
// and batches. This bench makes the reclamation pipeline observable: after
// a fixed balanced churn on each EBR-using stack, it reports how much was
// retired, how much the amortised epoch advancement already freed, and the
// limbo backlog — demonstrating that grace-period reclamation keeps memory
// bounded (frees keep pace with retires) rather than deferring everything
// to destruction.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

struct Churn {
    std::uint64_t retired;
    std::uint64_t freed;
    std::uint64_t limbo;
};

template <class S>
Churn churn_with_domain(unsigned threads, std::uint32_t ops_per_thread) {
    sec::ebr::Domain domain;
    Churn result{};
    {
        auto stack = [&domain, threads]() {
            if constexpr (std::is_same_v<S, sec::SecStack<sb::Value>>) {
                sec::Config cfg;
                cfg.max_threads = sb::tid_bound(threads);
                return std::make_unique<S>(cfg, domain);
            } else {
                return std::make_unique<S>(sb::tid_bound(threads), domain);
            }
        }();

        std::vector<std::thread> workers;
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                sec::Xoshiro256 rng(t * 0x9E3779B97F4A7C15ull + 1);
                for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
                    if (rng.next_below(2) == 0) {
                        stack->push(rng.next());
                    } else {
                        (void)stack->pop();
                    }
                }
            });
        }
        for (auto& w : workers) w.join();
        // Snapshot BEFORE destruction: what the amortised path achieved.
        result = {domain.retired_count(), domain.freed_count(), domain.in_limbo()};
    }
    return result;
}

template <class S>
void report(const char* name, unsigned threads, std::uint32_t ops) {
    const Churn c = churn_with_domain<S>(threads, ops);
    const double freed_pct =
        c.retired ? 100.0 * static_cast<double>(c.freed) / static_cast<double>(c.retired)
                  : 100.0;
    std::printf("%-6s t=%-3u retired=%-10llu freed-by-epochs=%-10llu (%5.1f%%) "
                "limbo-at-quiesce=%llu\n",
                name, threads, static_cast<unsigned long long>(c.retired),
                static_cast<unsigned long long>(c.freed), freed_pct,
                static_cast<unsigned long long>(c.limbo));
    std::printf("CSV,reclamation,%s,%u,%llu,%llu,%llu\n", name, threads,
                static_cast<unsigned long long>(c.retired),
                static_cast<unsigned long long>(c.freed),
                static_cast<unsigned long long>(c.limbo));
}

}  // namespace

int main() {
    sb::print_preamble("memory_reclamation (paper section 4)");
    const sb::EnvConfig env = sb::EnvConfig::load();
    const std::uint32_t ops =
        static_cast<std::uint32_t>(env.duration_ms * 2000);  // scale with budget

    std::printf("# balanced push/pop churn; 'freed-by-epochs' is reclamation that\n"
                "# happened DURING the run via amortised epoch advancement\n");
    for (unsigned t : {4u, 16u}) {
        report<sec::SecStack<sb::Value>>("SEC", t, ops);
        report<sec::TreiberStack<sb::Value>>("TRB", t, ops);
        report<sec::EbStack<sb::Value>>("EB", t, ops);
        report<sec::TsiStack<sb::Value>>("TSI", t, ops);
    }
    return 0;
}
