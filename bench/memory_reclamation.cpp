// memory_reclamation — legacy EBR-accounting driver, now a stub over the
// `reclamation` scenario (src/scenarios.cpp; run `secbench reclamation`).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("reclamation"); }
