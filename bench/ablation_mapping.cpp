// ablation_mapping — legacy driver, now a stub over the `ablation_mapping`
// scenario (src/scenarios.cpp).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("ablation_mapping"); }
