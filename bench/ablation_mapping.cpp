// ablation_mapping.cpp — design-choice ablation (DESIGN.md §5).
//
// The paper assigns threads to aggregators "evenly" and notes "more
// sophisticated schemes are also possible" (§3.2). This bench compares the
// two even mappings this library ships — contiguous blocks (the paper's
// prose example) and round-robin — on the update-heavy workload.
#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

void run_mapping(sb::Table& table, const sb::EnvConfig& env,
                 sec::AggregatorMapping mapping, const std::string& column) {
    for (unsigned t : env.threads) {
        sb::RunConfig rcfg;
        rcfg.threads = t;
        rcfg.duration = std::chrono::milliseconds(env.duration_ms);
        rcfg.prefill = env.prefill;
        rcfg.mix = sec::kUpdateHeavy;
        rcfg.runs = env.runs;
        const sb::RunResult r = sb::run_throughput(
            [mapping, t] {
                sec::Config cfg;
                cfg.max_threads = sb::tid_bound(t);
                cfg.mapping = mapping;
                return std::make_unique<sec::SecStack<sb::Value>>(cfg);
            },
            rcfg);
        table.add(t, column, r.mops);
        std::fprintf(stderr, "  %-10s t=%-4u %8.2f Mops/s\n", column.c_str(), t, r.mops);
    }
}

}  // namespace

int main() {
    sb::print_preamble("ablation_mapping");
    const sb::EnvConfig env = sb::EnvConfig::load();
    sb::Table table("ablation_mapping_upd100", {"contiguous", "round_robin"});
    run_mapping(table, env, sec::AggregatorMapping::kContiguous, "contiguous");
    run_mapping(table, env, sec::AggregatorMapping::kRoundRobin, "round_robin");
    table.print();
    return 0;
}
