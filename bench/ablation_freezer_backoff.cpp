// ablation_freezer_backoff — legacy driver, now a stub over the
// `ablation_backoff` scenario (src/scenarios.cpp).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("ablation_backoff"); }
