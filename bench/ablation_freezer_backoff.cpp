// ablation_freezer_backoff.cpp — design-choice ablation (DESIGN.md §5).
//
// The paper states (§3.1): "the freezer thread f_B executes a short backoff
// before freezing B to increase the elimination degree ... Experiments
// showed that this results in enhanced performance." This bench quantifies
// that claim: SEC throughput and degrees across freezer backoff windows,
// update-heavy workload.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = sec::bench;

int main() {
    sb::print_preamble("ablation_freezer_backoff");
    const sb::EnvConfig env = sb::EnvConfig::load();

    constexpr std::uint64_t kWindowsNs[] = {0, 128, 256, 512, 1024, 4096};
    std::vector<std::string> columns;
    for (auto w : kWindowsNs) columns.push_back("bo" + std::to_string(w));

    sb::Table table("ablation_freezer_backoff_upd100", columns);
    for (auto w : kWindowsNs) {
        const std::string column = "bo" + std::to_string(w);
        for (unsigned t : env.threads) {
            sec::Config cfg;
            cfg.max_threads = sb::tid_bound(t);
            cfg.freezer_backoff_ns = w;
            cfg.collect_stats = true;
            auto stack = std::make_unique<sec::SecStack<sb::Value>>(cfg);

            sb::RunConfig rcfg;
            rcfg.threads = t;
            rcfg.duration = std::chrono::milliseconds(env.duration_ms);
            rcfg.prefill = env.prefill;
            rcfg.mix = sec::kUpdateHeavy;
            rcfg.runs = env.runs;
            const sb::RunResult r = sb::run_throughput(
                [&stack]() -> sec::SecStack<sb::Value>* { return stack.get(); }, rcfg);
            table.add(t, column, r.mops);
            const sec::StatsSnapshot s = stack->stats();
            std::fprintf(stderr, "  bo=%-5llu t=%-4u %8.2f Mops/s batch=%.1f elim=%.0f%%\n",
                         static_cast<unsigned long long>(w), t, r.mops,
                         s.batching_degree(), s.elimination_pct());
        }
    }
    table.print();
    return 0;
}
