// ablation_pool_vs_stack.cpp — what dropping LIFO order buys (DESIGN.md §5).
//
// The paper's conclusion argues the sharded elimination/combining machinery
// generalises beyond stacks. ElimPool applies it to an unordered pool with
// one spine PER AGGREGATOR, removing the last shared contention point that
// SecStack's single top pointer keeps. This bench puts the two side by side
// on the update-heavy mix: the gap is the price of LIFO.
#include "bench_common.hpp"

#include "core/elim_pool.hpp"

namespace sb = sec::bench;

namespace {

// Adapter so the throughput runner (written against the stack concept) can
// drive the pool.
struct PoolAsStack {
    using value_type = sb::Value;
    explicit PoolAsStack(sec::Config cfg) : pool(std::move(cfg)) {}
    bool push(const value_type& v) { return pool.insert(v); }
    std::optional<value_type> pop() { return pool.extract(); }
    std::optional<value_type> peek() { return std::nullopt; }  // pools don't peek
    sec::ElimPool<value_type> pool;
};

sec::Config cfg_for(unsigned threads, std::size_t aggs) {
    sec::Config cfg;
    cfg.max_threads = sb::tid_bound(threads);
    cfg.num_aggregators = std::min<std::size_t>(aggs, cfg.max_threads);
    return cfg;
}

}  // namespace

int main() {
    sb::print_preamble("ablation_pool_vs_stack");
    const sb::EnvConfig env = sb::EnvConfig::load();

    sb::Table table("ablation_pool_vs_stack_upd100",
                    {"SEC_stack", "ElimPool_K2", "ElimPool_K4"});
    for (unsigned t : env.threads) {
        sb::RunConfig rcfg;
        rcfg.threads = t;
        rcfg.duration = std::chrono::milliseconds(env.duration_ms);
        rcfg.prefill = env.prefill;
        rcfg.mix = sec::kUpdateHeavy;
        rcfg.runs = env.runs;

        auto r1 = sb::run_throughput(
            [t] { return sec::make_stack<sec::SecStack<sb::Value>>(sb::tid_bound(t)); },
            rcfg);
        table.add(t, "SEC_stack", r1.mops);
        auto r2 = sb::run_throughput(
            [t] { return std::make_unique<PoolAsStack>(cfg_for(t, 2)); }, rcfg);
        table.add(t, "ElimPool_K2", r2.mops);
        auto r3 = sb::run_throughput(
            [t] { return std::make_unique<PoolAsStack>(cfg_for(t, 4)); }, rcfg);
        table.add(t, "ElimPool_K4", r3.mops);
        std::fprintf(stderr, "t=%-4u stack=%.2f poolK2=%.2f poolK4=%.2f Mops/s\n", t,
                     r1.mops, r2.mops, r3.mops);
    }
    table.print();
    return 0;
}
