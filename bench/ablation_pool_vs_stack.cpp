// ablation_pool_vs_stack — legacy driver, now a stub over the
// `ablation_pool` scenario (src/scenarios.cpp).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("ablation_pool"); }
