// table1_degrees.cpp — EXP4: SEC batching/elimination/combining degrees.
//
// Regenerates: Table 1 (Emerald), Table 2 (IceLake), Table 3 (Sapphire):
// for each update rate (100%/50%/10%), the average batch size, the percent
// of batched operations eliminated, and the percent applied by combiners,
// averaged across the thread grid exactly as the paper reports ("average
// size of batches ... across different thread counts").
//
// Expected shape (paper §C): batching degree grows with the update rate;
// %elimination sits in the 70-85% band for balanced mixes and dominates
// %combining.
#include <cstdio>

#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

struct DegreeRow {
    double batching = 0;
    double elim_pct = 0;
    double comb_pct = 0;
};

DegreeRow measure(const sb::EnvConfig& env, const sec::OpMix& mix) {
    DegreeRow row;
    unsigned points = 0;
    for (unsigned t : env.threads) {
        sec::Config cfg;
        cfg.max_threads = sb::tid_bound(t);
        cfg.collect_stats = true;
        auto make = [&cfg] { return std::make_unique<sec::SecStack<sb::Value>>(cfg); };

        // Reimplement the timed loop but keep the stack alive to read stats.
        auto stack = make();
        sb::RunConfig rcfg;
        rcfg.threads = t;
        rcfg.duration = std::chrono::milliseconds(env.duration_ms);
        rcfg.prefill = env.prefill;
        rcfg.mix = mix;
        rcfg.value_range = env.value_range;
        rcfg.runs = 1;
        (void)sb::run_throughput([&stack]() -> sec::SecStack<sb::Value>* {
            return stack.get();
        }, rcfg);

        const sec::StatsSnapshot s = stack->stats();
        if (s.batches == 0) continue;
        row.batching += s.batching_degree();
        row.elim_pct += s.elimination_pct();
        row.comb_pct += s.combining_pct();
        ++points;
        std::fprintf(stderr, "  %s t=%-4u batch=%.1f elim=%.0f%% comb=%.0f%%\n",
                     mix.name.data(), t, s.batching_degree(), s.elimination_pct(),
                     s.combining_pct());
    }
    if (points > 0) {
        row.batching /= points;
        row.elim_pct /= points;
        row.comb_pct /= points;
    }
    return row;
}

}  // namespace

int main() {
    sb::print_preamble("table1_degrees (EXP4)");
    const sb::EnvConfig env = sb::EnvConfig::load();

    DegreeRow rows[3];
    int i = 0;
    for (const sec::OpMix& mix : sec::kStandardMixes) rows[i++] = measure(env, mix);

    std::printf("\n== Table 1: SEC degree metrics ==\n");
    std::printf("%-18s %10s %10s %10s\n", "Workload ->", "100% upd", "50% upd",
                "10% upd");
    std::printf("%-18s %10.1f %10.1f %10.1f\n", "Batching Degree", rows[0].batching,
                rows[1].batching, rows[2].batching);
    std::printf("%-18s %9.0f%% %9.0f%% %9.0f%%\n", "%Elimination", rows[0].elim_pct,
                rows[1].elim_pct, rows[2].elim_pct);
    std::printf("%-18s %9.0f%% %9.0f%% %9.0f%%\n", "%Combining", rows[0].comb_pct,
                rows[1].comb_pct, rows[2].comb_pct);
    for (i = 0; i < 3; ++i) {
        std::printf("CSV,table1,%s,batching,%.2f\n", sec::kStandardMixes[i].name.data(),
                    rows[i].batching);
        std::printf("CSV,table1,%s,elimination_pct,%.2f\n",
                    sec::kStandardMixes[i].name.data(), rows[i].elim_pct);
        std::printf("CSV,table1,%s,combining_pct,%.2f\n",
                    sec::kStandardMixes[i].name.data(), rows[i].comb_pct);
    }
    return 0;
}
