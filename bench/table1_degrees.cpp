// table1_degrees — legacy EXP4 driver, now a stub over the `table1`
// scenario (src/scenarios.cpp; run `secbench table1` for the CLI).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("table1"); }
