// secbench.cpp — the unified scenario driver: every experiment the ten
// per-figure binaries used to hard-code, behind one CLI over the algorithm
// and scenario registries (workload/registry.hpp).
//
//   secbench --list
//   secbench fig2 --algos SEC,TRB --threads 1,4,16 --csv out.csv
//   secbench all --smoke
//
// Defaults layer over EnvConfig, so the SEC_BENCH_* environment knobs (and
// SEC_BENCH_PAPER=1) keep working; explicit flags win over the environment.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/sharded_stack.hpp"
#include "exec/topology.hpp"
#include "net/event_loop.hpp"
#include "workload/bench_json.hpp"
#include "workload/registry.hpp"
#include "workload/service.hpp"

namespace sb = sec::bench;

namespace {

int usage(std::FILE* out) {
    std::fprintf(out,
                 "usage:\n"
                 "  secbench --list\n"
                 "  secbench <scenario>... [options]\n"
                 "  secbench all [options]\n"
                 "options:\n"
                 "  --algos A,B,...    algorithm selection (default: the six "
                 "paper competitors)\n"
                 "  --threads 1,4,16   thread grid override\n"
                 "  --duration-ms N    measured window per data point\n"
                 "  --runs N           repetitions per data point\n"
                 "  --prefill N        nodes pushed before the window opens\n"
                 "  --value-range N    value universe for pushes\n"
                 "  --csv PATH         also write table,threads,column,value "
                 "rows to PATH\n"
                 "  --seed N           base seed for per-worker op-mix RNGs "
                 "(reproducible runs)\n"
                 "  --reclaim SCHEME   run selected algorithms over this "
                 "reclamation scheme\n"
                 "                     (ebr default; hp / qsbr / leak pick "
                 "the ALGO@scheme variants)\n"
                 "  --sweep SPEC       SEC tuning-surface cross-product, "
                 "e.g. agg=1:5,backoff=0:4096\n"
                 "                     (runs the 'sweep' scenario; ranges "
                 "are lo:hi[:step], '+' unions\n"
                 "                     values, backoff doubles from 64ns "
                 "without a step)\n"
                 "  --shards K         pin the 'sharding' scenario to one "
                 "shard count\n"
                 "  --load KOPS        offered load in Kops/s for the "
                 "'service' scenario\n"
                 "                     (and the 'knee' search's starting "
                 "probe)\n"
                 "  --arrival KIND     arrival process for 'service'/'knee': "
                 "poisson | burst\n"
                 "  --port N           'net_service': target an already-"
                 "running secserve on\n"
                 "                     127.0.0.1:N instead of an in-process "
                 "server\n"
                 "  --backend NAME     sec::net event backend: epoll | "
                 "iouring (iouring\n"
                 "                     needs a -DSEC_IOURING=ON build)\n"
                 "  --pin POLICY       worker placement: none | compact | "
                 "scatter | smt\n"
                 "                     (topology-aware cpu pinning; "
                 "best-effort where\n"
                 "                     affinity is restricted — see "
                 "DESIGN.md §13)\n"
                 "  --scenario NAME    alias for the positional scenario "
                 "argument\n"
                 "  --json PATH        write a BENCH_*.json perf snapshot "
                 "(every cell + run\n"
                 "                     metadata; REPRODUCING.md documents "
                 "the schema)\n"
                 "  --baseline PATH    re-run the pinned config a snapshot "
                 "records and compare\n"
                 "                     per cell (median-of-N + scale "
                 "normalization); exit 1 on\n"
                 "                     regressions beyond tolerance\n"
                 "  --repeats N        snapshot repetitions for the "
                 "median-of-N noise guard\n"
                 "                     (default 1; --baseline defaults to "
                 "the baseline's count)\n"
                 "  --tolerance PCT    gate width for --baseline, percent "
                 "(default 10)\n"
                 "  --smoke            tiny smoke preset (25 ms, 2 threads, 1 "
                 "run)\n"
                 "  --paper            the paper's 5 s x 5-run methodology\n"
                 "environment: SEC_BENCH_DURATION_MS / _RUNS / _THREADS / "
                 "_PREFILL / _VALUE_RANGE / _SEED / _RECLAIM / _SHARDS / "
                 "_LOAD / _ARRIVAL / _PORT / _BACKEND / _PIN / _COUNTERS / "
                 "_PAPER\n");
    return out == stderr ? 2 : 0;
}

int list_registries() {
    std::printf("scenarios:\n");
    for (const sb::ScenarioSpec* s : sb::ScenarioRegistry::instance().all()) {
        std::printf("  %-18s %s\n", s->name.c_str(), s->title.c_str());
    }
    std::printf("algorithms:\n");
    for (const sb::AlgoSpec* a : sb::AlgorithmRegistry::instance().all()) {
        const std::string_view shape = sec::shape_name(a->shape);
        std::printf("  %-18s %-9s %s%s\n", a->name.c_str(),
                    std::string(shape).c_str(), a->description.c_str(),
                    a->default_set ? "" : " [extra]");
    }
    std::printf("reclaimers (--reclaim):\n");
    for (const sb::ReclaimerSpec* r : sb::ReclaimerRegistry::instance().all()) {
        std::printf("  %-18s %s\n", r->name.c_str(), r->description.c_str());
    }
    std::printf("net backends (--backend / SEC_BENCH_BACKEND):\n");
    for (const sec::net::BackendInfo& b : sec::net::backend_infos()) {
        std::printf("  %-18s %.*s%s\n", std::string(b.name).c_str(),
                    static_cast<int>(b.description.size()),
                    b.description.data(),
                    b.available ? "" : " [not in this build]");
    }
    std::printf(
        "net env: SEC_BENCH_PORT (net_service/secserve target port; 0 or\n"
        "unset = in-process server on an ephemeral port), SEC_BENCH_BACKEND\n"
        "(event backend name, whole-value-or-nothing like every other "
        "knob)\n");
    return 0;
}

// Strict parse of a --shards / SEC_BENCH_SHARDS value: a typo must not
// silently fall back to a different experiment (the sweep engine's loud
// clamp warning is the precedent). Returns 0 on garbage or out-of-range.
unsigned parse_shards(const char* value) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || parsed == 0 ||
        parsed > sec::shard::kMaxShards) {
        return 0;
    }
    return static_cast<unsigned>(parsed);
}

std::vector<std::string> split_csv(const char* arg) {
    std::vector<std::string> out;
    std::string cur;
    for (const char* p = arg; ; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
            if (*p == '\0') break;
        } else if (*p != ' ') {
            cur += *p;
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> scenarios;
    std::vector<std::string> algo_names;
    const char* csv_path = nullptr;
    const char* json_path = nullptr;
    const char* baseline_path = nullptr;
    unsigned repeats = 0;      // 0 = default (1, or the baseline's count)
    double tolerance = 10.0;   // --baseline gate width, percent
    const char* reclaim_scheme = nullptr;
    const char* sweep_spec = nullptr;
    unsigned shards = 0;
    double load_kops = 0;
    const char* arrival = nullptr;
    long long port = -1;  // -1 = not given (0 is a valid "in-process" value)
    const char* backend = nullptr;
    const char* pin = nullptr;
    bool smoke = false;
    bool run_all = false;

    // Flags that override EnvConfig after it loads (0 / empty = not given).
    unsigned duration_ms = 0, runs = 0;
    long long prefill = -1, value_range = -1;
    long long seed = -1;
    std::vector<unsigned> thread_grid;

    auto next_value = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "secbench: %s needs a value\n", flag);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            return usage(stdout);
        } else if (std::strcmp(arg, "--list") == 0) {
            return list_registries();
        } else if (std::strcmp(arg, "--algos") == 0) {
            algo_names = split_csv(next_value(i, arg));
        } else if (std::strcmp(arg, "--threads") == 0) {
            for (const std::string& s : split_csv(next_value(i, arg))) {
                const unsigned long v = std::strtoul(s.c_str(), nullptr, 10);
                if (v > 0) thread_grid.push_back(static_cast<unsigned>(v));
            }
        } else if (std::strcmp(arg, "--duration-ms") == 0) {
            duration_ms = static_cast<unsigned>(
                std::strtoul(next_value(i, arg), nullptr, 10));
        } else if (std::strcmp(arg, "--runs") == 0) {
            runs = static_cast<unsigned>(
                std::strtoul(next_value(i, arg), nullptr, 10));
        } else if (std::strcmp(arg, "--prefill") == 0) {
            prefill = std::strtoll(next_value(i, arg), nullptr, 10);
        } else if (std::strcmp(arg, "--value-range") == 0) {
            value_range = std::strtoll(next_value(i, arg), nullptr, 10);
        } else if (std::strcmp(arg, "--csv") == 0) {
            csv_path = next_value(i, arg);
        } else if (std::strcmp(arg, "--json") == 0) {
            json_path = next_value(i, arg);
        } else if (std::strcmp(arg, "--baseline") == 0) {
            baseline_path = next_value(i, arg);
        } else if (std::strcmp(arg, "--repeats") == 0) {
            // Strict like --shards: a typo must not silently collapse the
            // noise guard to a single run.
            const char* value = next_value(i, arg);
            char* end = nullptr;
            const unsigned long parsed = std::strtoul(value, &end, 10);
            if (end == value || *end != '\0' || parsed == 0 ||
                parsed > 1000) {
                std::fprintf(stderr,
                             "secbench: --repeats '%s' must be an integer "
                             "in [1, 1000]\n",
                             value);
                return 2;
            }
            repeats = static_cast<unsigned>(parsed);
        } else if (std::strcmp(arg, "--tolerance") == 0) {
            const char* value = next_value(i, arg);
            char* end = nullptr;
            tolerance = std::strtod(value, &end);
            if (end == value || *end != '\0' || !(tolerance >= 0)) {
                std::fprintf(stderr,
                             "secbench: --tolerance '%s' must be a "
                             "non-negative percent value\n",
                             value);
                return 2;
            }
        } else if (std::strcmp(arg, "--seed") == 0) {
            seed = std::strtoll(next_value(i, arg), nullptr, 10);
        } else if (std::strcmp(arg, "--reclaim") == 0) {
            reclaim_scheme = next_value(i, arg);
        } else if (std::strcmp(arg, "--sweep") == 0) {
            sweep_spec = next_value(i, arg);
        } else if (std::strcmp(arg, "--shards") == 0) {
            const char* value = next_value(i, arg);
            shards = parse_shards(value);
            if (shards == 0) {
                std::fprintf(stderr,
                             "secbench: --shards '%s' must be an integer in "
                             "[1, %zu]\n",
                             value, sec::shard::kMaxShards);
                return 2;
            }
        } else if (std::strcmp(arg, "--load") == 0) {
            // Strict like --shards: a mistyped load must not silently run
            // the scenario's default offered load instead.
            const char* value = next_value(i, arg);
            char* end = nullptr;
            load_kops = std::strtod(value, &end);
            if (end == value || *end != '\0' || !(load_kops > 0)) {
                std::fprintf(stderr,
                             "secbench: --load '%s' must be a positive "
                             "Kops/s value\n",
                             value);
                return 2;
            }
        } else if (std::strcmp(arg, "--port") == 0) {
            // Strict like --shards: a typo must not silently swing between
            // remote and in-process measurement.
            const char* value = next_value(i, arg);
            char* end = nullptr;
            const long long parsed = std::strtoll(value, &end, 10);
            if (end == value || *end != '\0' || parsed < 0 ||
                parsed > 65535) {
                std::fprintf(stderr,
                             "secbench: --port '%s' must be an integer in "
                             "[0, 65535]\n",
                             value);
                return 2;
            }
            port = parsed;
        } else if (std::strcmp(arg, "--backend") == 0) {
            backend = next_value(i, arg);
            if (!sec::net::backend_known(backend)) {
                std::fprintf(stderr,
                             "secbench: --backend '%s' must be epoll or "
                             "iouring\n",
                             backend);
                return 2;
            }
        } else if (std::strcmp(arg, "--pin") == 0) {
            // Strict like --shards: a typo must not silently run unpinned
            // and masquerade as a placement measurement.
            pin = next_value(i, arg);
            if (!sec::topo::parse_pin_policy(pin)) {
                std::fprintf(stderr,
                             "secbench: --pin '%s' must be none, compact, "
                             "scatter, or smt\n",
                             pin);
                return 2;
            }
        } else if (std::strcmp(arg, "--arrival") == 0) {
            arrival = next_value(i, arg);
            if (!sb::parse_arrival(arrival)) {
                std::fprintf(stderr,
                             "secbench: --arrival '%s' must be poisson or "
                             "burst\n",
                             arrival);
                return 2;
            }
        } else if (std::strcmp(arg, "--scenario") == 0) {
            // True alias for the positional form — including `all`.
            const char* name = next_value(i, arg);
            if (std::strcmp(name, "all") == 0) {
                run_all = true;
            } else {
                scenarios.push_back(name);
            }
        } else if (std::strcmp(arg, "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(arg, "--paper") == 0) {
            setenv("SEC_BENCH_PAPER", "1", 1);
        } else if (std::strcmp(arg, "all") == 0) {
            run_all = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "secbench: unknown option '%s'\n", arg);
            return usage(stderr);
        } else {
            scenarios.push_back(arg);
        }
    }
    // --sweep SPEC implies the sweep scenario when none was named (so
    // `secbench --sweep agg=1:5,backoff=0:4096` just works); with explicit
    // scenarios it only parameterizes a `sweep` among them.
    if (sweep_spec != nullptr && scenarios.empty() && !run_all) {
        scenarios.push_back("sweep");
    }
    if (!run_all && scenarios.empty() && baseline_path == nullptr) {
        return usage(stderr);
    }

    sb::ScenarioContext ctx;
    ctx.env = sb::EnvConfig::load();
    ctx.smoke = smoke;
    if (sweep_spec != nullptr) ctx.sweep_spec = sweep_spec;
    if (shards == 0) {
        if (const char* env_shards = std::getenv("SEC_BENCH_SHARDS")) {
            shards = parse_shards(env_shards);
            if (shards == 0 && *env_shards != '\0') {
                // Environment garbage is a warning, not an error — the
                // lenient contract every other SEC_BENCH_* knob follows.
                std::fprintf(stderr,
                             "secbench: ignoring SEC_BENCH_SHARDS='%s' (not "
                             "an integer in [1, %zu])\n",
                             env_shards, sec::shard::kMaxShards);
            }
        }
    }
    ctx.shards = shards;
    if (load_kops == 0) {
        if (const char* env_load = std::getenv("SEC_BENCH_LOAD")) {
            char* end = nullptr;
            const double parsed = std::strtod(env_load, &end);
            if (end != env_load && *end == '\0' && parsed > 0) {
                load_kops = parsed;
            } else if (*env_load != '\0') {
                // Environment garbage is a warning, not an error — the
                // lenient contract every other SEC_BENCH_* knob follows.
                std::fprintf(stderr,
                             "secbench: ignoring SEC_BENCH_LOAD='%s' (not a "
                             "positive Kops/s value)\n",
                             env_load);
            }
        }
    }
    ctx.load_kops = load_kops;
    if (arrival == nullptr) {
        if (const char* env_arrival = std::getenv("SEC_BENCH_ARRIVAL")) {
            if (sb::parse_arrival(env_arrival)) {
                arrival = env_arrival;
            } else if (*env_arrival != '\0') {
                std::fprintf(stderr,
                             "secbench: ignoring SEC_BENCH_ARRIVAL='%s' "
                             "(poisson or burst)\n",
                             env_arrival);
            }
        }
    }
    if (arrival != nullptr) ctx.arrival = arrival;
    // SEC_BENCH_PORT / SEC_BENCH_BACKEND already sit in ctx.env (strict
    // parsing with loud warnings in EnvConfig::load); flags override.
    if (port >= 0) ctx.env.port = static_cast<unsigned>(port);
    if (backend != nullptr) ctx.env.backend = backend;
    if (smoke) {
        // Tiny budget: every scenario exercised, nothing measured seriously.
        ctx.env.duration_ms = 25;
        ctx.env.runs = 1;
        ctx.env.threads = {2};
        ctx.env.prefill = std::min<std::size_t>(ctx.env.prefill, 1000);
    }
    // --baseline: re-run the pinned configuration the snapshot records —
    // scenario list, algorithm selection, and the effective EnvConfig — so
    // the compare is like-for-like by construction. Explicit flags given
    // alongside still win (they are applied below).
    sb::json::Snapshot baseline;
    if (baseline_path != nullptr) {
        std::string err;
        if (!sb::json::read_snapshot(baseline_path, baseline, &err)) {
            std::fprintf(stderr, "secbench: cannot read baseline '%s': %s\n",
                         baseline_path, err.c_str());
            return 2;
        }
        if (scenarios.empty() && !run_all) {
            scenarios = split_csv(baseline.meta.scenarios.c_str());
            if (scenarios.empty()) {
                std::fprintf(stderr,
                             "secbench: baseline '%s' names no scenarios and "
                             "none were given\n",
                             baseline_path);
                return 2;
            }
        }
        if (algo_names.empty() && !baseline.meta.algos.empty()) {
            algo_names = split_csv(baseline.meta.algos.c_str());
        }
        if (reclaim_scheme == nullptr && !baseline.meta.reclaim.empty()) {
            reclaim_scheme = baseline.meta.reclaim.c_str();
        }
        ctx.smoke = smoke || baseline.meta.smoke;
        if (baseline.meta.duration_ms > 0) {
            ctx.env.duration_ms = baseline.meta.duration_ms;
        }
        if (baseline.meta.runs > 0) ctx.env.runs = baseline.meta.runs;
        if (!baseline.meta.threads.empty()) {
            ctx.env.threads = baseline.meta.threads;
        }
        ctx.env.prefill = baseline.meta.prefill;
        if (baseline.meta.value_range > 0) {
            ctx.env.value_range = baseline.meta.value_range;
        }
        ctx.env.seed = baseline.meta.seed;
        if (!baseline.meta.pin.empty()) ctx.env.pin = baseline.meta.pin;
        if (repeats == 0) repeats = std::max(1u, baseline.meta.repeats);
    }
    if (pin != nullptr) ctx.env.pin = pin;
    if (duration_ms > 0) ctx.env.duration_ms = duration_ms;
    if (runs > 0) ctx.env.runs = runs;
    if (prefill >= 0) ctx.env.prefill = static_cast<std::size_t>(prefill);
    if (value_range > 0) {
        ctx.env.value_range = static_cast<std::size_t>(value_range);
    }
    if (seed >= 0) ctx.env.seed = static_cast<std::uint64_t>(seed);
    if (!thread_grid.empty()) {
        // Same live-thread bound the environment path applies in
        // EnvConfig::load — a warned clamp, not a silent rewrite.
        sb::clamp_thread_grid(thread_grid, "--threads");
        ctx.env.threads = thread_grid;
    }

    auto& algo_reg = sb::AlgorithmRegistry::instance();
    if (algo_names.empty()) {
        ctx.algos = algo_reg.default_set();
    } else {
        for (const std::string& name : algo_names) {
            const sb::AlgoSpec* spec = algo_reg.find(name);
            if (spec == nullptr) {
                std::fprintf(stderr,
                             "secbench: unknown algorithm '%s'; available: %s\n",
                             name.c_str(), algo_reg.names_csv().c_str());
                return 2;
            }
            ctx.algos.push_back(spec);
        }
    }

    // --reclaim SCHEME (or SEC_BENCH_RECLAIM): rebind the selection to the
    // ALGO@scheme variants. "ebr" is the plain names' built-in binding, so
    // it leaves the selection (and thus all scenario keys) untouched.
    if (reclaim_scheme == nullptr) {
        reclaim_scheme = std::getenv("SEC_BENCH_RECLAIM");
    }
    if (reclaim_scheme != nullptr && *reclaim_scheme != '\0') {
        auto& rec_reg = sb::ReclaimerRegistry::instance();
        if (rec_reg.find(reclaim_scheme) == nullptr) {
            std::fprintf(stderr,
                         "secbench: unknown reclaimer '%s'; available: %s\n",
                         reclaim_scheme, rec_reg.names_csv().c_str());
            return 2;
        }
        std::vector<const sb::AlgoSpec*> mapped;
        for (const sb::AlgoSpec* spec : ctx.algos) {
            // A registered variant IS that scheme's binding whether or not
            // it can also borrow an external DomainHandle — the sharded
            // variants keep per-shard private domains (supports_domain is
            // false) yet still compose with --reclaim.
            const sb::AlgoSpec* variant =
                algo_reg.find_variant(spec->base, reclaim_scheme);
            if (variant != nullptr) {
                // Distinct selections can map to one variant (SEC,SEC@hp
                // --reclaim hp); run it once, not per alias.
                if (std::find(mapped.begin(), mapped.end(), variant) ==
                    mapped.end()) {
                    mapped.push_back(variant);
                }
            } else {
                std::fprintf(stderr,
                             "secbench: %s has no '%s' variant; dropping "
                             "it from the selection\n",
                             spec->name.c_str(), reclaim_scheme);
            }
        }
        if (mapped.empty()) {
            std::fprintf(stderr,
                         "secbench: no selected algorithm supports "
                         "--reclaim %s\n",
                         reclaim_scheme);
            return 2;
        }
        ctx.algos = std::move(mapped);
        ctx.reclaim = reclaim_scheme;
    }

    // A shape-mixed selection benchmarks apples against oranges — a LIFO
    // and a FIFO structure do different work per operation — so refuse it
    // loudly instead of printing a table that invites the comparison.
    // `unordered` (POOL) composes with either shape: dropping order is the
    // documented point of the ablation_pool comparison. Checked after the
    // --reclaim rebinding so the FINAL selection is what is judged.
    {
        std::string lifo_names, fifo_names;
        for (const sb::AlgoSpec* spec : ctx.algos) {
            std::string* bucket =
                spec->shape == sec::ContainerShape::lifo   ? &lifo_names
                : spec->shape == sec::ContainerShape::fifo ? &fifo_names
                                                           : nullptr;
            if (bucket == nullptr) continue;
            if (!bucket->empty()) *bucket += ',';
            *bucket += spec->name;
        }
        if (!lifo_names.empty() && !fifo_names.empty()) {
            std::fprintf(stderr,
                         "secbench: --algos mixes shapes within one scenario "
                         "run: lifo {%s} vs fifo {%s}. A cross-shape table "
                         "is apples against oranges — pick one shape per "
                         "invocation (see `secbench --list`)\n",
                         lifo_names.c_str(), fifo_names.c_str());
            return 2;
        }
    }

    std::FILE* csv = nullptr;
    if (csv_path != nullptr) {
        csv = std::fopen(csv_path, "w");
        if (csv == nullptr) {
            std::fprintf(stderr, "secbench: cannot open '%s' for writing\n",
                         csv_path);
            return 2;
        }
        sb::Table::write_csv_header(csv);
        ctx.csv = csv;
    }

    if (run_all) {
        scenarios.clear();
        for (const sb::ScenarioSpec* s : sb::ScenarioRegistry::instance().all()) {
            scenarios.push_back(s->name);
        }
    }

    // Snapshot runs: repeat the whole scenario list `repeats` times, each
    // into its own cell set, and keep per-cell medians (the noise guard).
    // Without --json/--baseline there is nothing to median, so one pass.
    const bool want_snapshot = json_path != nullptr || baseline_path != nullptr;
    const unsigned reps = want_snapshot ? std::max(1u, repeats) : 1;
    if (!want_snapshot && repeats > 1) {
        std::fprintf(stderr,
                     "secbench: --repeats has no effect without --json or "
                     "--baseline\n");
    }
    std::vector<sb::json::Snapshot> snaps;
    int rc = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        sb::json::Snapshot snap;
        ctx.json = want_snapshot ? &snap : nullptr;
        if (reps > 1) {
            std::fprintf(stderr, "# snapshot repeat %u/%u\n", rep + 1, reps);
        }
        for (const std::string& name : scenarios) {
            const int one = sb::run_scenario(name, ctx);
            if (one != 0 && rc == 0) rc = one;
        }
        if (want_snapshot) snaps.push_back(std::move(snap));
    }
    if (csv != nullptr) std::fclose(csv);

    if (want_snapshot) {
        sb::json::Snapshot current = sb::json::median_of(snaps);
        sb::json::Metadata meta = sb::json::build_metadata();
        auto join = [](const auto& items, auto&& name_of) {
            std::string out;
            for (const auto& item : items) {
                if (!out.empty()) out += ',';
                out += name_of(item);
            }
            return out;
        };
        meta.scenarios =
            join(scenarios, [](const std::string& s) { return s; });
        meta.algos =
            join(ctx.algos, [](const sb::AlgoSpec* a) { return a->name; });
        meta.reclaim = ctx.reclaim;
        meta.smoke = ctx.smoke;
        meta.threads = ctx.env.threads;
        meta.duration_ms = ctx.env.duration_ms;
        meta.runs = ctx.env.runs;
        meta.repeats = reps;
        meta.prefill = ctx.env.prefill;
        meta.value_range = ctx.env.value_range;
        meta.seed = ctx.env.seed;
        meta.pin = ctx.env.pin.empty() ? "none" : ctx.env.pin;
        current.meta = std::move(meta);

        if (json_path != nullptr) {
            std::string err;
            if (sb::json::write_snapshot(current, json_path, &err)) {
                std::fprintf(stderr, "# wrote %zu cells to %s\n",
                             current.cells.size(), json_path);
            } else {
                std::fprintf(stderr, "secbench: %s\n", err.c_str());
                if (rc == 0) rc = 2;
            }
        }
        if (baseline_path != nullptr) {
            // Topology drift warns but never fails: the compare already
            // scale-normalizes cross-machine speed, but a shape change
            // (socket count, SMT, pin policy) is context every surprising
            // per-cell delta needs.
            const std::string drift =
                sb::json::topology_mismatch(baseline.meta, current.meta);
            if (!drift.empty()) {
                std::fprintf(stderr,
                             "secbench: warning: baseline topology differs "
                             "from this host: %s (refresh the snapshot here "
                             "to silence; see REPRODUCING.md §6)\n",
                             drift.c_str());
            }
            const sb::json::CompareResult cmp =
                sb::json::compare(baseline, current, tolerance);
            sb::json::print_compare(cmp, stdout);
            if (!cmp.ok() && rc == 0) rc = 1;
        }
    }
    return rc;
}
