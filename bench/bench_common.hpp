// bench_common.hpp — shared plumbing for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sec.hpp"
#include "workload/env.hpp"
#include "workload/reporter.hpp"
#include "workload/runner.hpp"

namespace sec::bench {

using Value = std::uint64_t;

// Thread-bound passed to stack constructors: the N workers plus the main
// thread (and a little slack for gtest-style environments).
inline std::size_t tid_bound(unsigned threads) {
    return std::min<std::size_t>(kMaxThreads, threads + 8);
}

// Run one (stack type, mix, thread grid) series and add it to `table`.
template <class S>
void run_series(Table& table, const EnvConfig& env, const OpMix& mix,
                std::string_view column) {
    for (unsigned t : env.threads) {
        RunConfig cfg;
        cfg.threads = t;
        cfg.duration = std::chrono::milliseconds(env.duration_ms);
        cfg.prefill = env.prefill;
        cfg.mix = mix;
        cfg.value_range = env.value_range;
        cfg.runs = env.runs;
        const RunResult r =
            run_throughput([t] { return make_stack<S>(tid_bound(t)); }, cfg);
        table.add(t, column, r.mops);
        std::fprintf(stderr, "  %-10.*s t=%-4u %8.2f Mops/s\n",
                     static_cast<int>(column.size()), column.data(), t, r.mops);
    }
}

// The six competitors of Figure 2/3, in the paper's legend order.
template <class F>
void for_each_algorithm(F&& f) {
    f.template operator()<CcStack<Value>>("CC");
    f.template operator()<EbStack<Value>>("EB");
    f.template operator()<FcStack<Value>>("FC");
    f.template operator()<SecStack<Value>>("SEC");
    f.template operator()<TreiberStack<Value>>("TRB");
    f.template operator()<TsiStack<Value>>("TSI");
}

inline std::vector<std::string> algorithm_columns() {
    return {"CC", "EB", "FC", "SEC", "TRB", "TSI"};
}

// SEC with an explicit aggregator count (Figure 4 ablation).
inline std::unique_ptr<SecStack<Value>> make_sec_agg(std::size_t aggs, unsigned threads) {
    Config cfg;
    cfg.num_aggregators = aggs;
    cfg.max_threads = tid_bound(threads);
    if (cfg.num_aggregators > cfg.max_threads) cfg.num_aggregators = cfg.max_threads;
    return std::make_unique<SecStack<Value>>(cfg);
}

}  // namespace sec::bench
