// bench_common.hpp — the statically-typed series helper for bench code that
// wants a concrete stack type at compile time (the in-tree drivers are
// registry stubs now; workload/registry.hpp owns the algorithm list,
// `Value`, `tid_bound`, and `algorithm_columns`, and the stderr progress
// line is `progress_line` in workload/reporter.hpp). Compiled by
// tests/registry_test.cpp so it cannot rot unnoticed.
#pragma once

#include "sec.hpp"
#include "workload/env.hpp"
#include "workload/registry.hpp"
#include "workload/reporter.hpp"
#include "workload/runner.hpp"

namespace sec::bench {

// Run one (stack type, mix, thread grid) series and add it to `table`.
template <class S>
void run_series(Table& table, const EnvConfig& env, const OpMix& mix,
                std::string_view column) {
    for (unsigned t : env.threads) {
        RunConfig cfg;
        cfg.threads = t;
        cfg.duration = std::chrono::milliseconds(env.duration_ms);
        cfg.prefill = env.prefill;
        cfg.mix = mix;
        cfg.value_range = env.value_range;
        cfg.runs = env.runs;
        const RunResult r =
            run_throughput([t] { return make_stack<S>(tid_bound(t)); }, cfg);
        table.add(t, column, r.mops);
        progress_line(column, t, r.mops);
    }
}

}  // namespace sec::bench
