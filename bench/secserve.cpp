// secserve — the standalone sec::net server (DESIGN.md §11): any
// registry-built stack behind a TCP port, servable by a second process.
//
//   secserve --algo SEC@shard4 --port 7777 --backend epoll
//
// Defaults come from the environment (SEC_BENCH_PORT / SEC_BENCH_BACKEND,
// strict parsing in workload/env.hpp); flags override. Port 0 binds an
// ephemeral port — the bound port is printed on stdout (flushed) so a
// wrapper script can read it. Runs until SIGINT/SIGTERM, then prints the
// server counters and exits 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "exec/topology.hpp"
#include "net/server.hpp"
#include "workload/registry.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

void usage() {
    std::fprintf(
        stderr,
        "usage: secserve [--algo NAME] [--port N] [--backend NAME]\n"
        "                [--pin POLICY] [--list]\n"
        "  --algo NAME     registry algorithm to serve (default SEC);\n"
        "                  any ALGO@scheme name, e.g. SEC@shard4\n"
        "  --port N        TCP port on 127.0.0.1 (default SEC_BENCH_PORT,\n"
        "                  else 0 = ephemeral; the bound port is printed)\n"
        "  --backend NAME  event backend (default SEC_BENCH_BACKEND, else\n"
        "                  epoll); iouring needs -DSEC_IOURING=ON\n"
        "  --pin POLICY    pin the event-loop thread: none | compact |\n"
        "                  scatter | smt (default SEC_BENCH_PIN, else none)\n"
        "  --list          print algorithms and backends, then exit\n"
        "env: SEC_BENCH_PORT, SEC_BENCH_BACKEND, SEC_BENCH_PIN "
        "(see secbench --list)\n");
}

bool parse_port(const char* v, unsigned& out) {
    if (v == nullptr || *v == '\0' || v[0] == '-') return false;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(v, &end, 10);
    if (end == v || *end != '\0' || parsed > 65535) return false;
    out = static_cast<unsigned>(parsed);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    using sec::bench::AlgorithmRegistry;

    sec::bench::EnvConfig env = sec::bench::EnvConfig::load();
    std::string algo = "SEC";
    unsigned port = env.port;
    std::string backend = env.backend;
    std::string pin = env.pin;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "secserve: %s needs a value\n",
                             argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (arg == "--list") {
            std::printf("algorithms:\n");
            for (const auto* a : AlgorithmRegistry::instance().all()) {
                std::printf("  %-12s %s\n", a->name.c_str(),
                            a->description.c_str());
            }
            std::printf("backends:\n");
            for (const auto& b : sec::net::backend_infos()) {
                std::printf("  %-12s %.*s%s\n", std::string(b.name).c_str(),
                            static_cast<int>(b.description.size()),
                            b.description.data(),
                            b.available ? "" : " [not in this build]");
            }
            return 0;
        }
        if (arg == "--algo") {
            const char* v = need_value();
            if (v == nullptr) return 2;
            algo = v;
            continue;
        }
        if (arg == "--port") {
            const char* v = need_value();
            if (v == nullptr || !parse_port(v, port)) {
                std::fprintf(stderr,
                             "secserve: --port wants an integer in "
                             "[0, 65535], got '%s'\n",
                             v ? v : "");
                return 2;
            }
            continue;
        }
        if (arg == "--backend") {
            const char* v = need_value();
            if (v == nullptr) return 2;
            if (!sec::net::backend_known(v)) {
                std::fprintf(stderr,
                             "secserve: unknown backend '%s' (epoll, "
                             "iouring)\n",
                             v);
                return 2;
            }
            backend = v;
            continue;
        }
        if (arg == "--pin") {
            const char* v = need_value();
            if (v == nullptr) return 2;
            if (!sec::topo::parse_pin_policy(v)) {
                std::fprintf(stderr,
                             "secserve: --pin '%s' must be none, compact, "
                             "scatter, or smt\n",
                             v);
                return 2;
            }
            pin = v;
            continue;
        }
        std::fprintf(stderr, "secserve: unknown argument '%s'\n",
                     argv[i]);
        usage();
        return 2;
    }

    const sec::bench::AlgoSpec* spec =
        AlgorithmRegistry::instance().find(algo);
    if (spec == nullptr) {
        std::fprintf(stderr, "secserve: unknown algorithm '%s' (have: %s)\n",
                     algo.c_str(),
                     AlgorithmRegistry::instance().names_csv().c_str());
        return 2;
    }

    // The event loop is the only thread that touches the stack; a small
    // thread bound keeps per-thread structures (combining slots, EBR tids)
    // tight.
    sec::bench::StackParams params;
    params.threads = 2;
    sec::AnyStack stack = spec->make(params);

    sec::net::ServerConfig cfg;
    cfg.port = static_cast<std::uint16_t>(port);
    cfg.backend = backend;
    cfg.pin = sec::topo::parse_pin_policy(pin).value_or(
        sec::topo::PinPolicy::kNone);
    sec::net::SecServer server(std::move(stack), std::move(cfg));
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "secserve: %s\n", err.c_str());
        return 1;
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::printf("secserve: listening on 127.0.0.1:%u algo=%s backend=%.*s\n",
                static_cast<unsigned>(server.port()), spec->name.c_str(),
                static_cast<int>(server.backend_name().size()),
                server.backend_name().data());
    std::fflush(stdout);

    while (!g_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    server.stop();
    const sec::net::ServerStats s = server.stats();
    std::printf(
        "secserve: served %llu requests over %llu connections "
        "(pushes=%llu pops=%llu empties=%llu batches=%llu max_batch=%llu)\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.pushes),
        static_cast<unsigned long long>(s.pops),
        static_cast<unsigned long long>(s.empties),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.max_batch));
    return 0;
}
