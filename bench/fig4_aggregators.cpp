// fig4_aggregators.cpp — EXP3: SEC self-comparison with 1..5 aggregators.
//
// Regenerates: Figure 4 (Emerald), Figures 7-8 (IceLake), Figures 11-12
// (Sapphire): 100%/50%/10% update mixes plus push-only and pop-only.
// Expected shape (paper §6): one aggregator concentrates freezing/combining
// overhead and loses at high thread counts on update-heavy loads; 2-4
// aggregators are the sweet spot at 100% updates; push-only prefers more
// aggregators (no elimination to lose); five aggregators spread threads too
// thin for elimination on mixed loads.
#include "bench_common.hpp"

namespace sb = sec::bench;

namespace {

void run_agg_series(sb::Table& table, const sb::EnvConfig& env, const sec::OpMix& mix) {
    for (std::size_t aggs = 1; aggs <= 5; ++aggs) {
        const std::string column = "SEC_Agg" + std::to_string(aggs);
        for (unsigned t : env.threads) {
            sb::RunConfig cfg;
            cfg.threads = t;
            cfg.duration = std::chrono::milliseconds(env.duration_ms);
            cfg.prefill = env.prefill;
            cfg.mix = mix;
            cfg.value_range = env.value_range;
            cfg.runs = env.runs;
            const sb::RunResult r = sb::run_throughput(
                [aggs, t] { return sb::make_sec_agg(aggs, t); }, cfg);
            table.add(t, column, r.mops);
            std::fprintf(stderr, "  %-10s t=%-4u %8.2f Mops/s\n", column.c_str(), t,
                         r.mops);
        }
    }
}

}  // namespace

int main() {
    sb::print_preamble("fig4_aggregators (EXP3)");
    sb::EnvConfig env = sb::EnvConfig::load();

    std::vector<std::string> columns;
    for (int a = 1; a <= 5; ++a) columns.push_back("SEC_Agg" + std::to_string(a));

    for (const sec::OpMix& mix : sec::kStandardMixes) {
        sb::Table table(std::string("fig4_") + std::string(mix.name), columns);
        std::fprintf(stderr, "workload %s\n", mix.name.data());
        run_agg_series(table, env, mix);
        table.print();
    }
    {
        sb::Table table("fig4_push_only", columns);
        std::fprintf(stderr, "workload push-only\n");
        run_agg_series(table, env, sec::kPushOnly);
        table.print();
    }
    {
        // Prefill proportional to expected pop volume so the window measures
        // real pops rather than EMPTY returns (the paper's fixed 1000-node
        // prefill drains within milliseconds; see EXPERIMENTS.md).
        sb::EnvConfig pop_env = env;
        const std::size_t volume = static_cast<std::size_t>(
            25e6 * (static_cast<double>(env.duration_ms) / 1000.0) * 1.3);
        pop_env.prefill = std::min<std::size_t>(
            std::max<std::size_t>(env.prefill, volume), 40'000'000);
        sb::Table table("fig4_pop_only", columns);
        std::fprintf(stderr, "workload pop-only\n");
        run_agg_series(table, pop_env, sec::kPopOnly);
        table.print();
    }
    return 0;
}
