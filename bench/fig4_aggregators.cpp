// fig4_aggregators — legacy EXP3 driver, now a stub over the `fig4`
// scenario (src/scenarios.cpp; run `secbench fig4` for the CLI).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("fig4"); }
