// latency_fairness.cpp — per-operation latency percentiles, all six stacks.
//
// Backs the paper's §1 claim that SEC "achieves better throughput without
// impacting the performance of operations disproportionately": combining
// designs can starve individual operations (one waiter stuck behind a long
// combiner stint) even with good aggregate throughput. This bench runs the
// update-heavy mix and reports mean / p50 / p99 / p999 per-op latency so
// the tail behaviour of each design is visible next to its throughput.
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "workload/histogram.hpp"

namespace sb = sec::bench;

namespace {

template <class S>
void run_latency(const sb::EnvConfig& env, unsigned threads, const char* name) {
    auto stack = sec::make_stack<S>(sb::tid_bound(threads));
    std::atomic<bool> stop{false};
    std::vector<sec::CacheAligned<sb::LatencyHistogram>> hists(threads);
    std::barrier sync(static_cast<std::ptrdiff_t>(threads) + 1);

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            sec::Xoshiro256 rng(0xFEED ^ (t * 0x9E3779B97F4A7C15ull));
            for (std::size_t i = 0; i < env.prefill / threads; ++i) {
                stack->push(rng.next_below(env.value_range));
            }
            sync.arrive_and_wait();
            auto& hist = *hists[t];
            while (!stop.load(std::memory_order_relaxed)) {
                const bool is_push = rng.next_below(2) == 0;
                const auto t0 = std::chrono::steady_clock::now();
                if (is_push) {
                    stack->push(rng.next_below(env.value_range));
                } else {
                    (void)stack->pop();
                }
                const auto t1 = std::chrono::steady_clock::now();
                hist.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                        .count()));
            }
        });
    }
    sync.arrive_and_wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(env.duration_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();

    sb::LatencyHistogram merged;
    for (const auto& h : hists) merged.merge_from(*h);
    std::printf("%-6s t=%-4u ops=%-10llu mean=%8.0fns p50=%8lluns p99=%8lluns "
                "p999=%9lluns\n",
                name, threads, static_cast<unsigned long long>(merged.total()),
                merged.mean_ns(),
                static_cast<unsigned long long>(merged.quantile_ns(0.50)),
                static_cast<unsigned long long>(merged.quantile_ns(0.99)),
                static_cast<unsigned long long>(merged.quantile_ns(0.999)));
    std::printf("CSV,latency_upd100,%s,%u,%.0f,%llu,%llu,%llu\n", name, threads,
                merged.mean_ns(),
                static_cast<unsigned long long>(merged.quantile_ns(0.50)),
                static_cast<unsigned long long>(merged.quantile_ns(0.99)),
                static_cast<unsigned long long>(merged.quantile_ns(0.999)));
}

struct LatencyRunner {
    const sb::EnvConfig& env;
    unsigned threads;
    template <class S>
    void operator()(const char* name) const {
        run_latency<S>(env, threads, name);
    }
};

}  // namespace

int main() {
    sb::print_preamble("latency_fairness (supports paper §1 latency claim)");
    const sb::EnvConfig env = sb::EnvConfig::load();
    std::printf("# columns: mean, p50, p99, p999 per-op latency, upd100 mix\n");
    for (unsigned t : env.threads) {
        sb::for_each_algorithm(LatencyRunner{env, t});
    }
    return 0;
}
