// latency_fairness — legacy per-op latency driver, now a stub over the
// `latency` scenario (src/scenarios.cpp; run `secbench latency` for the CLI).
#include "workload/registry.hpp"

int main() { return sec::bench::run_legacy_scenario("latency"); }
