// micro_ops.cpp — google-benchmark micro suite backing the paper's §2/§6
// cost arguments:
//   * per-op latency of each stack, uncontended and contended;
//   * fetch&increment vs CAS under contention (why SEC's two-F&I
//     elimination beats EB's three-CAS protocol);
//   * EBR guard overhead (the reclamation tax every operation pays).
#include <benchmark/benchmark.h>

#include <atomic>

#include "sec.hpp"

namespace {

using Value = std::uint64_t;

// ----- single-threaded op latency, per algorithm -----

template <class S>
void BM_UncontendedPushPop(benchmark::State& state) {
    auto stack = sec::make_stack<S>(sec::kMaxThreads);
    for (auto _ : state) {
        stack->push(1);
        benchmark::DoNotOptimize(stack->pop());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::SecStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::TreiberStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::EbStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::FcStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::CcStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPushPop, sec::TsiStack<Value>);

template <class S>
void BM_UncontendedPeek(benchmark::State& state) {
    auto stack = sec::make_stack<S>(sec::kMaxThreads);
    stack->push(42);
    for (auto _ : state) benchmark::DoNotOptimize(stack->peek());
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::SecStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::TreiberStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::EbStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::FcStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::CcStack<Value>);
BENCHMARK_TEMPLATE(BM_UncontendedPeek, sec::TsiStack<Value>);

// ----- contended balanced churn, per algorithm (threads via ->Threads) -----

template <class S>
void BM_ContendedPushPop(benchmark::State& state) {
    static S* shared = nullptr;
    if (state.thread_index() == 0) {
        shared = sec::make_stack<S>(sec::kMaxThreads).release();
    }
    // google-benchmark synchronises threads before the loop starts; the
    // allocation above is visible by then.
    for (auto _ : state) {
        shared->push(1);
        benchmark::DoNotOptimize(shared->pop());
    }
    if (state.thread_index() == 0) {
        state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                                state.threads());
        delete shared;
        shared = nullptr;
    }
}
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::SecStack<Value>)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::TreiberStack<Value>)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::EbStack<Value>)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::FcStack<Value>)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::CcStack<Value>)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedPushPop, sec::TsiStack<Value>)->Threads(4)->Threads(8)->UseRealTime();

// ----- primitive costs: two F&I (SEC elimination) vs three CAS (EB) -----

void BM_TwoFetchIncrement(benchmark::State& state) {
    static std::atomic<std::uint64_t> a{0}, b{0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.fetch_add(1, std::memory_order_acq_rel));
        benchmark::DoNotOptimize(b.fetch_add(1, std::memory_order_acq_rel));
    }
}
BENCHMARK(BM_TwoFetchIncrement)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_ThreeCas(benchmark::State& state) {
    static std::atomic<std::uint64_t> a{0}, b{0}, c{0};
    for (auto _ : state) {
        for (std::atomic<std::uint64_t>* x : {&a, &b, &c}) {
            std::uint64_t cur = x->load(std::memory_order_acquire);
            while (!x->compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            }
        }
    }
}
BENCHMARK(BM_ThreeCas)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// ----- EBR guard cost -----

void BM_EbrGuardEnterExit(benchmark::State& state) {
    static sec::ebr::Domain domain;
    for (auto _ : state) {
        sec::ebr::Guard g(domain);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_EbrGuardEnterExit)->Threads(1)->Threads(8)->UseRealTime();

void BM_EbrRetireAmortised(benchmark::State& state) {
    static sec::ebr::Domain domain;
    for (auto _ : state) {
        sec::ebr::Guard g(domain);
        domain.retire(new std::uint64_t(1));
    }
    if (state.thread_index() == 0) domain.drain_all();
}
BENCHMARK(BM_EbrRetireAmortised)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
