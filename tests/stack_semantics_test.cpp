// stack_semantics_test.cpp — single-threaded LIFO semantics for all six
// stacks via one typed suite: ordering, empty-pop, non-destructive peek,
// and prefill round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "container_checkers.hpp"
#include "sec.hpp"

namespace {

using Value = std::uint64_t;

template <class S>
class StackSemanticsTest : public ::testing::Test {
protected:
    std::unique_ptr<S> stack = sec::make_stack<S>(16);
};

using StackTypes =
    ::testing::Types<sec::CcStack<Value>, sec::EbStack<Value>,
                     sec::FcStack<Value>, sec::SecStack<Value>,
                     sec::TreiberStack<Value>, sec::TsiStack<Value>>;
TYPED_TEST_SUITE(StackSemanticsTest, StackTypes);

TYPED_TEST(StackSemanticsTest, PopOnEmptyReturnsEmptyOptional) {
    EXPECT_FALSE(this->stack->pop().has_value());
    EXPECT_FALSE(this->stack->peek().has_value());
    // Still empty after the failed attempts.
    EXPECT_FALSE(this->stack->pop().has_value());
}

TYPED_TEST(StackSemanticsTest, PushPopIsLifo) {
    constexpr Value kCount = 1000;
    for (Value v = 1; v <= kCount; ++v) EXPECT_TRUE(this->stack->push(v));
    for (Value v = kCount; v >= 1; --v) {
        auto popped = this->stack->pop();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, v);
    }
    EXPECT_FALSE(this->stack->pop().has_value());
}

TYPED_TEST(StackSemanticsTest, InterleavedPushPopStaysLifo) {
    this->stack->push(1);
    this->stack->push(2);
    EXPECT_EQ(this->stack->pop().value(), 2u);
    this->stack->push(3);
    this->stack->push(4);
    EXPECT_EQ(this->stack->pop().value(), 4u);
    EXPECT_EQ(this->stack->pop().value(), 3u);
    EXPECT_EQ(this->stack->pop().value(), 1u);
    EXPECT_FALSE(this->stack->pop().has_value());
}

TYPED_TEST(StackSemanticsTest, PeekIsNonDestructive) {
    this->stack->push(41);
    this->stack->push(42);
    EXPECT_EQ(this->stack->peek().value(), 42u);
    EXPECT_EQ(this->stack->peek().value(), 42u);  // unchanged
    EXPECT_EQ(this->stack->pop().value(), 42u);
    EXPECT_EQ(this->stack->peek().value(), 41u);
    EXPECT_EQ(this->stack->pop().value(), 41u);
}

TYPED_TEST(StackSemanticsTest, PrefillRoundTrips) {
    constexpr std::size_t kCount = 5000;
    std::vector<Value> pushed;
    sec::Xoshiro256 rng(0xC0FFEE);
    for (std::size_t i = 0; i < kCount; ++i) {
        const Value v = rng.next();
        pushed.push_back(v);
        this->stack->push(v);
    }
    std::vector<Value> popped;
    while (auto v = this->stack->pop()) popped.push_back(*v);
    sec::testing::expect_same_multiset(std::move(pushed), std::move(popped));
}

}  // namespace
