// reporter_test.cpp — Table printing, CSV emission, and the duplicate-cell
// warning (workload/reporter.hpp). A duplicate (threads, column) cell is
// almost always a scenario bug; Table::add keeps last-write-wins for
// backward compatibility but must say so once on stderr and count every
// overwrite.
#include "workload/reporter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace sb = sec::bench;

namespace {

// Drain a tmpfile written by write_csv back into a string.
std::string slurp_csv(const sb::Table& table) {
    std::FILE* f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    table.write_csv(f);
    std::rewind(f);
    std::string out;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(TableTest, DistinctCellsDoNotWarn) {
    sb::Table t("tbl", {"A", "B"});
    t.add(1, "A", 1.0);
    t.add(1, "B", 2.0);
    t.add(4, "A", 3.0);
    EXPECT_EQ(t.duplicates(), 0u);
}

TEST(TableTest, DuplicateCellWarnsOnceAndLastWriteWins) {
    sb::Table t("dup_tbl", {"A"});
    t.add(2, "A", 1.0);
    EXPECT_EQ(t.duplicates(), 0u);

    testing::internal::CaptureStderr();
    t.add(2, "A", 2.0);  // first duplicate: warns
    t.add(2, "A", 3.0);  // further duplicates: counted, silent
    const std::string err = testing::internal::GetCapturedStderr();

    EXPECT_EQ(t.duplicates(), 2u);
    EXPECT_NE(err.find("duplicate cell"), std::string::npos) << err;
    EXPECT_NE(err.find("dup_tbl"), std::string::npos) << err;
    // One warning, not one per overwrite.
    EXPECT_EQ(err.find("duplicate cell"), err.rfind("duplicate cell")) << err;

    // Last write wins, matching the historical behaviour.
    EXPECT_EQ(slurp_csv(t), "dup_tbl,2,A,3.0000\n");
}

TEST(TableTest, SameColumnDifferentRowsIsNotADuplicate) {
    sb::Table t("tbl", {"A"});
    t.add(1, "A", 1.0);
    t.add(2, "A", 2.0);
    t.add(4, "A", 3.0);
    EXPECT_EQ(t.duplicates(), 0u);
}

TEST(TableTest, CsvRowsFollowGridOrderAndColumnOrder) {
    // Insert out of order; rows must come out keyed ascending with columns
    // in declared order, missing cells skipped.
    sb::Table t("grid", {"B", "A"});
    t.add(4, "A", 4.1);
    t.add(1, "B", 1.2);
    t.add(1, "A", 1.1);
    EXPECT_EQ(slurp_csv(t),
              "grid,1,B,1.2000\n"
              "grid,1,A,1.1000\n"
              "grid,4,A,4.1000\n");
}

TEST(TableTest, WriteCsvHeaderMatchesRowShape) {
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    sb::Table::write_csv_header(f);
    std::rewind(f);
    char buf[64] = {};
    ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
    std::fclose(f);
    EXPECT_STREQ(buf, "table,key,column,value\n");
}

TEST(TableTest, PrintAlignsColumnsAndDashesMissingCells) {
    sb::Table t("ptbl", {"A", "B"}, "Kops/s");
    t.add(1, "A", 1.5);
    t.add(8, "B", 2.5);

    testing::internal::CaptureStdout();
    t.print();
    const std::string out = testing::internal::GetCapturedStdout();

    EXPECT_NE(out.find("== ptbl (Kops/s) =="), std::string::npos) << out;
    // Header and both rows use the same %-8s + %12s grid, so every line
    // between the banner and the CSV block has identical length.
    std::vector<std::string> grid_lines;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t eol = out.find('\n', pos);
        const std::string line = out.substr(pos, eol - pos);
        pos = eol == std::string::npos ? out.size() : eol + 1;
        if (line.rfind("threads", 0) == 0 || line.rfind("1 ", 0) == 0 ||
            line.rfind("8 ", 0) == 0) {
            grid_lines.push_back(line);
        }
    }
    ASSERT_EQ(grid_lines.size(), 3u) << out;
    EXPECT_EQ(grid_lines[0].size(), grid_lines[1].size());
    EXPECT_EQ(grid_lines[1].size(), grid_lines[2].size());
    // Missing cells print as '-'.
    EXPECT_NE(grid_lines[1].find('-'), std::string::npos);
    // The machine-greppable CSV block rides along on stdout.
    EXPECT_NE(out.find("CSV,ptbl,1,A,1.5000"), std::string::npos) << out;
    EXPECT_NE(out.find("CSV,ptbl,8,B,2.5000"), std::string::npos) << out;
}

TEST(TableTest, ForEachCellVisitsGridOrder) {
    sb::Table t("visit", {"B", "A"});
    t.add(2, "A", 2.1);
    t.add(1, "B", 1.2);
    std::vector<std::string> seen;
    t.for_each_cell([&](unsigned threads, const std::string& col, double v) {
        seen.push_back(std::to_string(threads) + "/" + col + "/" +
                       std::to_string(static_cast<int>(v * 10)));
    });
    EXPECT_EQ(seen, (std::vector<std::string>{"1/B/12", "2/A/21"}));
}

TEST(TableTest, UnitAccessorDefaultsToMops) {
    EXPECT_EQ(sb::Table("t", {"A"}).unit(), "Mops/s");
    EXPECT_EQ(sb::Table("t", {"A"}, "us").unit(), "us");
}

}  // namespace
