// net_loopback_test — SecServer + the loopback client driver over real
// sockets on an ephemeral port: stack semantics survive the wire (LIFO
// order, empty-pop signalling, stats), and the open-loop driver loses zero
// replies. Runs in the TSan CI job, so everything crossing threads here is
// atomic or join-ordered.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "workload/registry.hpp"

namespace sec::net {
namespace {

AnyStack make_stack(const char* algo = "SEC") {
    const bench::AlgoSpec* spec =
        bench::AlgorithmRegistry::instance().find(algo);
    EXPECT_NE(spec, nullptr);
    bench::StackParams params;
    params.threads = 2;
    return spec->make(params);
}

// A deliberately dumb synchronous client: one blocking socket, one
// request/response at a time. The test oracle must not share machinery
// with the driver under test.
class SyncClient {
public:
    bool connect_to(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd_ < 0) return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        return ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
    }

    ~SyncClient() {
        if (fd_ >= 0) ::close(fd_);
    }

    // Send one request (optionally byte-by-byte to exercise the server's
    // torn-read path) and block for its response.
    bool roundtrip(const Message& req, Message& resp, bool torn = false) {
        std::vector<std::uint8_t> wire;
        encode(req, wire);
        if (torn) {
            for (const std::uint8_t byte : wire) {
                if (::write(fd_, &byte, 1) != 1) return false;
            }
        } else if (::write(fd_, wire.data(), wire.size()) !=
                   static_cast<ssize_t>(wire.size())) {
            return false;
        }
        for (;;) {
            Message decoded;
            const DecodeResult r = decode(buf_.data(), buf_.size(), decoded);
            if (r.status == DecodeStatus::kError) return false;
            if (r.status == DecodeStatus::kOk) {
                buf_.erase(buf_.begin(), buf_.begin() + r.consumed);
                resp = decoded;
                return true;
            }
            std::uint8_t chunk[512];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n <= 0) return false;
            buf_.insert(buf_.end(), chunk, chunk + n);
        }
    }

private:
    int fd_ = -1;
    std::vector<std::uint8_t> buf_;
};

TEST(NetLoopback, ServesLifoSemanticsOverTheWire) {
    SecServer server(make_stack(), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.port(), 0);

    SyncClient client;
    ASSERT_TRUE(client.connect_to(server.port()));

    Message req, resp;
    for (std::uint64_t v : {11u, 22u, 33u}) {
        req = Message{};
        req.type = MsgType::kPushReq;
        req.tag = 100 + v;
        req.value = v;
        ASSERT_TRUE(client.roundtrip(req, resp));
        EXPECT_EQ(resp.type, MsgType::kPushResp);
        EXPECT_EQ(resp.tag, 100 + v);
        EXPECT_TRUE(resp.ok);
    }
    // LIFO: pops return 33, 22, 11, then EMPTY with ok=false.
    for (std::uint64_t v : {33u, 22u, 11u}) {
        req = Message{};
        req.type = MsgType::kPopReq;
        req.tag = 200 + v;
        ASSERT_TRUE(client.roundtrip(req, resp));
        EXPECT_EQ(resp.type, MsgType::kPopResp);
        EXPECT_EQ(resp.tag, 200 + v);
        EXPECT_TRUE(resp.ok);
        EXPECT_EQ(resp.value, v);
    }
    req = Message{};
    req.type = MsgType::kPopReq;
    req.tag = 999;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_EQ(resp.type, MsgType::kPopResp);
    EXPECT_FALSE(resp.ok);

    req = Message{};
    req.type = MsgType::kStatsReq;
    req.tag = 1;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_EQ(resp.type, MsgType::kStatsResp);
    EXPECT_EQ(resp.stats.pushes, 3u);
    EXPECT_EQ(resp.stats.pops, 3u);
    EXPECT_EQ(resp.stats.empties, 1u);
    EXPECT_GE(resp.stats.batches, 1u);
    EXPECT_EQ(resp.stats.shape,
              static_cast<std::uint8_t>(ContainerShape::lifo));

    server.stop();
}

// The same wire protocol over a SecQueue-backed server: PUSH/POP map onto
// enqueue/dequeue 1:1, pops drain in arrival order, and STATS reports the
// fifo shape byte so a remote client can tell which semantics it is
// talking to.
TEST(NetLoopback, ServesFifoSemanticsOverTheWire) {
    SecServer server(make_stack("SEC_Q"), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.port(), 0);

    SyncClient client;
    ASSERT_TRUE(client.connect_to(server.port()));

    Message req, resp;
    for (std::uint64_t v : {11u, 22u, 33u}) {
        req = Message{};
        req.type = MsgType::kPushReq;
        req.tag = 100 + v;
        req.value = v;
        ASSERT_TRUE(client.roundtrip(req, resp));
        EXPECT_EQ(resp.type, MsgType::kPushResp);
        EXPECT_EQ(resp.tag, 100 + v);
        EXPECT_TRUE(resp.ok);
    }
    // FIFO: pops return 11, 22, 33 — arrival order — then EMPTY.
    for (std::uint64_t v : {11u, 22u, 33u}) {
        req = Message{};
        req.type = MsgType::kPopReq;
        req.tag = 200 + v;
        ASSERT_TRUE(client.roundtrip(req, resp));
        EXPECT_EQ(resp.type, MsgType::kPopResp);
        EXPECT_EQ(resp.tag, 200 + v);
        EXPECT_TRUE(resp.ok);
        EXPECT_EQ(resp.value, v);
    }
    req = Message{};
    req.type = MsgType::kPopReq;
    req.tag = 999;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_EQ(resp.type, MsgType::kPopResp);
    EXPECT_FALSE(resp.ok);

    req = Message{};
    req.type = MsgType::kStatsReq;
    req.tag = 1;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_EQ(resp.type, MsgType::kStatsResp);
    EXPECT_EQ(resp.stats.pushes, 3u);
    EXPECT_EQ(resp.stats.pops, 3u);
    EXPECT_EQ(resp.stats.empties, 1u);
    EXPECT_EQ(resp.stats.shape,
              static_cast<std::uint8_t>(ContainerShape::fifo));

    server.stop();
}

TEST(NetLoopback, ReassemblesTornFramesByteByByte) {
    SecServer server(make_stack(), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    SyncClient client;
    ASSERT_TRUE(client.connect_to(server.port()));

    Message req, resp;
    req.type = MsgType::kPushReq;
    req.tag = 1;
    req.value = 77;
    ASSERT_TRUE(client.roundtrip(req, resp, /*torn=*/true));
    EXPECT_TRUE(resp.ok);

    req = Message{};
    req.type = MsgType::kPopReq;
    req.tag = 2;
    ASSERT_TRUE(client.roundtrip(req, resp, /*torn=*/true));
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.value, 77u);

    server.stop();
}

TEST(NetLoopback, DropsProtocolViolatorsWithoutDyingItself) {
    SecServer server(make_stack(), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // A garbage-spewing connection must be dropped...
    SyncClient bad;
    ASSERT_TRUE(bad.connect_to(server.port()));
    Message resp;
    Message garbage;
    garbage.type = static_cast<MsgType>(0);  // encodes a zero-length frame
    EXPECT_FALSE(bad.roundtrip(garbage, resp));

    // ...while a well-behaved one on the same server keeps working.
    SyncClient good;
    ASSERT_TRUE(good.connect_to(server.port()));
    Message req;
    req.type = MsgType::kStatsReq;
    req.tag = 3;
    ASSERT_TRUE(good.roundtrip(req, resp));
    EXPECT_EQ(resp.type, MsgType::kStatsResp);

    server.stop();
}

// The open-loop driver against a live server: every scheduled request must
// come back exactly once. Tiny load — this runs under TSan in CI.
TEST(NetLoopback, LoopbackDriverLosesZeroReplies) {
    SecServer server(make_stack(), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    LoopbackClientConfig cfg;
    cfg.port = server.port();
    cfg.connections = 2;
    cfg.load_kops = 2.0;
    cfg.duration = std::chrono::milliseconds(150);
    cfg.seed = 42;

    const LoopbackClientResult res = run_loopback_client(cfg);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GT(res.sent, 0u);
    EXPECT_EQ(res.replies, res.sent);
    EXPECT_EQ(res.lost, 0u);
    EXPECT_EQ(res.sojourn.total(), res.replies);
    EXPECT_EQ(res.rtt.total(), res.replies);
    EXPECT_EQ(res.pop_hits + res.pop_empties + res.pushes, res.sent);
    EXPECT_GT(res.achieved_kops, 0.0);

    // The server agrees it answered everything the driver sent. Stats are
    // read after stop() (which joins the loop thread): batch accounting
    // lands at the END of each batch, after its responses already flushed,
    // so a still-running loop could trail the client by one batch.
    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, res.sent);
    EXPECT_EQ(stats.pushes, res.pushes);
    EXPECT_EQ(stats.pops + stats.empties, res.pop_hits + res.pop_empties);
}

// Determinism: the same (seed, config) generates the same schedules, so
// two drivers offer identical request streams (sent counts match).
TEST(NetLoopback, DriverSchedulesAreDeterministicInTheSeed) {
    SecServer server(make_stack(), {});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    LoopbackClientConfig cfg;
    cfg.port = server.port();
    cfg.connections = 2;
    cfg.load_kops = 2.0;
    cfg.duration = std::chrono::milliseconds(100);
    cfg.seed = 7;

    const LoopbackClientResult a = run_loopback_client(cfg);
    const LoopbackClientResult b = run_loopback_client(cfg);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.pushes, b.pushes);

    server.stop();
}

TEST(NetLoopback, BackendRegistryRejectsUnknownNames) {
    EXPECT_TRUE(backend_known("epoll"));
    EXPECT_TRUE(backend_known("iouring"));
    EXPECT_FALSE(backend_known("kqueue"));
    EXPECT_TRUE(backend_available("epoll"));

    std::string err;
    EXPECT_EQ(make_event_backend("kqueue", &err), nullptr);
    EXPECT_FALSE(err.empty());

    auto epoll = make_event_backend("", &err);
    ASSERT_NE(epoll, nullptr) << err;
    EXPECT_EQ(epoll->name(), "epoll");
}

// The iouring path: exercised when the build carries it AND the kernel
// lets this process set up a ring; skipped (loudly) otherwise so the same
// test source passes on every configuration.
TEST(NetLoopback, IoUringBackendServesWhenAvailable) {
    if (!backend_available("iouring")) {
        GTEST_SKIP() << "iouring backend not in this build "
                        "(-DSEC_IOURING=ON)";
    }
    std::string err;
    auto probe = make_event_backend("iouring", &err);
    if (probe == nullptr) {
        GTEST_SKIP() << "io_uring unavailable at runtime: " << err;
    }
    probe.reset();

    ServerConfig scfg;
    scfg.backend = "iouring";
    SecServer server(make_stack(), scfg);
    ASSERT_TRUE(server.start(&err)) << err;

    SyncClient client;
    ASSERT_TRUE(client.connect_to(server.port()));
    Message req, resp;
    req.type = MsgType::kPushReq;
    req.tag = 4;
    req.value = 123;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_TRUE(resp.ok);
    req = Message{};
    req.type = MsgType::kPopReq;
    req.tag = 5;
    ASSERT_TRUE(client.roundtrip(req, resp));
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.value, 123u);

    server.stop();
}

}  // namespace
}  // namespace sec::net
