// service_test.cpp — the open-loop service harness (workload/service.hpp):
// deterministic arrival schedules with the right rate and shape, full-drain
// accounting, composition with the registry variants, the knee finder's
// search behaviour, and the harness's reason to exist — a deterministic
// consumer stall whose queueing delay shows up in the open-loop sojourn
// tail while the closed-loop service-time histogram stays flat.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "workload/registry.hpp"
#include "workload/service.hpp"

namespace sb = sec::bench;

namespace {

sb::AnyStackFactory factory_for(const char* algo, unsigned lanes) {
    const sb::AlgoSpec* spec = sb::AlgorithmRegistry::instance().find(algo);
    EXPECT_NE(spec, nullptr) << algo;
    sb::StackParams params;
    params.threads = lanes;
    return [spec, params] { return spec->make(params); };
}

}  // namespace

TEST(ArrivalSchedule, ParseAndNameRoundTrip) {
    ASSERT_TRUE(sb::parse_arrival("poisson").has_value());
    ASSERT_TRUE(sb::parse_arrival("burst").has_value());
    EXPECT_FALSE(sb::parse_arrival("uniform").has_value());
    EXPECT_FALSE(sb::parse_arrival("").has_value());
    EXPECT_EQ(sb::arrival_name(*sb::parse_arrival("poisson")), "poisson");
    EXPECT_EQ(sb::arrival_name(*sb::parse_arrival("burst")), "burst");
}

TEST(ArrivalSchedule, PoissonIsDeterministicSortedAndRateAccurate) {
    sb::ServiceConfig cfg;
    cfg.duration = std::chrono::milliseconds(200);
    const double rate = 100'000.0;  // ops/s -> ~20k arrivals
    const auto a = sb::make_arrival_schedule(cfg, rate, 42);
    const auto b = sb::make_arrival_schedule(cfg, rate, 42);
    EXPECT_EQ(a, b);
    const auto c = sb::make_arrival_schedule(cfg, rate, 43);
    EXPECT_NE(a, c);
    ASSERT_FALSE(a.empty());
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_LT(a.back(), 200'000'000u);  // inside the horizon
    // 20k expected arrivals: +-10% is ~14 sigma for a Poisson count.
    EXPECT_GT(a.size(), 18'000u);
    EXPECT_LT(a.size(), 22'000u);
}

TEST(ArrivalSchedule, BurstArrivalsStayInsideTheDutyWindow) {
    sb::ServiceConfig cfg;
    cfg.duration = std::chrono::milliseconds(200);
    cfg.arrival = sb::ArrivalKind::kBurst;
    cfg.burst_period = std::chrono::milliseconds(10);
    cfg.burst_duty = 0.25;
    const double rate = 100'000.0;
    const auto s = sb::make_arrival_schedule(cfg, rate, 7);
    ASSERT_FALSE(s.empty());
    constexpr std::uint64_t kPeriodNs = 10'000'000;
    constexpr std::uint64_t kOnNs = 2'500'000;
    for (std::uint64_t t : s) {
        EXPECT_LT(t % kPeriodNs, kOnNs) << "arrival outside the burst at "
                                        << t;
    }
    // The mean rate is preserved despite the compression.
    EXPECT_GT(s.size(), 17'000u);
    EXPECT_LT(s.size(), 23'000u);
}

TEST(ServiceRun, ModestLoadDrainsCompletely) {
    sb::ServiceConfig cfg;
    cfg.producers = 2;
    cfg.consumers = 2;
    cfg.load_kops = 10.0;
    cfg.duration = std::chrono::milliseconds(200);
    cfg.seed = 1;
    const sb::ServiceResult r =
        sb::run_service_any(factory_for("SEC", 4), cfg);
    ASSERT_GT(r.produced, 0u);
    EXPECT_EQ(r.completed, r.produced);
    EXPECT_EQ(r.sojourn.total(), r.completed);
    EXPECT_EQ(r.service.total(), r.completed);
    EXPECT_GT(r.offered_kops, 0.0);
    EXPECT_GT(r.achieved_kops, 0.0);
    EXPECT_GT(r.window_s, 0.0);
}

TEST(ServiceRun, ComposesWithShardedAdaptiveAndHpVariants) {
    for (const char* algo : {"TRB", "FC", "SEC@shard2", "SEC@adaptive",
                             "SEC@hp", "SEC@qsbr"}) {
        SCOPED_TRACE(algo);
        sb::ServiceConfig cfg;
        cfg.producers = 1;
        cfg.consumers = 2;
        cfg.load_kops = 5.0;
        cfg.duration = std::chrono::milliseconds(100);
        cfg.seed = 2;
        const sb::ServiceResult r =
            sb::run_service_any(factory_for(algo, 3), cfg);
        ASSERT_GT(r.produced, 0u);
        EXPECT_EQ(r.completed, r.produced);
    }
}

TEST(ServiceRun, DegenerateConfigsReturnEmptyResults) {
    sb::ServiceConfig cfg;
    cfg.producers = 0;
    EXPECT_EQ(sb::run_service_any(factory_for("TRB", 2), cfg).produced, 0u);
    cfg.producers = 1;
    cfg.consumers = 0;
    EXPECT_EQ(sb::run_service_any(factory_for("TRB", 2), cfg).produced, 0u);
    cfg.consumers = 1;
    cfg.load_kops = 0;
    EXPECT_EQ(sb::run_service_any(factory_for("TRB", 2), cfg).produced, 0u);
}

// The harness's reason to exist: a consumer that stalls 100 ms mid-run backs
// up every request scheduled during the stall. Charging completion minus
// *scheduled* arrival (sojourn) surfaces that as a fat p99; the per-op
// service-time histogram — what a closed-loop benchmark measures — never
// sees it, because the stall sits outside the pop call. A benchmark without
// this property under-reports tail latency by the full stall (coordinated
// omission).
TEST(ServiceRun, StallShowsInSojournTailButNotServiceTail) {
    sb::ServiceConfig cfg;
    cfg.producers = 1;
    cfg.consumers = 1;
    cfg.load_kops = 2.0;  // one request per 500 us -> ~800 requests
    cfg.duration = std::chrono::milliseconds(400);
    cfg.seed = 3;
    cfg.stall_after_op = 20;
    cfg.stall_ns = 100'000'000;  // 100 ms, ~200 requests arrive meanwhile
    const sb::ServiceResult r =
        sb::run_service_any(factory_for("TRB", 2), cfg);
    ASSERT_GT(r.produced, 0u);
    EXPECT_EQ(r.completed, r.produced);
    // >15% of requests queue >= 30 ms behind the stall, so the 99th
    // percentile must see it even on a slow, oversubscribed host.
    EXPECT_GE(r.sojourn.quantile_ns(0.99), 30'000'000u);
    // The pop call itself never blocks for the stall: its p99 stays orders
    // of magnitude below (15 ms leaves room for scheduler preemption).
    EXPECT_LE(r.service.quantile_ns(0.99), 15'000'000u);
}

TEST(KneeFinder, ReachesTheCapWhenNothingExplodes) {
    sb::ServiceConfig cfg;
    cfg.producers = 1;
    cfg.consumers = 1;
    cfg.duration = std::chrono::milliseconds(50);
    cfg.seed = 4;
    sb::KneeConfig knee;
    knee.start_kops = 2.0;
    knee.max_kops = 8.0;
    knee.p99_limit_ns = ~std::uint64_t{0} >> 1;  // nothing can exceed it
    unsigned hook_calls = 0;
    const sb::KneeResult r = sb::find_service_knee(
        factory_for("TRB", 2), cfg, knee,
        [&](const sb::KneeProbe& p) {
            EXPECT_EQ(p.index, hook_calls);  // probes arrive in order
            ++hook_calls;
            EXPECT_TRUE(p.sustainable);
            EXPECT_GT(p.achieved_kops, 0.0);
        });
    EXPECT_DOUBLE_EQ(r.sustainable_kops, 8.0);
    EXPECT_EQ(r.probes, 3u);  // 2, 4, 8
    EXPECT_EQ(hook_calls, r.probes);
}

TEST(KneeFinder, ReportsZeroWhenEvenTheFirstProbeExplodes) {
    sb::ServiceConfig cfg;
    cfg.producers = 1;
    cfg.consumers = 1;
    cfg.duration = std::chrono::milliseconds(50);
    cfg.seed = 5;
    sb::KneeConfig knee;
    knee.start_kops = 2.0;
    knee.max_kops = 8.0;
    knee.p99_limit_ns = 0;  // no sojourn can land under it
    const sb::KneeResult r = sb::find_service_knee(factory_for("TRB", 2),
                                                   cfg, knee);
    EXPECT_DOUBLE_EQ(r.sustainable_kops, 0.0);
    EXPECT_EQ(r.probes, 1u);
}

TEST(KneeFinder, BisectsBetweenTheLastGoodAndFirstBadLoad) {
    // A load-dependent failure via stall injection: the stall only fires
    // once a consumer completes 500 requests, and only loads above ~5 Kops
    // produce that many in the 100 ms horizon. Low probes stay clean, high
    // probes eat a 100 ms stall whose backlog blows the 20 ms sojourn
    // limit, and the search must bisect into the gap.
    sb::ServiceConfig cfg;
    cfg.producers = 1;
    cfg.consumers = 1;
    cfg.duration = std::chrono::milliseconds(100);
    cfg.seed = 6;
    cfg.stall_after_op = 500;
    cfg.stall_ns = 100'000'000;
    sb::KneeConfig knee;
    knee.start_kops = 4.0;  // ~400 requests: comfortably below the trigger
    knee.max_kops = 8.0;    // ~800 requests: stall fires, tail explodes
    knee.refine_steps = 1;
    knee.p99_limit_ns = 20'000'000;
    std::vector<double> probed;
    std::vector<bool> verdicts;
    const sb::KneeResult r = sb::find_service_knee(
        factory_for("TRB", 2), cfg, knee, [&](const sb::KneeProbe& p) {
            probed.push_back(p.offered_kops);
            verdicts.push_back(p.sustainable);
        });
    const std::vector<double> expected = {4.0, 8.0, 6.0};
    EXPECT_EQ(probed, expected);
    ASSERT_EQ(verdicts.size(), 3u);
    EXPECT_TRUE(verdicts[0]);
    EXPECT_FALSE(verdicts[1]);
    EXPECT_FALSE(verdicts[2]);  // ~600 requests still trip the stall
    EXPECT_DOUBLE_EQ(r.sustainable_kops, 4.0);
    EXPECT_EQ(r.probes, 3u);
}
