// adaptive_test.cpp — the sec::adapt subsystem: TuningState packing, the
// controller's deterministic step() behaviour (convergence of the active
// set under low/high contention signals, the backoff hill climb and its
// bounds), and semantics of an adaptively-tuned SecStack under churn —
// including forced rapid active-set flips, the migration case the claim
// protocol in AggregatorSet::combine exists for.
//
// Controller convergence is tested by driving step() directly with
// synthetic cumulative snapshots: the controller is deterministic in its
// input sequence, so none of these tests depend on scheduling or core
// count (this suite must pass on a 1-core host).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>  // std::this_thread::yield
#include <vector>

#include "core/adaptive.hpp"
#include "exec/worker_pool.hpp"
#include "sec.hpp"
#include "workload/registry.hpp"

namespace {

using Value = std::uint64_t;
using sec::StatsSnapshot;
using sec::TuningState;
namespace adapt = sec::adapt;

// A controller wired for manual stepping: the sampler is never called.
adapt::AdaptiveController manual_controller(TuningState& state,
                                            std::size_t max_active,
                                            adapt::Options opt = {}) {
    return adapt::AdaptiveController(
        state, [] { return StatsSnapshot{}; }, max_active, opt);
}

// Cumulative snapshot advanced by one epoch of `batches` batches with mean
// per-batch degree `degree` (all combined; elimination split is irrelevant
// to the controller).
void advance_epoch(StatsSnapshot& cum, std::uint64_t batches, double degree) {
    const auto ops = static_cast<std::uint64_t>(
        static_cast<double>(batches) * degree);
    cum.batches += batches;
    cum.batched_ops += ops;
    cum.combined_ops += ops;
}

TEST(TuningState, PackedRoundTrip) {
    TuningState state(1, 0);
    for (std::uint32_t active : {1u, 2u, 5u}) {
        for (std::uint64_t backoff :
             {std::uint64_t{0}, std::uint64_t{256},
              (std::uint64_t{1} << 48) - 1}) {
            state.store(active, backoff);
            const TuningState::Tuning t = state.load();
            EXPECT_EQ(t.active_aggregators, active);
            EXPECT_EQ(t.backoff_ns, backoff);
        }
    }
}

TEST(AdaptiveController, ShrinksActiveSetUnderLowContention) {
    TuningState state(4, 256);
    auto ctrl = manual_controller(state, 4);
    StatsSnapshot cum;
    // Low contention: batches barely beyond singletons — one thread at a
    // time reaches the freezer, spreading across 4 aggregators is waste.
    for (int i = 0; i < 8; ++i) {
        advance_epoch(cum, 100, 1.1);
        ctrl.step(cum);
    }
    EXPECT_EQ(state.load().active_aggregators, 1u);
    EXPECT_EQ(ctrl.epochs(), 8u);
}

TEST(AdaptiveController, GrowsActiveSetUnderHighContention) {
    TuningState state(1, 256);
    auto ctrl = manual_controller(state, 4);
    StatsSnapshot cum;
    // High contention: batches saturate (degree 10 per batch) — spread the
    // load across more aggregators.
    for (int i = 0; i < 8; ++i) {
        advance_epoch(cum, 100, 10.0);
        ctrl.step(cum);
    }
    EXPECT_EQ(state.load().active_aggregators, 4u);
}

TEST(AdaptiveController, ActiveSetStaysWithinBounds) {
    TuningState state(2, 256);
    auto ctrl = manual_controller(state, 3);
    StatsSnapshot cum;
    for (int i = 0; i < 20; ++i) {
        advance_epoch(cum, 100, 20.0);  // push up, hard
        ctrl.step(cum);
        const auto t = state.load();
        EXPECT_GE(t.active_aggregators, 1u);
        EXPECT_LE(t.active_aggregators, 3u);
    }
    EXPECT_EQ(state.load().active_aggregators, 3u);
    for (int i = 0; i < 20; ++i) {
        advance_epoch(cum, 100, 1.0);  // and all the way down
        ctrl.step(cum);
        const auto t = state.load();
        EXPECT_GE(t.active_aggregators, 1u);
        EXPECT_LE(t.active_aggregators, 3u);
    }
    EXPECT_EQ(state.load().active_aggregators, 1u);
}

TEST(AdaptiveController, InBandDegreeHoldsTheActiveSet) {
    TuningState state(2, 256);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 4, opt);
    StatsSnapshot cum;
    const double mid = (opt.degree_low + opt.degree_high) / 2.0;
    for (int i = 0; i < 10; ++i) {
        advance_epoch(cum, 100, mid);
        ctrl.step(cum);
    }
    EXPECT_EQ(state.load().active_aggregators, 2u);
}

TEST(AdaptiveController, BackoffClimbsWhileTheObjectiveImproves) {
    TuningState state(2, 256);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 4, opt);
    StatsSnapshot cum;
    const double mid = (opt.degree_low + opt.degree_high) / 2.0;
    // Rising ops-per-epoch at in-band degree: every probe pays off, so the
    // ladder keeps climbing 256 -> 512 -> 1024 -> 2048 -> 4096 (the cap).
    std::uint64_t batches = 100;
    for (int i = 0; i < 4; ++i) {
        advance_epoch(cum, batches, mid);
        ctrl.step(cum);
        batches = batches * 12 / 10;  // +20% >> 5% hysteresis
    }
    EXPECT_EQ(state.load().backoff_ns, opt.max_backoff_ns);
    // A clear regress reverts the last probe (back to its origin, 2048)
    // and flips direction.
    advance_epoch(cum, 50, mid);
    ctrl.step(cum);
    EXPECT_EQ(state.load().backoff_ns, 2048u);
}

TEST(AdaptiveController, BackoffStaysWithinLadderBounds) {
    TuningState state(1, 64);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 1, opt);  // active pinned at 1
    StatsSnapshot cum;
    // Monotonically falling objective: every probe regresses, so the
    // controller oscillates around the origin — and must never leave
    // [0, max_backoff_ns].
    std::uint64_t batches = 1u << 20;
    for (int i = 0; i < 32; ++i) {
        advance_epoch(cum, batches, 3.0);
        ctrl.step(cum);
        const auto t = state.load();
        EXPECT_LE(t.backoff_ns, opt.max_backoff_ns);
        batches = batches * 8 / 10;
    }
}

TEST(AdaptiveController, ActiveSetMoveRevertsAnOpenProbe) {
    TuningState state(2, 256);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 4, opt);
    StatsSnapshot cum;
    const double mid = (opt.degree_low + opt.degree_high) / 2.0;
    advance_epoch(cum, 100, mid);
    ctrl.step(cum);  // opens a probe: 256 -> 512, verdict pending
    EXPECT_EQ(state.load().backoff_ns, 512u);
    advance_epoch(cum, 100, 10.0);  // degree leaves the band: active moves
    ctrl.step(cum);
    const TuningState::Tuning t = state.load();
    EXPECT_EQ(t.active_aggregators, 3u);
    // The probe's verdict was contaminated — the unverified value must be
    // reverted, not adopted as the new operating point.
    EXPECT_EQ(t.backoff_ns, 256u);
}

TEST(AdaptiveController, ProbeVerdictsCompareRatesAcrossUnequalWindows) {
    // A probe opened against a stability-stretched (8x) window must be
    // judged as a rate: the same per-epoch throughput over the following
    // 1x verdict window is a plateau (revert to origin), not an 8x
    // regression that would auto-revert every probe on raw counts.
    TuningState state(1, 256);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 1, opt);  // active pinned at 1
    StatsSnapshot cum;
    advance_epoch(cum, 8 * 100, 3.0);
    ctrl.step(cum, 8.0);  // settled window: opens a probe at rate 100/epoch
    EXPECT_EQ(state.load().backoff_ns, 512u);
    advance_epoch(cum, 100, 3.0);
    ctrl.step(cum, 1.0);  // same rate over 1x: plateau -> revert to origin
    EXPECT_EQ(state.load().backoff_ns, 256u);

    // And a genuine rate improvement over the short window keeps the probe
    // even though its raw count is 4x smaller than the baseline's.
    state.store(1, 256);
    auto ctrl2 = manual_controller(state, 1, opt);
    StatsSnapshot cum2;
    advance_epoch(cum2, 8 * 100, 3.0);
    ctrl2.step(cum2, 8.0);  // probe 256 -> 512 at rate 100/epoch
    advance_epoch(cum2, 200, 3.0);
    ctrl2.step(cum2, 1.0);  // rate 200/epoch: kept, probe on to 1024
    EXPECT_EQ(state.load().backoff_ns, 1024u);
}

TEST(AdaptiveController, IdleEpochsLeaveTuningUntouched) {
    TuningState state(3, 512);
    auto ctrl = manual_controller(state, 4);
    StatsSnapshot cum;
    advance_epoch(cum, 2, 1.0);  // below min_epoch_batches
    ctrl.step(cum);
    ctrl.step(cum);  // zero-delta epoch
    const auto t = state.load();
    EXPECT_EQ(t.active_aggregators, 3u);
    EXPECT_EQ(t.backoff_ns, 512u);
}

TEST(AdaptiveController, IdleEpochRevertsAnOpenProbe) {
    // A probe whose verdict epoch turns out idle gets no verdict at all;
    // keeping the unverified value would let alternating busy/idle epochs
    // ratchet the backoff across the whole ladder unexamined.
    TuningState state(1, 256);
    adapt::Options opt;
    auto ctrl = manual_controller(state, 1, opt);  // active pinned at 1
    StatsSnapshot cum;
    advance_epoch(cum, 100, 3.0);
    ctrl.step(cum);  // opens a probe: 256 -> 512
    EXPECT_EQ(state.load().backoff_ns, 512u);
    advance_epoch(cum, 1, 1.0);  // idle: below min_epoch_batches
    ctrl.step(cum);
    EXPECT_EQ(state.load().backoff_ns, 256u);
}

// ---- integration: an adaptively-tuned SecStack under real churn ------------

constexpr Value tag(unsigned thread, std::uint32_t seq) {
    return (static_cast<Value>(thread + 1) << 32) | seq;
}

// Balanced churn against `stack` with per-value provenance; every popped
// value must have been pushed exactly once (the stack_stress_test check,
// here under live tuning changes).
void churn_and_verify(sec::SecStack<Value>& stack, unsigned threads,
                      std::uint32_t ops_per_thread) {
    std::vector<std::vector<Value>> pushed(threads);
    std::vector<std::vector<Value>> popped(threads);
    sec::exec::WorkerPool::run(threads, [&](sec::exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
        std::uint32_t seq = 0;
        for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
            if (rng.next_below(2) == 0) {
                const Value v = tag(t, seq++);
                stack.push(v);
                pushed[t].push_back(v);
            } else if (auto v = stack.pop()) {
                popped[t].push_back(*v);
            }
        }
    });

    std::vector<Value> all_pushed, all_popped;
    for (unsigned t = 0; t < threads; ++t) {
        all_pushed.insert(all_pushed.end(), pushed[t].begin(),
                          pushed[t].end());
        all_popped.insert(all_popped.end(), popped[t].begin(),
                          popped[t].end());
    }
    while (auto v = stack.pop()) all_popped.push_back(*v);
    std::sort(all_pushed.begin(), all_pushed.end());
    std::sort(all_popped.begin(), all_popped.end());
    ASSERT_EQ(all_popped.size(), all_pushed.size());
    EXPECT_EQ(all_popped, all_pushed)
        << "value lost, duplicated, or invented under adaptive churn";
}

TEST(AdaptiveIntegration, ControllerDrivenStackKeepsSemanticsUnderChurn) {
    TuningState tuning(4, 256);
    sec::Config cfg;
    cfg.max_threads = 16;
    cfg.collect_stats = true;
    cfg.tuning = &tuning;
    sec::SecStack<Value> stack(cfg);
    adapt::Options opt;
    opt.epoch = std::chrono::microseconds(200);  // many epochs per run
    adapt::AdaptiveController ctrl(
        tuning, [&stack] { return stack.stats(); }, cfg.num_aggregators, opt);
    ctrl.start();
    churn_and_verify(stack, 4, 20000);
    ctrl.stop();
    EXPECT_GT(ctrl.epochs(), 0u);
}

TEST(AdaptiveIntegration, SurvivesRapidActiveSetFlips) {
    // No controller: a hostile toggler slams the tuning between the two
    // extremes as fast as it can while workers churn — the migration storm
    // the claim protocol must survive without losing or duplicating ops.
    TuningState tuning(4, 0);
    sec::Config cfg;
    cfg.max_threads = 16;
    cfg.tuning = &tuning;
    sec::SecStack<Value> stack(cfg);
    std::atomic<bool> stop{false};
    sec::exec::PoolOptions wo;
    wo.coordinator_in_barrier = false;
    sec::exec::WorkerPool toggler(1, wo);
    toggler.start([&](sec::exec::WorkerContext&) {
        bool wide = false;
        while (!stop.load(std::memory_order_relaxed)) {
            tuning.store(wide ? 4 : 1, wide ? 4096 : 0);
            wide = !wide;
            std::this_thread::yield();
        }
    });
    churn_and_verify(stack, 4, 20000);
    stop.store(true, std::memory_order_relaxed);
    toggler.join();
}

TEST(AdaptiveIntegration, RegistryAdaptiveVariantRoundTrips) {
    // SEC@adaptive through the type-erased registry path: LIFO semantics
    // hold single-threaded, and the degree counters are live (the
    // controller's feedback contract).
    auto& reg = sec::bench::AlgorithmRegistry::instance();
    const sec::bench::AlgoSpec* spec = reg.find("SEC@adaptive");
    ASSERT_NE(spec, nullptr);
    EXPECT_EQ(spec->base, "SEC@adaptive");  // not a --reclaim rebind target
    sec::bench::StackParams params;
    params.threads = 2;
    sec::AnyStack stack = spec->make(params);
    ASSERT_TRUE(static_cast<bool>(stack));
    for (Value v = 1; v <= 64; ++v) stack.push(v);
    for (Value v = 64; v >= 1; --v) EXPECT_EQ(stack.pop(), v);
    EXPECT_FALSE(stack.pop().has_value());
    EXPECT_TRUE(stack.has_stats());
}

}  // namespace
