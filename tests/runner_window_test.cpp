// runner_window_test.cpp — regression test for the measurement-window
// overshoot bias: a worker whose final op straddles the coordinator's stop
// store keeps working past the nominal window, and those ops are real work.
// The runners must divide by the workers' self-timed span (min begin to max
// end), not by the coordinator's sleep duration — dividing the overshoot
// ops by the short window used to inflate short-window throughput by a
// scheduling-dependent amount. A stack whose every push takes ~60 ms against
// a 10 ms nominal window makes the bias unmissable: the honest window is at
// least one op long.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>

#include "workload/any_runner.hpp"
#include "workload/runner.hpp"

namespace sb = sec::bench;

namespace {

constexpr auto kOpDuration = std::chrono::milliseconds(60);

// Every op sleeps for kOpDuration; with a push-only mix and a window far
// shorter than one op, exactly the straddling op gets counted.
struct SlowOpStack {
    using value_type = std::uint64_t;
    static constexpr sec::ContainerShape kShape = sec::ContainerShape::lifo;
    bool push(value_type) {
        std::this_thread::sleep_for(kOpDuration);
        return true;
    }
    std::optional<value_type> pop() {
        std::this_thread::sleep_for(kOpDuration);
        return std::nullopt;
    }
    std::optional<value_type> peek() { return std::nullopt; }
    bool put(value_type v) { return push(v); }
    std::optional<value_type> take() { return pop(); }
};

sb::RunConfig slow_config() {
    sb::RunConfig cfg;
    cfg.threads = 1;
    cfg.duration = std::chrono::milliseconds(10);
    cfg.prefill = 0;
    cfg.mix = sec::kPushOnly;
    cfg.runs = 1;
    return cfg;
}

// RunResult exposes mops and total_ops; the window the runner divided by
// falls out as total_ops / mops (in µs).
double derived_window_us(const sb::RunResult& r) {
    EXPECT_GT(r.total_ops, 0u);
    EXPECT_GT(r.mops, 0.0);
    return static_cast<double>(r.total_ops) / r.mops;
}

// The op sleeps 60 ms; anything over 50 ms proves the divisor tracked the
// worker past the 10 ms nominal window (sleep_for never wakes early, so the
// only slack is in the surrounding clock reads).
constexpr double kMinHonestWindowUs = 50'000.0;

}  // namespace

TEST(RunnerWindow, StaticRunnerChargesTheStraddlingOp) {
    SlowOpStack stack;
    const sb::RunResult r =
        sb::run_throughput([&] { return &stack; }, slow_config());
    EXPECT_GE(derived_window_us(r), kMinHonestWindowUs);
}

TEST(RunnerWindow, ErasedRunnerChargesTheStraddlingOp) {
    const sb::RunResult r = sb::run_throughput_any(
        [] { return sb::erase_stack(std::make_unique<SlowOpStack>()); },
        slow_config());
    EXPECT_GE(derived_window_us(r), kMinHonestWindowUs);
}
