// sec_config_test.cpp — Config validation and the stats plumbing behind
// bench/table1_degrees.cpp: aggregator counts 1-5, both mapping modes, and
// collect_stats yielding non-zero batching/elimination degrees on an
// update-heavy mix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>  // std::this_thread::yield
#include <vector>

#include "exec/worker_pool.hpp"
#include "sec.hpp"

namespace {

using Value = std::uint64_t;
using Stack = sec::SecStack<Value>;

TEST(SecConfigTest, RejectsAggregatorCountOutOfRange) {
    sec::Config cfg;
    cfg.num_aggregators = 0;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
    cfg.num_aggregators = sec::kMaxAggregators + 1;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, RejectsBackoffBeyondTuningStateRange) {
    sec::Config cfg;
    cfg.freezer_backoff_ns = sec::kMaxFreezerBackoffNs;
    cfg.validate();  // the bound itself is legal
    cfg.freezer_backoff_ns = sec::kMaxFreezerBackoffNs + 1;
    // Beyond 48 bits a TuningState would silently truncate what the same
    // Config spins statically.
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, RejectsBadMaxThreads) {
    sec::Config cfg;
    cfg.max_threads = 0;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
    cfg.max_threads = sec::kMaxThreads + 1;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, AcceptsAllAggregatorCounts) {
    for (std::size_t aggs = 1; aggs <= sec::kMaxAggregators; ++aggs) {
        sec::Config cfg;
        cfg.num_aggregators = aggs;
        cfg.max_threads = 16;
        Stack stack(cfg);
        stack.push(aggs);
        EXPECT_EQ(stack.pop().value(), aggs);
        EXPECT_FALSE(stack.pop().has_value());
    }
}

TEST(SecConfigTest, MappingModesPreserveSemantics) {
    for (auto mapping : {sec::AggregatorMapping::kContiguous,
                         sec::AggregatorMapping::kRoundRobin}) {
        sec::Config cfg;
        cfg.mapping = mapping;
        cfg.max_threads = 16;
        Stack stack(cfg);
        constexpr unsigned kThreads = 4;
        constexpr std::uint64_t kPerThread = 5000;
        sec::exec::WorkerPool::run(
            kThreads, [&stack](sec::exec::WorkerContext&) {
                for (std::uint64_t i = 0; i < kPerThread; ++i) {
                    stack.push(i);
                }
            });
        std::uint64_t drained = 0;
        while (stack.pop().has_value()) ++drained;
        EXPECT_EQ(drained, kThreads * kPerThread);
    }
}

TEST(SecConfigTest, StatsOffByDefault) {
    sec::Config cfg;
    cfg.max_threads = 8;
    Stack stack(cfg);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        stack.push(i);
        (void)stack.pop();
    }
    const sec::StatsSnapshot s = stack.stats();
    EXPECT_EQ(s.batches, 0u);
    EXPECT_EQ(s.batched_ops, 0u);
}

TEST(SecConfigTest, CollectStatsYieldsDegreesOnUpdateHeavyMix) {
    sec::Config cfg;
    cfg.max_threads = 16;
    cfg.collect_stats = true;
    Stack stack(cfg);

    constexpr unsigned kThreads = 8;
    constexpr std::uint32_t kPerThread = 20000;
    // Elimination needs pushes and pops to genuinely overlap; on a heavily
    // loaded host one round of churn can serialise, so retry (stats
    // accumulate across rounds) instead of asserting on scheduling luck.
    for (int round = 0; round < 3; ++round) {
        sec::exec::WorkerPool::run(
            kThreads, [&stack](sec::exec::WorkerContext& wc) {
                const unsigned t = wc.index;
                sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
                // kUpdateHeavy: 50% push, 50% pop.
                for (std::uint32_t i = 0; i < kPerThread; ++i) {
                    if (rng.next_below(100) < sec::kUpdateHeavy.push_pct) {
                        stack.push(i);
                    } else {
                        (void)stack.pop();
                    }
                }
            });
        if (stack.stats().eliminated_ops > 0) break;
    }

    const sec::StatsSnapshot s = stack.stats();
    EXPECT_GT(s.batches, 0u);
    EXPECT_GT(s.batched_ops, 0u);
    EXPECT_GE(s.batching_degree(), 1.0);
    // Concurrent pushes and pops must have met inside batches.
    EXPECT_GT(s.eliminated_ops, 0u);
    EXPECT_GT(s.elimination_pct(), 0.0);
    // Every batched op is either eliminated or combined, never both.
    EXPECT_EQ(s.eliminated_ops + s.combined_ops, s.batched_ops);
    EXPECT_LE(s.elimination_pct() + s.combining_pct(), 100.0001);
}

// Regression: stats() used to sum the counters with bare relaxed loads
// while freezers publish them with lock-serialized load+store, so a MID-RUN
// snapshot (the adaptive controller's feedback read, table1's per-point
// stream) could tear across counters — batched already bumped, eliminated
// not yet — breaking eliminated + combined == batched and under-counting
// whole batches. stats() now takes each aggregator's freezer lock, making
// every snapshot batch-atomic; this hammers snapshots under live churn and
// checks the cross-counter invariant plus per-counter monotonicity.
TEST(SecConfigTest, StatsSnapshotIsConsistentUnderConcurrentLoad) {
    sec::Config cfg;
    cfg.max_threads = 16;
    cfg.collect_stats = true;
    cfg.num_aggregators = 2;
    cfg.freezer_backoff_ns = 0;  // maximise batch frequency
    Stack stack(cfg);

    constexpr unsigned kThreads = 4;
    std::atomic<bool> stop{false};
    sec::exec::PoolOptions wo;
    wo.coordinator_in_barrier = false;
    sec::exec::WorkerPool workers(kThreads, wo);
    workers.start([&stack, &stop](sec::exec::WorkerContext& wc) {
        sec::Xoshiro256 rng((wc.index + 1) * 0x9E3779B97F4A7C15ull);
        while (!stop.load(std::memory_order_relaxed)) {
            if (rng.next_below(2) == 0) {
                stack.push(1);
            } else {
                (void)stack.pop();
            }
        }
    });

    // Wait until the workers actually produce batches: on an oversubscribed
    // host the main thread can burn through the whole snapshot loop before
    // a single worker is scheduled, which would make the tear-check vacuous
    // and the final batches > 0 assert a scheduling lottery.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (stack.stats().batches == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    ASSERT_GT(stack.stats().batches, 0u) << "workers never produced a batch";

    sec::StatsSnapshot prev;
    for (int i = 0; i < 2000; ++i) {
        // Let the churn make progress between reads on few-core hosts.
        if ((i & 63) == 0) std::this_thread::yield();
        const sec::StatsSnapshot s = stack.stats();
        ASSERT_EQ(s.eliminated_ops + s.combined_ops, s.batched_ops)
            << "torn mid-batch snapshot at read " << i;
        ASSERT_GE(s.batched_ops, s.batches)
            << "batch with zero ops at read " << i;
        // Cumulative counters only grow.
        ASSERT_GE(s.batches, prev.batches);
        ASSERT_GE(s.batched_ops, prev.batched_ops);
        ASSERT_GE(s.eliminated_ops, prev.eliminated_ops);
        ASSERT_GE(s.combined_ops, prev.combined_ops);
        prev = s;
    }
    stop.store(true, std::memory_order_relaxed);
    workers.join();
    EXPECT_GT(stack.stats().batches, 0u);
}

}  // namespace
