// sec_config_test.cpp — Config validation and the stats plumbing behind
// bench/table1_degrees.cpp: aggregator counts 1-5, both mapping modes, and
// collect_stats yielding non-zero batching/elimination degrees on an
// update-heavy mix.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sec.hpp"

namespace {

using Value = std::uint64_t;
using Stack = sec::SecStack<Value>;

TEST(SecConfigTest, RejectsAggregatorCountOutOfRange) {
    sec::Config cfg;
    cfg.num_aggregators = 0;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
    cfg.num_aggregators = sec::kMaxAggregators + 1;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, RejectsBackoffBeyondTuningStateRange) {
    sec::Config cfg;
    cfg.freezer_backoff_ns = sec::kMaxFreezerBackoffNs;
    cfg.validate();  // the bound itself is legal
    cfg.freezer_backoff_ns = sec::kMaxFreezerBackoffNs + 1;
    // Beyond 48 bits a TuningState would silently truncate what the same
    // Config spins statically.
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, RejectsBadMaxThreads) {
    sec::Config cfg;
    cfg.max_threads = 0;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
    cfg.max_threads = sec::kMaxThreads + 1;
    EXPECT_THROW(Stack{cfg}, std::invalid_argument);
}

TEST(SecConfigTest, AcceptsAllAggregatorCounts) {
    for (std::size_t aggs = 1; aggs <= sec::kMaxAggregators; ++aggs) {
        sec::Config cfg;
        cfg.num_aggregators = aggs;
        cfg.max_threads = 16;
        Stack stack(cfg);
        stack.push(aggs);
        EXPECT_EQ(stack.pop().value(), aggs);
        EXPECT_FALSE(stack.pop().has_value());
    }
}

TEST(SecConfigTest, MappingModesPreserveSemantics) {
    for (auto mapping : {sec::AggregatorMapping::kContiguous,
                         sec::AggregatorMapping::kRoundRobin}) {
        sec::Config cfg;
        cfg.mapping = mapping;
        cfg.max_threads = 16;
        Stack stack(cfg);
        constexpr unsigned kThreads = 4;
        constexpr std::uint64_t kPerThread = 5000;
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < kThreads; ++t) {
            workers.emplace_back([&stack] {
                for (std::uint64_t i = 0; i < kPerThread; ++i) {
                    stack.push(i);
                }
            });
        }
        for (auto& w : workers) w.join();
        std::uint64_t drained = 0;
        while (stack.pop().has_value()) ++drained;
        EXPECT_EQ(drained, kThreads * kPerThread);
    }
}

TEST(SecConfigTest, StatsOffByDefault) {
    sec::Config cfg;
    cfg.max_threads = 8;
    Stack stack(cfg);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        stack.push(i);
        (void)stack.pop();
    }
    const sec::StatsSnapshot s = stack.stats();
    EXPECT_EQ(s.batches, 0u);
    EXPECT_EQ(s.batched_ops, 0u);
}

TEST(SecConfigTest, CollectStatsYieldsDegreesOnUpdateHeavyMix) {
    sec::Config cfg;
    cfg.max_threads = 16;
    cfg.collect_stats = true;
    Stack stack(cfg);

    constexpr unsigned kThreads = 8;
    constexpr std::uint32_t kPerThread = 20000;
    // Elimination needs pushes and pops to genuinely overlap; on a heavily
    // loaded host one round of churn can serialise, so retry (stats
    // accumulate across rounds) instead of asserting on scheduling luck.
    for (int round = 0; round < 3; ++round) {
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < kThreads; ++t) {
            workers.emplace_back([&stack, t] {
                sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
                // kUpdateHeavy: 50% push, 50% pop.
                for (std::uint32_t i = 0; i < kPerThread; ++i) {
                    if (rng.next_below(100) < sec::kUpdateHeavy.push_pct) {
                        stack.push(i);
                    } else {
                        (void)stack.pop();
                    }
                }
            });
        }
        for (auto& w : workers) w.join();
        if (stack.stats().eliminated_ops > 0) break;
    }

    const sec::StatsSnapshot s = stack.stats();
    EXPECT_GT(s.batches, 0u);
    EXPECT_GT(s.batched_ops, 0u);
    EXPECT_GE(s.batching_degree(), 1.0);
    // Concurrent pushes and pops must have met inside batches.
    EXPECT_GT(s.eliminated_ops, 0u);
    EXPECT_GT(s.elimination_pct(), 0.0);
    // Every batched op is either eliminated or combined, never both.
    EXPECT_EQ(s.eliminated_ops + s.combined_ops, s.batched_ops);
    EXPECT_LE(s.elimination_pct() + s.combining_pct(), 100.0001);
}

}  // namespace
