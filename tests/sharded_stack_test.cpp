// sharded_stack_test.cpp — the sec::shard façade: per-shard LIFO, stealing
// semantics (values parked on a foreign shard are found before an empty
// verdict, and a quiescent empty verdict is exact), load/steal accounting,
// config validation, registry composition of the SEC@shardK variants, and a
// migrating-thread churn designed to run clean under -DSEC_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sharded_stack.hpp"
#include "exec/worker_pool.hpp"
#include "sec.hpp"
#include "workload/registry.hpp"

namespace {

using Value = std::uint64_t;
using Inner = sec::SecStack<Value>;
using Sharded = sec::shard::ShardedStack<Inner>;

std::unique_ptr<Sharded> make_sharded(std::size_t shards,
                                      std::size_t max_threads = 64,
                                      bool collect_stats = false) {
    sec::shard::ShardConfig scfg;
    scfg.num_shards = shards;
    scfg.max_threads = max_threads;
    sec::Config cfg;
    cfg.max_threads = max_threads;
    cfg.num_aggregators =
        std::min(cfg.num_aggregators, cfg.max_threads);
    cfg.collect_stats = collect_stats;
    return std::make_unique<Sharded>(scfg, [cfg](std::size_t) {
        return std::make_unique<Inner>(cfg);
    });
}

TEST(ShardedStack, RejectsBadShardCounts) {
    sec::shard::ShardConfig cfg;
    cfg.num_shards = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.num_shards = sec::shard::kMaxShards + 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.num_shards = 2;
    cfg.max_threads = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// A thread whose pops are never stolen from sees exact LIFO: all its
// operations land on its home shard, which is an individually linearizable
// stack. This is the ordering contract sharding keeps (DESIGN.md §8).
TEST(ShardedStack, SingleThreadIsLifoOnItsHomeShard) {
    auto stack = make_sharded(4);
    constexpr Value kCount = 1000;
    for (Value v = 1; v <= kCount; ++v) EXPECT_TRUE(stack->push(v));
    for (Value v = kCount; v >= 1; --v) {
        auto popped = stack->pop();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, v);
    }
    EXPECT_FALSE(stack->pop().has_value());

    // Everything went through one shard — the caller's home.
    const sec::shard::ShardStats ss = stack->shard_stats();
    ASSERT_EQ(ss.shard_ops.size(), 4u);
    EXPECT_EQ(ss.shard_ops[stack->home_shard()], 2 * kCount);
    EXPECT_EQ(ss.steals, 0u);
    EXPECT_EQ(ss.pushes, kCount);
    EXPECT_EQ(ss.pops, kCount);
}

TEST(ShardedStack, PeekIsNonDestructiveAndProbesForeignShards) {
    auto stack = make_sharded(4);
    const std::size_t foreign = (stack->home_shard() + 2) % 4;
    stack->shard(foreign).push(7);
    EXPECT_EQ(stack->peek().value(), 7u);
    EXPECT_EQ(stack->peek().value(), 7u);  // unchanged
    EXPECT_EQ(stack->pop().value(), 7u);
    EXPECT_FALSE(stack->peek().has_value());
}

// Values parked on a foreign shard must be found by the steal sweep before
// an empty verdict, in that shard's LIFO order, and the accounting must
// attribute them as steals.
TEST(ShardedStack, PopStealsFromAForeignShardBeforeReportingEmpty) {
    auto stack = make_sharded(4);
    const std::size_t foreign = (stack->home_shard() + 2) % 4;
    constexpr Value kCount = 8;
    for (Value v = 1; v <= kCount; ++v) {
        stack->shard(foreign).push(v);
    }
    for (Value v = kCount; v >= 1; --v) {
        auto popped = stack->pop();
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, v);  // the foreign shard's LIFO order
    }
    EXPECT_FALSE(stack->pop().has_value());

    const sec::shard::ShardStats ss = stack->shard_stats();
    EXPECT_EQ(ss.steals, kCount);
    EXPECT_EQ(ss.shard_ops[foreign], kCount);
    // Each steal probed at least the shards between home and the hit; the
    // final empty pop swept all three foreign shards.
    EXPECT_GE(ss.steal_probes, kCount);
    EXPECT_EQ(ss.empty_pops, 1u);
    EXPECT_GT(ss.steal_pct(), 99.9);
}

// After workers are quiet, a full drain through the façade must leave every
// shard empty — the default probe bound sweeps all shards, so a quiescent
// empty verdict is exact, not probabilistic.
TEST(ShardedStack, QuiescentEmptyVerdictIsExact) {
    auto stack = make_sharded(3);
    for (std::size_t s = 0; s < 3; ++s) {
        for (Value v = 0; v < 50; ++v) stack->shard(s).push(v);
    }
    std::size_t drained = 0;
    while (stack->pop().has_value()) ++drained;
    EXPECT_EQ(drained, 150u);
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_FALSE(stack->shard(s).pop().has_value()) << "shard " << s;
    }
}

TEST(ShardedStack, StatsAggregateAcrossShards) {
    auto stack = make_sharded(2, 64, /*collect_stats=*/true);
    constexpr unsigned kThreads = 4;
    sec::exec::WorkerPool::run(kThreads, [&](sec::exec::WorkerContext&) {
        for (Value v = 0; v < 20000; ++v) {
            stack->push(v);
            (void)stack->pop();
        }
    });
    const sec::StatsSnapshot s = stack->stats();
    EXPECT_GT(s.batches, 0u);
    EXPECT_EQ(s.eliminated_ops + s.combined_ops, s.batched_ops);
}

constexpr Value tag(unsigned thread, std::uint32_t seq) {
    return (static_cast<Value>(thread + 1) << 32) | seq;
}

// Balanced churn across several ROUNDS of short-lived threads: thread ids
// are recycled between rounds, so successive workers inherit ids — and with
// them home shards — other threads just vacated, exercising the
// affinity-under-migration path. Every popped value was pushed exactly
// once; designed to run clean under TSan.
TEST(ShardedStack, MigratingThreadChurnLosesNothing) {
    auto stack = make_sharded(4);
    constexpr unsigned kThreads = 4;
    constexpr unsigned kRounds = 3;
    constexpr std::uint32_t kOps = 8000;

    std::vector<Value> all_pushed;
    std::vector<Value> all_popped;
    for (unsigned round = 0; round < kRounds; ++round) {
        std::vector<std::vector<Value>> pushed(kThreads);
        std::vector<std::vector<Value>> popped(kThreads);
        sec::exec::WorkerPool::run(
            kThreads, [&, round](sec::exec::WorkerContext& wc) {
                const unsigned t = wc.index;
                const unsigned who = round * kThreads + t;
                sec::Xoshiro256 rng((who + 1) * 0x9E3779B97F4A7C15ull);
                std::uint32_t seq = 0;
                for (std::uint32_t i = 0; i < kOps; ++i) {
                    if (rng.next_below(2) == 0) {
                        const Value v = tag(who, seq++);
                        stack->push(v);
                        pushed[t].push_back(v);
                    } else if (auto v = stack->pop()) {
                        popped[t].push_back(*v);
                    }
                }
            });
        for (unsigned t = 0; t < kThreads; ++t) {
            all_pushed.insert(all_pushed.end(), pushed[t].begin(),
                              pushed[t].end());
            all_popped.insert(all_popped.end(), popped[t].begin(),
                              popped[t].end());
        }
    }
    while (auto v = stack->pop()) all_popped.push_back(*v);

    std::sort(all_pushed.begin(), all_pushed.end());
    std::sort(all_popped.begin(), all_popped.end());
    ASSERT_EQ(all_popped.size(), all_pushed.size());
    EXPECT_EQ(all_popped, all_pushed)
        << "value lost, duplicated, or invented under sharded churn";
}

TEST(ShardStats, ImbalanceAndStealPctMath) {
    sec::shard::ShardStats ss;
    EXPECT_DOUBLE_EQ(ss.imbalance(), 1.0);  // idle structure reads balanced
    EXPECT_DOUBLE_EQ(ss.steal_pct(), 0.0);
    ss.shard_ops = {100, 100, 100, 100};
    EXPECT_DOUBLE_EQ(ss.imbalance(), 1.0);
    ss.shard_ops = {400, 0, 0, 0};  // everything on one shard
    EXPECT_DOUBLE_EQ(ss.imbalance(), 4.0);
    ss.pops = 200;
    ss.steals = 50;
    EXPECT_DOUBLE_EQ(ss.steal_pct(), 25.0);
}

// ---- registry composition ---------------------------------------------------

TEST(ShardRegistry, ShardVariantsComposeWithReclaimSchemes) {
    auto& reg = sec::bench::AlgorithmRegistry::instance();
    for (const char* name : {"SEC@shard2", "SEC@shard4", "SEC@shard8"}) {
        const sec::bench::AlgoSpec* spec = reg.find(name);
        ASSERT_NE(spec, nullptr) << name;
        EXPECT_FALSE(spec->default_set) << name;  // paper columns unchanged
        EXPECT_EQ(spec->base, name);  // family IS the sharded name
        EXPECT_EQ(spec->reclaim, "ebr");
        // Per-shard domains are private by design, so the external-domain
        // matrix must skip these.
        EXPECT_FALSE(spec->supports_domain) << name;
        for (const char* scheme : {"hp", "qsbr", "leak"}) {
            const sec::bench::AlgoSpec* variant =
                reg.find_variant(spec->base, scheme);
            ASSERT_NE(variant, nullptr) << name << "@" << scheme;
            EXPECT_EQ(variant->base, spec->base);
            EXPECT_EQ(variant->reclaim, scheme);
        }
    }
}

TEST(ShardRegistry, ErasedShardVariantKeepsSemanticsAndStats) {
    const sec::bench::AlgoSpec* spec =
        sec::bench::AlgorithmRegistry::instance().find("SEC@shard4");
    ASSERT_NE(spec, nullptr);
    sec::bench::StackParams params;
    params.threads = 2;
    sec::AnyStack stack = spec->make(params);
    for (Value v = 1; v <= 16; ++v) EXPECT_TRUE(stack.push(v));
    for (Value v = 16; v >= 1; --v) EXPECT_EQ(stack.pop(), v);
    EXPECT_FALSE(stack.pop().has_value());
    EXPECT_TRUE(stack.has_stats());  // aggregated inner SEC counters
}

}  // namespace
