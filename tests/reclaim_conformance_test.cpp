// reclaim_conformance_test.cpp — the typed contract every sec::reclaim
// scheme must honour: accounting snapshots never underflow under concurrent
// churn, drain_all() empties limbo once all protection is released (except
// the deliberately-leaky baseline), protected pointers survive a drain,
// destruction frees everything, and a reclaimer-templated stack survives
// multi-threaded churn (run under TSan/ASan in CI, where a use-after-free
// or a premature free shows up as a race / heap error).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "exec/worker_pool.hpp"
#include "reclaim/reclaim.hpp"
#include "sec.hpp"
#include "workload/registry.hpp"

namespace {

namespace rc = sec::reclaim;

struct Probe {
    explicit Probe(std::atomic<std::uint64_t>& c) : counter(c) {}
    ~Probe() { counter.fetch_add(1, std::memory_order_relaxed); }
    std::atomic<std::uint64_t>& counter;
};

template <class R>
class ReclaimConformanceTest : public ::testing::Test {};

using AllReclaimers = ::testing::Types<rc::EpochDomain, rc::HazardDomain,
                                       rc::QsbrDomain, rc::LeakyDomain>;
TYPED_TEST_SUITE(ReclaimConformanceTest, AllReclaimers);

// retired == freed + limbo at every sampled instant (the Stats snapshot is
// taken in one call, so a concurrent free between two loads cannot make
// in_limbo() wrap to a huge value), and exactly at the end.
TYPED_TEST(ReclaimConformanceTest, AccountingBalancesUnderChurn) {
    using R = TypeParam;
    R domain;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 5000;

    std::atomic<bool> done{false};
    sec::exec::PoolOptions wo;
    wo.coordinator_in_barrier = false;
    sec::exec::WorkerPool sampler(1, wo);
    sampler.start([&domain, &done](sec::exec::WorkerContext&) {
        while (!done.load(std::memory_order_relaxed)) {
            const rc::Stats s = domain.stats();
            ASSERT_LE(s.freed, s.retired);
            ASSERT_LE(s.in_limbo(), s.retired);  // no wrap-around monster
        }
    });

    sec::exec::WorkerPool workers(kThreads, wo);
    workers.start([&domain](sec::exec::WorkerContext&) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            {
                typename R::Guard g(domain);
                domain.retire(new std::uint64_t(i));
            }
            domain.quiesce();
        }
        domain.offline();
    });
    workers.join();
    done.store(true, std::memory_order_relaxed);
    sampler.join();

    const rc::Stats s = domain.stats();
    EXPECT_EQ(s.retired, kThreads * kPerThread);
    EXPECT_EQ(s.retired, s.freed + s.in_limbo());
    EXPECT_GT(s.limbo_hwm, 0u);
    if constexpr (R::kDrainsOnDemand) {
        // The amortised path must reclaim during the run, not defer
        // everything to destruction.
        EXPECT_GT(s.freed, 0u);
    } else {
        EXPECT_EQ(s.freed, 0u);  // leaky: nothing freed before the dtor
    }
}

TYPED_TEST(ReclaimConformanceTest, DrainAllEmptiesLimboOnceQuiet) {
    using R = TypeParam;
    R domain;
    constexpr std::uint64_t kCount = 100;
    for (std::uint64_t i = 0; i < kCount; ++i) {
        domain.retire(new std::uint64_t(i));
    }
    domain.drain_all();
    const rc::Stats s = domain.stats();
    EXPECT_EQ(s.retired, kCount);
    if constexpr (R::kDrainsOnDemand) {
        EXPECT_EQ(s.in_limbo(), 0u);
        EXPECT_EQ(s.freed, kCount);
    } else {
        EXPECT_EQ(s.freed, 0u);
        EXPECT_EQ(s.in_limbo(), kCount);
    }
}

// A pointer the calling thread still protects survives drain_all(); once
// protection is released, the next drain reclaims it.
TYPED_TEST(ReclaimConformanceTest, ProtectedPointerSurvivesDrain) {
    using R = TypeParam;
    std::atomic<std::uint64_t> destroyed{0};
    R domain;
    std::atomic<Probe*> src{new Probe(destroyed)};
    domain.quiesce();  // QSBR: the thread is online while it holds refs
    {
        typename R::Guard g(domain);
        Probe* p = g.protect(0u, src);
        ASSERT_NE(p, nullptr);
        src.store(nullptr, std::memory_order_release);  // unlink
        domain.retire(p);
        domain.drain_all();
        EXPECT_EQ(destroyed.load(), 0u) << "freed while still protected";
    }
    domain.quiesce();  // QSBR: a quiescent point after dropping the ref
    domain.offline();
    domain.drain_all();
    if constexpr (R::kDrainsOnDemand) {
        EXPECT_EQ(destroyed.load(), 1u);
    } else {
        EXPECT_EQ(destroyed.load(), 0u);  // leaky frees at destruction only
    }
}

TYPED_TEST(ReclaimConformanceTest, DestructionFreesEverything) {
    using R = TypeParam;
    std::atomic<std::uint64_t> destroyed{0};
    constexpr std::uint64_t kCount = 1000;
    {
        R domain;
        for (std::uint64_t i = 0; i < kCount; ++i) {
            domain.retire(new Probe(destroyed));
        }
    }
    EXPECT_EQ(destroyed.load(), kCount);
}

// Multi-threaded churn through a reclaimer-templated stack: values must be
// conserved, and the sanitizers see every dereference the scheme allows.
// The per-iteration quiesce() + end-of-loop reclaim_offline() mirror what
// the workload runner's hooks do (QSBR's safety contract).
TYPED_TEST(ReclaimConformanceTest, StackChurnIsSafeAndConserving) {
    using R = TypeParam;
    using Value = std::uint64_t;
    R domain;
    sec::TreiberStack<Value, R> stack(16, domain);

    constexpr unsigned kThreads = 4;
    constexpr std::uint32_t kOps = 20000;
    auto tag = [](unsigned thread, std::uint32_t seq) {
        return (static_cast<Value>(thread + 1) << 32) | seq;
    };

    std::vector<std::vector<Value>> pushed(kThreads);
    std::vector<std::vector<Value>> popped(kThreads);
    sec::exec::WorkerPool::run(kThreads, [&](sec::exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
        std::uint32_t seq = 0;
        for (std::uint32_t i = 0; i < kOps; ++i) {
            stack.quiesce();
            const std::uint64_t r = rng.next_below(4);
            if (r == 0) {
                const Value v = tag(t, seq++);
                stack.push(v);
                pushed[t].push_back(v);
            } else if (r == 1) {
                (void)stack.peek();
            } else if (auto v = stack.pop()) {
                popped[t].push_back(*v);
            }
        }
        stack.reclaim_offline();
    });

    std::vector<Value> all_pushed, all_popped;
    for (unsigned t = 0; t < kThreads; ++t) {
        all_pushed.insert(all_pushed.end(), pushed[t].begin(),
                          pushed[t].end());
        all_popped.insert(all_popped.end(), popped[t].begin(),
                          popped[t].end());
    }
    while (auto v = stack.pop()) all_popped.push_back(*v);
    stack.reclaim_offline();

    std::sort(all_pushed.begin(), all_pushed.end());
    std::sort(all_popped.begin(), all_popped.end());
    EXPECT_EQ(all_popped, all_pushed)
        << "value lost, duplicated, or invented under churn";

    domain.drain_all();
    const rc::Stats s = domain.stats();
    EXPECT_EQ(s.retired, s.freed + s.in_limbo());
}

// FIFO twin of the stack churn: the queues' dequeue paths are where the
// hazard discipline is hardest (MS protects the dummy AND its successor in
// two slots at once; SEC_Q's combiner walks a detached chain whose new
// dummy a later dequeuer may retire), so run the same conserve-under-churn
// soak through MsQueue and SecQueue on every scheme. This is what covers
// MS@hp and SEC_Q@ebr under TSan/ASan in CI.
template <class Q, class R>
void queue_churn(Q& queue) {
    constexpr unsigned kThreads = 4;
    constexpr std::uint32_t kOps = 20000;
    using Value = std::uint64_t;
    auto tag = [](unsigned thread, std::uint32_t seq) {
        return (static_cast<Value>(thread + 1) << 32) | seq;
    };

    std::vector<std::vector<Value>> pushed(kThreads);
    std::vector<std::vector<Value>> popped(kThreads);
    sec::exec::WorkerPool::run(kThreads, [&](sec::exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
        std::uint32_t seq = 0;
        for (std::uint32_t i = 0; i < kOps; ++i) {
            queue.quiesce();
            const std::uint64_t r = rng.next_below(4);
            if (r == 0) {
                const Value v = tag(t, seq++);
                queue.put(v);
                pushed[t].push_back(v);
            } else if (r == 1) {
                (void)queue.peek();
            } else if (auto v = queue.take()) {
                popped[t].push_back(*v);
            }
        }
        queue.reclaim_offline();
    });

    std::vector<Value> all_pushed, all_popped;
    for (unsigned t = 0; t < kThreads; ++t) {
        all_pushed.insert(all_pushed.end(), pushed[t].begin(),
                          pushed[t].end());
        all_popped.insert(all_popped.end(), popped[t].begin(),
                          popped[t].end());
    }
    while (auto v = queue.take()) all_popped.push_back(*v);
    queue.reclaim_offline();

    std::sort(all_pushed.begin(), all_pushed.end());
    std::sort(all_popped.begin(), all_popped.end());
    EXPECT_EQ(all_popped, all_pushed)
        << "value lost, duplicated, or invented under FIFO churn";
}

TYPED_TEST(ReclaimConformanceTest, QueueChurnIsSafeAndConserving) {
    using R = TypeParam;
    using Value = std::uint64_t;
    {
        R domain;
        sec::MsQueue<Value, R> ms(16, domain);
        queue_churn<decltype(ms), R>(ms);
        domain.drain_all();
        const rc::Stats s = domain.stats();
        EXPECT_EQ(s.retired, s.freed + s.in_limbo());
    }
    {
        R domain;
        sec::Config cfg;
        cfg.max_threads = 16;
        sec::SecQueue<Value, R> sq(cfg, domain);
        queue_churn<decltype(sq), R>(sq);
        domain.drain_all();
        const rc::Stats s = domain.stats();
        EXPECT_EQ(s.retired, s.freed + s.in_limbo());
    }
}

// The registry's cross-product covers >= 4 schemes x >= 2 algorithms, every
// variant round-trips through the erased handle, and a handle of the right
// scheme is accepted where a mismatched one falls back to a private domain.
TEST(ReclaimRegistry, CrossProductRoundTripsAndBindsDomains) {
    auto& algo_reg = sec::bench::AlgorithmRegistry::instance();
    auto& rec_reg = sec::bench::ReclaimerRegistry::instance();
    ASSERT_GE(rec_reg.all().size(), 4u);
    unsigned combos = 0;
    for (const sec::bench::ReclaimerSpec* scheme : rec_reg.all()) {
        for (const char* base :
             {"TRB", "SEC", "EB", "TSI", "POOL", "MS", "SEC_Q"}) {
            const sec::bench::AlgoSpec* spec =
                algo_reg.find_variant(base, scheme->name);
            if (spec == nullptr) continue;  // TSI@hp intentionally absent
            SCOPED_TRACE(std::string(base) + "@" + scheme->name);
            rc::DomainHandle domain = scheme->make_domain();
            EXPECT_EQ(domain.scheme(), scheme->name);
            sec::bench::StackParams params;
            params.threads = 2;
            params.domain = &domain;
            sec::AnyStack stack = spec->make(params);
            for (std::uint64_t v = 1; v <= 16; ++v) {
                EXPECT_TRUE(stack.push(v));
            }
            for (int i = 0; i < 16; ++i) {
                EXPECT_TRUE(stack.pop().has_value());
            }
            EXPECT_FALSE(stack.pop().has_value());
            // 16 pops through the external domain: retires must have landed
            // there (TSI retires only on dead-prefix detach, so >= 0).
            EXPECT_LE(domain.stats().freed, domain.stats().retired);
            ++combos;
        }
    }
    EXPECT_GE(combos, 4u * 2u);
    EXPECT_EQ(algo_reg.find("TSI@hp"), nullptr);  // blanket-only structure
}

}  // namespace
