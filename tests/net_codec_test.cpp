// net_codec_test — the sec::net wire codec (net/protocol.hpp): round-trips
// for every message type, torn-read resumption, and the reject paths
// (oversized, zero-length, unknown-type, size-mismatched frames) that keep
// a desynchronized or hostile peer from wedging the server.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sec::net {
namespace {

std::vector<Message> sample_messages() {
    Message push_req;
    push_req.type = MsgType::kPushReq;
    push_req.tag = 0xDEADBEEFCAFE0001ull;
    push_req.value = 0x0123456789ABCDEFull;

    Message pop_req;
    pop_req.type = MsgType::kPopReq;
    pop_req.tag = 42;

    Message stats_req;
    stats_req.type = MsgType::kStatsReq;
    stats_req.tag = ~std::uint64_t{0};

    Message push_resp;
    push_resp.type = MsgType::kPushResp;
    push_resp.tag = 7;
    push_resp.ok = false;

    Message pop_resp;
    pop_resp.type = MsgType::kPopResp;
    pop_resp.tag = 9;
    pop_resp.ok = true;
    pop_resp.value = 0xFFFFFFFFFFFFFFFFull;

    Message stats_resp;
    stats_resp.type = MsgType::kStatsResp;
    stats_resp.tag = 11;
    stats_resp.stats = {100, 60, 3, 17, 1};  // shape byte: fifo

    return {push_req, pop_req, stats_req, push_resp, pop_resp, stats_resp};
}

void expect_equal(const Message& a, const Message& b) {
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.tag, b.tag);
    switch (a.type) {
        case MsgType::kPushReq:
            EXPECT_EQ(a.value, b.value);
            break;
        case MsgType::kPopReq:
        case MsgType::kStatsReq:
            break;
        case MsgType::kPushResp:
            EXPECT_EQ(a.ok, b.ok);
            break;
        case MsgType::kPopResp:
            EXPECT_EQ(a.ok, b.ok);
            EXPECT_EQ(a.value, b.value);
            break;
        case MsgType::kStatsResp:
            EXPECT_EQ(a.stats.pushes, b.stats.pushes);
            EXPECT_EQ(a.stats.pops, b.stats.pops);
            EXPECT_EQ(a.stats.empties, b.stats.empties);
            EXPECT_EQ(a.stats.batches, b.stats.batches);
            EXPECT_EQ(a.stats.shape, b.stats.shape);
            break;
    }
}

TEST(NetCodec, RoundTripsEveryMessageType) {
    for (const Message& msg : sample_messages()) {
        std::vector<std::uint8_t> wire;
        encode(msg, wire);
        ASSERT_EQ(wire.size(), kHeaderBytes + payload_size(msg.type));

        Message decoded;
        const DecodeResult r = decode(wire.data(), wire.size(), decoded);
        ASSERT_EQ(r.status, DecodeStatus::kOk);
        EXPECT_EQ(r.consumed, wire.size());
        expect_equal(msg, decoded);
    }
}

TEST(NetCodec, DecodesAStreamOfBackToBackFrames) {
    const std::vector<Message> msgs = sample_messages();
    std::vector<std::uint8_t> wire;
    for (const Message& msg : msgs) encode(msg, wire);

    std::size_t off = 0;
    for (const Message& expected : msgs) {
        Message decoded;
        const DecodeResult r =
            decode(wire.data() + off, wire.size() - off, decoded);
        ASSERT_EQ(r.status, DecodeStatus::kOk);
        expect_equal(expected, decoded);
        off += r.consumed;
    }
    EXPECT_EQ(off, wire.size());
}

// The stream reader's torn-read contract: any strict prefix of a frame is
// kNeedMore with nothing consumed, and the frame decodes intact once the
// last byte arrives — byte-at-a-time delivery (the TCP worst case) works.
TEST(NetCodec, TornReadsNeedMoreUntilTheLastByte) {
    for (const Message& msg : sample_messages()) {
        std::vector<std::uint8_t> wire;
        encode(msg, wire);
        for (std::size_t len = 0; len < wire.size(); ++len) {
            Message decoded;
            const DecodeResult r = decode(wire.data(), len, decoded);
            EXPECT_EQ(r.status, DecodeStatus::kNeedMore)
                << "prefix length " << len;
            EXPECT_EQ(r.consumed, 0u);
        }
        Message decoded;
        const DecodeResult r = decode(wire.data(), wire.size(), decoded);
        ASSERT_EQ(r.status, DecodeStatus::kOk);
        expect_equal(msg, decoded);
    }
}

TEST(NetCodec, RejectsOversizedFramesFromTheHeaderAlone) {
    // Header claims kMaxPayload + 1 bytes; only the header is present. The
    // decoder must reject immediately rather than ask for the body.
    const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload) + 1;
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 4; ++i) {
        wire.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
    }
    Message decoded;
    EXPECT_EQ(decode(wire.data(), wire.size(), decoded).status,
              DecodeStatus::kError);

    // Same for an absurd length (a peer speaking a different protocol).
    wire.assign({0xFF, 0xFF, 0xFF, 0xFF});
    EXPECT_EQ(decode(wire.data(), wire.size(), decoded).status,
              DecodeStatus::kError);
}

TEST(NetCodec, RejectsZeroLengthFrames) {
    const std::vector<std::uint8_t> wire = {0, 0, 0, 0};
    Message decoded;
    EXPECT_EQ(decode(wire.data(), wire.size(), decoded).status,
              DecodeStatus::kError);
}

TEST(NetCodec, RejectsUnknownTypeBytes) {
    // A 9-byte payload (the kPopReq size) with a type byte nothing maps to.
    std::vector<std::uint8_t> wire = {9, 0, 0, 0, 0x7F};
    for (int i = 0; i < 8; ++i) wire.push_back(0);
    Message decoded;
    EXPECT_EQ(decode(wire.data(), wire.size(), decoded).status,
              DecodeStatus::kError);

    EXPECT_EQ(payload_size(static_cast<MsgType>(0x7F)), 0u);
    EXPECT_EQ(payload_size(static_cast<MsgType>(0)), 0u);
}

TEST(NetCodec, RejectsTypeSizeMismatches) {
    // A valid kPushReq re-labelled with a kPopReq length: the header says 9
    // bytes but the type's wire size is 17.
    Message msg;
    msg.type = MsgType::kPushReq;
    msg.tag = 5;
    msg.value = 6;
    std::vector<std::uint8_t> wire;
    encode(msg, wire);
    wire[0] = 9;  // lie about the payload length (LSB of the u32 prefix)
    Message decoded;
    EXPECT_EQ(decode(wire.data(), wire.size(), decoded).status,
              DecodeStatus::kError);
}

TEST(NetCodec, GarbageHeaderNeverConsumes) {
    const std::vector<std::uint8_t> garbage = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
                                               0x11, 0x22, 0x33, 0x44, 0x55};
    Message decoded;
    const DecodeResult r = decode(garbage.data(), garbage.size(), decoded);
    EXPECT_EQ(r.status, DecodeStatus::kError);
    EXPECT_EQ(r.consumed, 0u);
}

}  // namespace
}  // namespace sec::net
