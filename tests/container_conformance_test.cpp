// container_conformance_test.cpp — the shape contract, checked generically.
//
// One typed suite over the ConcurrentContainer concept covering the LIFO
// spines (SEC, TRB), the FIFO trio (SEC_Q, MS, FCQ/FcStack), and the full
// reclaimer cross-product where the container is reclaim-templated
// (EBR/HP/QSBR/leak). Every element is stamped with a (producer, seq)
// token (container_checkers.hpp); the suite then verifies, per shape:
//
//   * conservation — the multiset of removals equals the multiset of
//     inserts after any churn (no loss, no duplication, no invention);
//   * FIFO — per (observer, producer) strictly increasing seqs, both in a
//     quiescent drain and under full concurrent producer/consumer churn at
//     8+8 threads (a queue that reorders only under contention fails here);
//   * LIFO — per (observer, producer) strictly decreasing seqs in the
//     quiescent drain (under concurrent churn elimination legally
//     short-circuits pairs, so the LIFO oracle needs the two-phase shape).
//
// Designed to run clean under -DSEC_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "container_checkers.hpp"
#include "exec/worker_pool.hpp"
#include "sec.hpp"

namespace {

namespace st = sec::testing;
using st::Value;

template <class C>
class ContainerConformanceTest : public ::testing::Test {};

// Reclaim-templated containers appear once per scheme; the flat-combining
// pair owns its nodes behind the lock and takes no reclaimer.
using ContainerTypes = ::testing::Types<
    // LIFO: SEC and Treiber across all four schemes.
    sec::SecStack<Value>, sec::SecStack<Value, sec::reclaim::HazardDomain>,
    sec::SecStack<Value, sec::reclaim::QsbrDomain>,
    sec::SecStack<Value, sec::reclaim::LeakyDomain>,
    sec::TreiberStack<Value>,
    sec::TreiberStack<Value, sec::reclaim::HazardDomain>,
    sec::TreiberStack<Value, sec::reclaim::QsbrDomain>,
    sec::TreiberStack<Value, sec::reclaim::LeakyDomain>,
    // FIFO: SEC_Q and MS across all four schemes.
    sec::SecQueue<Value>, sec::SecQueue<Value, sec::reclaim::HazardDomain>,
    sec::SecQueue<Value, sec::reclaim::QsbrDomain>,
    sec::SecQueue<Value, sec::reclaim::LeakyDomain>,
    sec::MsQueue<Value>, sec::MsQueue<Value, sec::reclaim::HazardDomain>,
    sec::MsQueue<Value, sec::reclaim::QsbrDomain>,
    sec::MsQueue<Value, sec::reclaim::LeakyDomain>,
    // Flat combining, both shapes.
    sec::FcStack<Value>, sec::FcQueue<Value>>;
TYPED_TEST_SUITE(ContainerConformanceTest, ContainerTypes);

TYPED_TEST(ContainerConformanceTest, SatisfiesTheConcept) {
    static_assert(sec::ConcurrentContainer<TypeParam>);
    static_assert(TypeParam::kShape == sec::ContainerShape::lifo ||
                  TypeParam::kShape == sec::ContainerShape::fifo);
}

TYPED_TEST(ContainerConformanceTest, TakeOnEmptyIsEmptyOptional) {
    auto c = sec::make_stack<TypeParam>(8);
    EXPECT_FALSE(c->take().has_value());
    EXPECT_FALSE(c->peek().has_value());
    EXPECT_FALSE(c->take().has_value());
}

// put/take are the shape-neutral spellings; push/pop must be the same ops
// (the harness uses the latter, the concept requires both).
TYPED_TEST(ContainerConformanceTest, ShapeTraitMatchesObservedOrder) {
    auto c = sec::make_stack<TypeParam>(8);
    EXPECT_TRUE(c->put(1));
    EXPECT_TRUE(c->push(2));
    EXPECT_TRUE(c->put(3));
    std::vector<Value> out;
    while (auto v = c->take()) out.push_back(*v);
    if constexpr (TypeParam::kShape == sec::ContainerShape::fifo) {
        EXPECT_EQ(out, (std::vector<Value>{1, 2, 3}));
    } else {
        EXPECT_EQ(out, (std::vector<Value>{3, 2, 1}));
    }
}

TYPED_TEST(ContainerConformanceTest, TokensConservedUnderChurn) {
    auto c = sec::make_stack<TypeParam>(8 + 8);
    const auto r = st::churn(*c, 8, 10000);
    st::expect_conserved(r);
    if constexpr (TypeParam::kShape == sec::ContainerShape::fifo) {
        // FIFO order is checkable even mid-churn: each worker's removals
        // are a subsequence of the total removal order.
        for (unsigned t = 0; t < r.popped.size(); ++t) {
            st::expect_per_producer_monotonic(r.popped[t], 8, true, "worker");
        }
        st::expect_per_producer_monotonic(r.drained, 8, true, "drain");
    }
}

// Two-phase fill-then-drain: producers run to completion first, so the
// container's content order is fully determined per producer and BOTH
// shapes make a checkable promise — increasing seqs for FIFO, decreasing
// for LIFO — for every concurrent drainer.
TYPED_TEST(ContainerConformanceTest, RemovalOrderRespectsShape) {
    constexpr unsigned kProducers = 8;
    constexpr unsigned kConsumers = 8;
    constexpr std::uint32_t kPerProducer = 4000;
    auto c = sec::make_stack<TypeParam>(kProducers + kConsumers + 8);

    sec::exec::WorkerPool::run(kProducers, [&](sec::exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        for (std::uint32_t i = 0; i < kPerProducer; ++i) {
            sec::exec::quiesce_hook(*c);
            ASSERT_TRUE(c->put(st::tag(t, i)));
        }
        sec::exec::offline_hook(*c);
    });

    // With no puts in flight, an empty take() means genuinely drained:
    // every linearizable removal after that point also sees empty.
    std::vector<std::vector<Value>> taken(kConsumers);
    sec::exec::WorkerPool::run(kConsumers, [&](sec::exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        for (;;) {
            sec::exec::quiesce_hook(*c);
            auto v = c->take();
            if (!v) break;
            taken[t].push_back(*v);
        }
        sec::exec::offline_hook(*c);
    });

    constexpr bool kIncreasing =
        TypeParam::kShape == sec::ContainerShape::fifo;
    std::vector<Value> inserted;
    std::vector<Value> removed;
    for (unsigned t = 0; t < kProducers; ++t) {
        for (std::uint32_t i = 0; i < kPerProducer; ++i) {
            inserted.push_back(st::tag(t, i));
        }
    }
    for (unsigned t = 0; t < kConsumers; ++t) {
        st::expect_per_producer_monotonic(taken[t], kProducers, kIncreasing,
                                          "consumer");
        removed.insert(removed.end(), taken[t].begin(), taken[t].end());
    }
    st::expect_same_multiset(std::move(inserted), std::move(removed));
}

// The acceptance headliner: FIFO total order under FULL concurrent churn —
// 8 dedicated producers and 8 dedicated consumers running simultaneously,
// 16 threads total. Per (consumer, producer) the dequeued seqs must be
// strictly increasing while enqueues race the dequeues; batched enqueue
// publication (SEC_Q's single tail exchange per combiner round) must not
// reorder any producer's elements.
TYPED_TEST(ContainerConformanceTest, FifoTotalOrderUnderConcurrentChurn) {
    if constexpr (TypeParam::kShape != sec::ContainerShape::fifo) {
        GTEST_SKIP() << "FIFO-only oracle; LIFO order under churn is "
                        "covered by RemovalOrderRespectsShape";
    } else {
        constexpr unsigned kProducers = 8;
        constexpr unsigned kConsumers = 8;
        constexpr std::uint32_t kPerProducer = 5000;
        auto c = sec::make_stack<TypeParam>(kProducers + kConsumers + 8);

        std::atomic<bool> done{false};
        std::vector<std::vector<Value>> taken(kConsumers);
        // Two pools so the consumers can outlive the producers: join the
        // producer pool, raise `done`, then join the consumers.
        sec::exec::PoolOptions wo;
        wo.coordinator_in_barrier = false;
        sec::exec::WorkerPool consumers(kConsumers, wo);
        consumers.start([&](sec::exec::WorkerContext& wc) {
            const unsigned t = wc.index;
            for (;;) {
                sec::exec::quiesce_hook(*c);
                if (auto v = c->take()) {
                    taken[t].push_back(*v);
                } else if (done.load(std::memory_order_acquire)) {
                    // Producers finished and the queue read empty after
                    // that: one more sweep to close the race where the
                    // final enqueue landed between our take and the
                    // done load.
                    for (;;) {
                        sec::exec::quiesce_hook(*c);
                        auto w = c->take();
                        if (!w) break;
                        taken[t].push_back(*w);
                    }
                    sec::exec::offline_hook(*c);
                    return;
                }
            }
        });
        sec::exec::WorkerPool producers(kProducers, wo);
        producers.start([&](sec::exec::WorkerContext& wc) {
            const unsigned t = wc.index;
            for (std::uint32_t i = 0; i < kPerProducer; ++i) {
                sec::exec::quiesce_hook(*c);
                ASSERT_TRUE(c->put(st::tag(t, i)));
            }
            sec::exec::offline_hook(*c);
        });
        producers.join();
        done.store(true, std::memory_order_release);
        consumers.join();

        std::vector<Value> inserted;
        std::vector<Value> removed;
        for (unsigned t = 0; t < kProducers; ++t) {
            for (std::uint32_t i = 0; i < kPerProducer; ++i) {
                inserted.push_back(st::tag(t, i));
            }
        }
        for (unsigned t = 0; t < kConsumers; ++t) {
            st::expect_per_producer_monotonic(taken[t], kProducers, true,
                                              "consumer");
            removed.insert(removed.end(), taken[t].begin(), taken[t].end());
        }
        st::expect_same_multiset(std::move(inserted), std::move(removed));
    }
}

}  // namespace
