// histogram_test.cpp — LatencyHistogram's bucket mapping and quantile
// contract: the log-bucketed layout promises <= 6.25% (1/16) relative error,
// bucket_bound is the inverse of bucket_of over the non-saturating range,
// quantiles behave at the q=0 / q=1 / empty / single-sample edges, and
// merge_from is equivalent to recording everything into one histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "workload/histogram.hpp"

namespace sb = sec::bench;
using H = sb::LatencyHistogram;

TEST(HistogramBuckets, BoundCoversTheValueWithinRelativeError) {
    // A spread of magnitudes, including sub-bucket-exact small values and
    // values straddling major-bucket boundaries.
    const std::uint64_t samples[] = {0,     1,     15,      16,      17,
                                     100,   1023,  1024,    1025,    999'999,
                                     1'000'000, 123'456'789, 1'000'000'000,
                                     std::uint64_t{1} << 40};
    for (std::uint64_t ns : samples) {
        const std::size_t b = H::bucket_of(ns);
        const std::uint64_t bound = H::bucket_bound(b);
        EXPECT_GE(bound, ns) << "ns=" << ns;
        // 1/16 sub-bucket granularity: the bound overshoots by at most one
        // sub-bucket width (6.25%), plus the off-by-one of integer bounds.
        EXPECT_LE(static_cast<double>(bound),
                  static_cast<double>(ns) * (1.0 + 1.0 / 16.0) + 1.0)
            << "ns=" << ns;
    }
}

TEST(HistogramBuckets, BucketOfIsTheInverseOfBucketBound) {
    // Majors >= 60 have bounds beyond 2^63 where the shift saturates, so
    // the round-trip contract covers the buckets any real latency can hit.
    for (std::size_t i = 0; i < 60 * 16; ++i) {
        EXPECT_EQ(H::bucket_of(H::bucket_bound(i)), i) << "bucket " << i;
    }
}

TEST(HistogramBuckets, HugeValuesSaturateInRange) {
    EXPECT_LT(H::bucket_of(~std::uint64_t{0}), H::bucket_count());
}

TEST(HistogramQuantile, EmptyHistogramReportsZero) {
    H h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.quantile_ns(0.5), 0u);
    EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(HistogramQuantile, SingleSampleDominatesEveryQuantile) {
    H h;
    h.record(100);
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        const std::uint64_t v = h.quantile_ns(q);
        EXPECT_GE(v, 100u) << "q=" << q;
        EXPECT_LE(v, 107u) << "q=" << q;  // one sub-bucket of slack
    }
}

TEST(HistogramQuantile, OutOfRangeQIsClamped) {
    H h;
    h.record(50);
    EXPECT_EQ(h.quantile_ns(-1.0), h.quantile_ns(0.0));
    EXPECT_EQ(h.quantile_ns(2.0), h.quantile_ns(1.0));
}

TEST(HistogramQuantile, QuantilesAreMonotoneOverASpread) {
    H h;
    for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i * 1000);
    std::uint64_t prev = 0;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const std::uint64_t v = h.quantile_ns(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
    // The p50 of 1..1000 µs sits near 500 µs, within bucket error.
    const double p50 = static_cast<double>(h.quantile_ns(0.5));
    EXPECT_GT(p50, 450'000.0);
    EXPECT_LT(p50, 560'000.0);
}

TEST(HistogramMerge, MergeFromEqualsRecordingIntoOne) {
    H a, b, all;
    for (std::uint64_t i = 1; i <= 500; ++i) {
        a.record(i * 7);
        all.record(i * 7);
    }
    for (std::uint64_t i = 1; i <= 300; ++i) {
        b.record(i * 1031);
        all.record(i * 1031);
    }
    a.merge_from(b);
    EXPECT_EQ(a.total(), all.total());
    EXPECT_DOUBLE_EQ(a.mean_ns(), all.mean_ns());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(a.quantile_ns(q), all.quantile_ns(q)) << "q=" << q;
    }
}
