// topology_test.cpp — sec::topo + sec::exec: sysfs parsing against canned
// fixture trees (single-socket SMT, dual-socket, degenerate 1-core), the
// dense renumbering maps, each placement policy's cpu order, plan
// offset/wrap for multi-pool splits, perf-counter graceful degradation
// under a forced-denied syscall (SEC_PERF_DISABLE), and the WorkerPool
// lifecycle (index coverage, tid registration, best-effort pinning).
//
// The fixture trees use the same file layout the kernel exposes under
// /sys/devices/system/cpu — Topology::parse() is byte-for-byte the code
// that reads the live tree, so what passes here is what runs on hardware.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "exec/placement.hpp"
#include "exec/worker_pool.hpp"

namespace {

namespace fs = std::filesystem;
namespace topo = sec::topo;
namespace ex = sec::exec;

// ---- fixture trees ---------------------------------------------------------

void write_file(const fs::path& path, const std::string& text) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text << "\n";  // sysfs files end in a newline
    ASSERT_TRUE(out.good()) << path;
}

struct CpuSpec {
    unsigned cpu;
    int package;
    int core;            // raw core_id (per-package namespace, like sysfs)
    std::string l3_list; // shared_cpu_list of the L3; "" = no cache dir
};

fs::path make_tree(const std::string& name, const std::vector<CpuSpec>& cpus,
                   const std::string& online = "") {
    const fs::path root = fs::path(::testing::TempDir()) / name;
    fs::remove_all(root);
    if (!online.empty()) write_file(root / "online", online);
    for (const CpuSpec& c : cpus) {
        const fs::path dir = root / ("cpu" + std::to_string(c.cpu));
        write_file(dir / "topology" / "package_id",
                   std::to_string(c.package));
        write_file(dir / "topology" / "core_id", std::to_string(c.core));
        if (!c.l3_list.empty()) {
            // Realistic cache ladder: L1/L2 private, L3 shared. The parser
            // walks index0.. until the first gap looking for level == 3.
            write_file(dir / "cache" / "index0" / "level", "1");
            write_file(dir / "cache" / "index0" / "shared_cpu_list",
                       std::to_string(c.cpu));
            write_file(dir / "cache" / "index1" / "level", "2");
            write_file(dir / "cache" / "index1" / "shared_cpu_list",
                       std::to_string(c.cpu));
            write_file(dir / "cache" / "index2" / "level", "3");
            write_file(dir / "cache" / "index2" / "shared_cpu_list",
                       c.l3_list);
        }
    }
    return root;
}

// Single socket, 4 cores x 2 SMT threads, Linux sibling convention
// (cpu t and cpu t+4 share core t), one L3 over everything.
fs::path smt_tree() {
    std::vector<CpuSpec> cpus;
    for (unsigned c = 0; c < 8; ++c) {
        cpus.push_back({c, 0, static_cast<int>(c % 4), "0-7"});
    }
    return make_tree("topo_smt", cpus);  // no `online`: exercise the scan
}

// Two sockets, 4 single-thread cores each, one L3 per socket; raw core_id
// restarts at 0 on the second socket exactly like real sysfs.
fs::path dual_tree() {
    std::vector<CpuSpec> cpus;
    for (unsigned c = 0; c < 8; ++c) {
        const int pkg = c < 4 ? 0 : 1;
        cpus.push_back({c, pkg, static_cast<int>(c % 4),
                        pkg == 0 ? "0-3" : "4-7"});
    }
    return make_tree("topo_dual", cpus, "0-7");  // exercise `online` too
}

// ---- parsing + dense maps --------------------------------------------------

TEST(Topology, ParsesSingleSocketSmtTree) {
    const auto t = topo::Topology::parse(smt_tree().string());
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->num_cpus(), 8u);
    EXPECT_EQ(t->packages(), 1u);
    EXPECT_EQ(t->cores(), 4u);
    EXPECT_EQ(t->cores_per_package(), 4u);
    EXPECT_EQ(t->smt_width(), 2u);
    EXPECT_EQ(t->l3_domains(), 1u);
    EXPECT_FALSE(t->synthetic());

    // cpu0 and cpu4 share core 0; cpu4 is the second sibling.
    const topo::CpuInfo* first = t->find_cpu(0);
    const topo::CpuInfo* sibling = t->find_cpu(4);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(sibling, nullptr);
    EXPECT_EQ(first->core, sibling->core);
    EXPECT_EQ(first->smt, 0);
    EXPECT_EQ(sibling->smt, 1);
    EXPECT_EQ(first->l3, sibling->l3);
    EXPECT_EQ(t->find_cpu(99), nullptr);
}

TEST(Topology, ParsesDualSocketTreeWithDenseRenumbering) {
    const auto t = topo::Topology::parse(dual_tree().string());
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->packages(), 2u);
    EXPECT_EQ(t->cores(), 8u);
    EXPECT_EQ(t->cores_per_package(), 4u);
    EXPECT_EQ(t->smt_width(), 1u);
    EXPECT_EQ(t->l3_domains(), 2u);

    // Raw core_id 0 appears on both sockets; dense core ids must not
    // collide, and package/L3 renumber in first-appearance order.
    const topo::CpuInfo* a = t->find_cpu(0);
    const topo::CpuInfo* b = t->find_cpu(4);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->package, 0);
    EXPECT_EQ(b->package, 1);
    EXPECT_NE(a->core, b->core);
    EXPECT_EQ(a->l3, 0);
    EXPECT_EQ(b->l3, 1);
}

TEST(Topology, DegenerateOneCoreTreeWithoutCacheDir) {
    // A 1-core container often exposes no cache directory at all; the
    // package becomes the L3 domain stand-in.
    const fs::path root = make_tree("topo_tiny", {{0, 0, 0, ""}});
    const auto t = topo::Topology::parse(root.string());
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->num_cpus(), 1u);
    EXPECT_EQ(t->packages(), 1u);
    EXPECT_EQ(t->cores(), 1u);
    EXPECT_EQ(t->smt_width(), 1u);
    EXPECT_EQ(t->l3_domains(), 1u);
    // Every policy still produces a plan: all workers on the one cpu.
    EXPECT_EQ(t->plan(topo::PinPolicy::kCompact, 4),
              (std::vector<int>{0, 0, 0, 0}));
}

TEST(Topology, EmptyTreeIsAnError) {
    const fs::path root = fs::path(::testing::TempDir()) / "topo_empty";
    fs::remove_all(root);
    fs::create_directories(root);
    std::string err;
    EXPECT_FALSE(topo::Topology::parse(root.string(), &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Topology, FlatFallbackIsOnePackageOneDomain) {
    const topo::Topology t = topo::Topology::flat(4);
    EXPECT_TRUE(t.synthetic());
    EXPECT_EQ(t.num_cpus(), 4u);
    EXPECT_EQ(t.packages(), 1u);
    EXPECT_EQ(t.cores(), 4u);
    EXPECT_EQ(t.smt_width(), 1u);
    EXPECT_EQ(t.l3_domains(), 1u);
    EXPECT_EQ(t.plan(topo::PinPolicy::kCompact, 2),
              (std::vector<int>{0, 1}));
}

TEST(Topology, PinPolicyNamesRoundTrip) {
    EXPECT_EQ(topo::parse_pin_policy("none"), topo::PinPolicy::kNone);
    EXPECT_EQ(topo::parse_pin_policy("compact"), topo::PinPolicy::kCompact);
    EXPECT_EQ(topo::parse_pin_policy("scatter"), topo::PinPolicy::kScatter);
    EXPECT_EQ(topo::parse_pin_policy("smt"), topo::PinPolicy::kSmtAware);
    EXPECT_EQ(topo::parse_pin_policy("smt-aware"),
              topo::PinPolicy::kSmtAware);
    EXPECT_FALSE(topo::parse_pin_policy("Compact").has_value());
    EXPECT_FALSE(topo::parse_pin_policy("").has_value());
    for (auto p : {topo::PinPolicy::kNone, topo::PinPolicy::kCompact,
                   topo::PinPolicy::kScatter, topo::PinPolicy::kSmtAware}) {
        EXPECT_EQ(topo::parse_pin_policy(topo::pin_policy_name(p)), p);
    }
}

// ---- placement plans -------------------------------------------------------

TEST(TopologyPlan, CompactFillsSiblingsThenCores) {
    const auto t = topo::Topology::parse(smt_tree().string());
    ASSERT_TRUE(t.has_value());
    // Both siblings of core 0 before any of core 1: maximal cache sharing.
    EXPECT_EQ(t->plan(topo::PinPolicy::kCompact, 8),
              (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
}

TEST(TopologyPlan, SmtAwareCoversEveryCoreBeforeSiblings) {
    const auto t = topo::Topology::parse(smt_tree().string());
    ASSERT_TRUE(t.has_value());
    // One worker per physical core first; siblings only once every core
    // has one.
    EXPECT_EQ(t->plan(topo::PinPolicy::kSmtAware, 8),
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(t->plan(topo::PinPolicy::kSmtAware, 4),
              (std::vector<int>{0, 1, 2, 3}));
}

TEST(TopologyPlan, ScatterRoundRobinsAcrossPackages) {
    const auto t = topo::Topology::parse(dual_tree().string());
    ASSERT_TRUE(t.has_value());
    // Worker k lands on package k mod 2.
    EXPECT_EQ(t->plan(topo::PinPolicy::kScatter, 8),
              (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
    // Compact on the same tree fills socket 0 first.
    EXPECT_EQ(t->plan(topo::PinPolicy::kCompact, 8),
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TopologyPlan, NonePlansNothingAndOffsetSplitsPools) {
    const auto t = topo::Topology::parse(dual_tree().string());
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->plan(topo::PinPolicy::kNone, 8).empty());
    // Two pools share the machine: the second pool offsets by the first
    // pool's size and lands on disjoint cpus.
    EXPECT_EQ(t->plan(topo::PinPolicy::kCompact, 4, /*offset=*/4),
              (std::vector<int>{4, 5, 6, 7}));
    // More workers than cpus wrap around the policy order.
    EXPECT_EQ(t->plan(topo::PinPolicy::kCompact, 3, /*offset=*/6),
              (std::vector<int>{6, 7, 0}));
}

// ---- perf counters: graceful degradation -----------------------------------

// SEC_PERF_DISABLE forces the denied-syscall path CI containers hit
// naturally: open() fails cleanly, samples read invalid, totals stay
// silent — no zeros masquerading as measurements.
TEST(PerfCounters, DeniedSyscallDegradesToSilence) {
    ::setenv("SEC_PERF_DISABLE", "1", 1);
    ex::PerfGroup group;
    EXPECT_FALSE(group.open());
    EXPECT_FALSE(group.available());
    group.start();  // harmless no-ops
    const ex::PerfSample sample = group.stop_and_read();
    EXPECT_FALSE(sample.valid);
    EXPECT_EQ(sample.cycles, 0u);

    ex::PerfTotals totals;
    totals.add(sample);
    EXPECT_FALSE(totals.any());
    EXPECT_EQ(totals.sampled, 0u);

    // A whole counter-enabled pool under the denied path: runs fine,
    // reports nothing.
    ex::PoolOptions opts;
    opts.counters = true;
    std::atomic<unsigned> ran{0};
    ex::WorkerPool pool(2, opts);
    pool.start([&](ex::WorkerContext& wc) {
        wc.counters_restart();  // no-op when the group never opened
        ran.fetch_add(1, std::memory_order_relaxed);
        wc.sync();
    });
    pool.sync();
    pool.join();
    EXPECT_EQ(ran.load(), 2u);
    EXPECT_FALSE(pool.counters().any());
    ::unsetenv("SEC_PERF_DISABLE");
}

TEST(PerfCounters, TotalsMergeOnlyValidSamples) {
    ex::PerfTotals totals;
    ex::PerfSample good;
    good.cycles = 100;
    good.instructions = 200;
    good.llc_misses = 3;
    good.valid = true;
    totals.add(good);
    totals.add(ex::PerfSample{});  // invalid: ignored
    EXPECT_TRUE(totals.any());
    EXPECT_EQ(totals.sampled, 1u);
    EXPECT_EQ(totals.cycles, 100u);

    ex::PerfTotals other;
    other.add(good);
    totals.merge(other);
    EXPECT_EQ(totals.sampled, 2u);
    EXPECT_EQ(totals.instructions, 400u);
}

// ---- WorkerPool lifecycle --------------------------------------------------

TEST(WorkerPool, RunCoversAllIndicesAndRegistersTids) {
    constexpr unsigned kWorkers = 8;
    std::vector<unsigned> hits(kWorkers, 0);
    std::vector<std::size_t> tids(kWorkers, sec::kMaxThreads);
    ex::WorkerPool::run(kWorkers, [&](ex::WorkerContext& wc) {
        ASSERT_LT(wc.index, kWorkers);
        hits[wc.index] += 1;
        tids[wc.index] = sec::detail::tid();
    });
    for (unsigned t = 0; t < kWorkers; ++t) {
        EXPECT_EQ(hits[t], 1u) << "worker " << t;
        EXPECT_LT(tids[t], sec::kMaxThreads) << "worker " << t;
    }
}

TEST(WorkerPool, CoordinatorBarrierSequencesPhases) {
    constexpr unsigned kWorkers = 4;
    std::atomic<unsigned> before{0};
    std::atomic<unsigned> after{0};
    ex::WorkerPool pool(kWorkers, {});
    pool.start([&](ex::WorkerContext& wc) {
        before.fetch_add(1, std::memory_order_relaxed);
        wc.sync();  // prefill -> measured-span rendezvous
        after.fetch_add(1, std::memory_order_relaxed);
    });
    pool.sync();  // coordinator holds the extra barrier slot
    EXPECT_EQ(before.load(), kWorkers);  // nobody passes sync() early
    pool.join();
    EXPECT_EQ(after.load(), kWorkers);
}

TEST(WorkerPool, PinningAgainstFixtureTopologyIsBestEffort) {
    // Plan against the dual-socket fixture. On hosts that don't have
    // cpus 0..7 (or refuse affinity) the pin fails and the worker stays
    // unpinned with cpu == -1 — the run itself must still complete and
    // a successful pin must publish a coherent placement.
    const auto fixture = topo::Topology::parse(dual_tree().string());
    ASSERT_TRUE(fixture.has_value());
    ex::PoolOptions opts;
    opts.pin = topo::PinPolicy::kScatter;
    opts.topology = &*fixture;
    opts.coordinator_in_barrier = false;

    constexpr unsigned kWorkers = 4;
    std::vector<int> got(kWorkers, -2);
    std::vector<ex::ThreadPlacement> placed(kWorkers);
    ex::WorkerPool pool(kWorkers, opts);
    for (unsigned t = 0; t < kWorkers; ++t) {
        EXPECT_GE(pool.planned_cpu(t), 0);  // the plan itself always exists
    }
    pool.start([&](ex::WorkerContext& wc) {
        got[wc.index] = wc.cpu;
        placed[wc.index] = ex::this_thread_placement();
    });
    pool.join();
    for (unsigned t = 0; t < kWorkers; ++t) {
        if (got[t] >= 0) {
            EXPECT_EQ(got[t], pool.planned_cpu(t));
            EXPECT_TRUE(placed[t].pinned());
            EXPECT_EQ(placed[t].cpu, got[t]);
            const topo::CpuInfo* info =
                fixture->find_cpu(static_cast<unsigned>(got[t]));
            ASSERT_NE(info, nullptr);
            EXPECT_EQ(placed[t].l3, info->l3);
        } else {
            EXPECT_EQ(got[t], -1);  // refused pin, clean fallback
            EXPECT_FALSE(placed[t].pinned());
        }
    }
}

TEST(WorkerPool, UnpinnedPoolPlansNothing) {
    ex::WorkerPool pool(2, {});
    EXPECT_EQ(pool.planned_cpu(0), -1);
    EXPECT_EQ(pool.planned_cpu(1), -1);
    EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
