// ebr_test.cpp — sec::ebr::Domain accounting: retired = freed + limbo after
// churn, limbo drains once the epoch can advance, and the destructor frees
// whatever backlog remains (the contract bench/memory_reclamation.cpp
// reports against).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>  // std::this_thread::yield
#include <vector>

#include "exec/worker_pool.hpp"
#include "sec.hpp"

namespace {

struct Probe {
    explicit Probe(std::atomic<std::uint64_t>& c) : counter(c) {}
    ~Probe() { counter.fetch_add(1, std::memory_order_relaxed); }
    std::atomic<std::uint64_t>& counter;
};

TEST(EbrTest, AccountingBalancesAfterChurn) {
    sec::ebr::Domain domain;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 5000;

    sec::exec::WorkerPool::run(kThreads, [&](sec::exec::WorkerContext&) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            sec::ebr::Guard g(domain);
            domain.retire(new std::uint64_t(i));
        }
    });

    EXPECT_EQ(domain.retired_count(), kThreads * kPerThread);
    EXPECT_EQ(domain.retired_count(), domain.freed_count() + domain.in_limbo());
    // Amortised epoch advancement must have reclaimed during the run, not
    // deferred everything to destruction.
    EXPECT_GT(domain.freed_count(), 0u);
    EXPECT_GT(domain.epoch(), 2u);
}

TEST(EbrTest, LimboDrainsOnEpochAdvance) {
    sec::ebr::Domain domain;
    // Fewer retires than the scan interval: nothing freed yet.
    for (int i = 0; i < 10; ++i) domain.retire(new int(i));
    EXPECT_EQ(domain.retired_count(), 10u);
    EXPECT_EQ(domain.in_limbo(), 10u);

    // No active guards: drain advances the epoch and frees the backlog.
    domain.drain_all();
    EXPECT_EQ(domain.in_limbo(), 0u);
    EXPECT_EQ(domain.freed_count(), 10u);
}

TEST(EbrTest, ActiveGuardPinsLimbo) {
    sec::ebr::Domain domain;
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    sec::exec::PoolOptions wo;
    wo.coordinator_in_barrier = false;
    sec::exec::WorkerPool reader(1, wo);
    reader.start([&](sec::exec::WorkerContext&) {
        domain.enter();
        entered.store(true);
        while (!release.load()) std::this_thread::yield();
        domain.exit();
    });
    while (!entered.load()) std::this_thread::yield();

    for (int i = 0; i < 10; ++i) domain.retire(new int(i));
    domain.drain_all();
    // The reader's announced epoch blocks full advancement.
    EXPECT_GT(domain.in_limbo(), 0u);

    release.store(true);
    reader.join();
    domain.drain_all();
    EXPECT_EQ(domain.in_limbo(), 0u);
}

TEST(EbrTest, DestructorFreesBacklog) {
    std::atomic<std::uint64_t> destroyed{0};
    constexpr std::uint64_t kCount = 1000;
    {
        sec::ebr::Domain domain;
        for (std::uint64_t i = 0; i < kCount; ++i) {
            domain.retire(new Probe(destroyed));
        }
        // Some may already be freed by the amortised path; the destructor
        // must account for the rest.
    }
    EXPECT_EQ(destroyed.load(), kCount);
}

TEST(EbrTest, StacksReportIntoExternalDomain) {
    sec::ebr::Domain domain;
    {
        sec::TreiberStack<std::uint64_t> stack(8, domain);
        for (std::uint64_t i = 0; i < 100; ++i) stack.push(i);
        for (std::uint64_t i = 0; i < 100; ++i) {
            EXPECT_TRUE(stack.pop().has_value());
        }
    }
    EXPECT_EQ(domain.retired_count(), 100u);
    domain.drain_all();
    EXPECT_EQ(domain.in_limbo(), 0u);
}

}  // namespace
