// bench_json_test.cpp — BENCH_*.json snapshot persistence and the baseline
// regression gate (workload/bench_json.hpp): write → parse round-trip,
// median-of-N, and compare verdicts including the tolerance edges and the
// scale normalization that makes cross-machine baselines workable.
#include "workload/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace sj = sec::bench::json;

namespace {

std::string temp_path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

sj::Snapshot sample_snapshot() {
    sj::Snapshot s;
    s.meta.git_sha = "abcdef012345";
    s.meta.compiler = "gcc 13.2.0";
    // Escaping stress: quotes, backslash, newline, a control byte.
    s.meta.flags = "-O3 \"quoted\" back\\slash\nline\x01end";
    s.meta.build_type = "Release";
    s.meta.march_native = true;
    s.meta.cores = 8;
    s.meta.packages = 2;
    s.meta.cores_per_package = 4;
    s.meta.smt_width = 2;
    s.meta.l3_domains = 2;
    s.meta.pin = "compact";
    s.meta.scenarios = "fig2,micro";
    s.meta.algos = "SEC,TRB";
    s.meta.reclaim = "hp";
    s.meta.smoke = true;
    s.meta.threads = {2, 4};
    s.meta.duration_ms = 25;
    s.meta.runs = 1;
    s.meta.repeats = 3;
    s.meta.prefill = 1000;
    s.meta.value_range = 1u << 20;
    s.meta.seed = 42;
    s.add("fig2_50-50", "2", "SEC", "Mops/s", 1.2345678901234567);
    s.add("fig2_50-50", "2", "TRB", "Mops/s", 0.25);
    s.add("micro_ops", "SEC", "static_ns", "", 81.25);
    return s;
}

TEST(BenchJsonTest, WriteParseRoundTrip) {
    const sj::Snapshot in = sample_snapshot();
    const std::string path = temp_path("sec_bench_json_roundtrip.json");
    std::string err;
    ASSERT_TRUE(sj::write_snapshot(in, path, &err)) << err;

    sj::Snapshot out;
    ASSERT_TRUE(sj::read_snapshot(path, out, &err)) << err;
    std::remove(path.c_str());

    EXPECT_EQ(out.meta.git_sha, in.meta.git_sha);
    EXPECT_EQ(out.meta.compiler, in.meta.compiler);
    EXPECT_EQ(out.meta.flags, in.meta.flags);
    EXPECT_EQ(out.meta.build_type, in.meta.build_type);
    EXPECT_EQ(out.meta.march_native, in.meta.march_native);
    EXPECT_EQ(out.meta.cores, in.meta.cores);
    EXPECT_EQ(out.meta.packages, in.meta.packages);
    EXPECT_EQ(out.meta.cores_per_package, in.meta.cores_per_package);
    EXPECT_EQ(out.meta.smt_width, in.meta.smt_width);
    EXPECT_EQ(out.meta.l3_domains, in.meta.l3_domains);
    EXPECT_EQ(out.meta.pin, in.meta.pin);
    EXPECT_EQ(out.meta.scenarios, in.meta.scenarios);
    EXPECT_EQ(out.meta.algos, in.meta.algos);
    EXPECT_EQ(out.meta.reclaim, in.meta.reclaim);
    EXPECT_EQ(out.meta.smoke, in.meta.smoke);
    EXPECT_EQ(out.meta.threads, in.meta.threads);
    EXPECT_EQ(out.meta.duration_ms, in.meta.duration_ms);
    EXPECT_EQ(out.meta.runs, in.meta.runs);
    EXPECT_EQ(out.meta.repeats, in.meta.repeats);
    EXPECT_EQ(out.meta.prefill, in.meta.prefill);
    EXPECT_EQ(out.meta.value_range, in.meta.value_range);
    EXPECT_EQ(out.meta.seed, in.meta.seed);

    ASSERT_EQ(out.cells.size(), in.cells.size());
    for (std::size_t i = 0; i < in.cells.size(); ++i) {
        EXPECT_EQ(out.cells[i].table, in.cells[i].table);
        EXPECT_EQ(out.cells[i].key, in.cells[i].key);
        EXPECT_EQ(out.cells[i].column, in.cells[i].column);
        EXPECT_EQ(out.cells[i].unit, in.cells[i].unit);
        // The writer emits the shortest decimal that parses back exactly.
        EXPECT_EQ(out.cells[i].value, in.cells[i].value);
    }
}

TEST(BenchJsonTest, ReadRejectsGarbageAndWrongSchema) {
    const std::string path = temp_path("sec_bench_json_bad.json");
    sj::Snapshot out;
    std::string err;

    EXPECT_FALSE(sj::read_snapshot(temp_path("sec_bench_json_absent.json"),
                                   out, &err));
    EXPECT_FALSE(err.empty());

    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\": \"something-else\", \"cells\": []}", f);
    std::fclose(f);
    EXPECT_FALSE(sj::read_snapshot(path, out, &err));
    EXPECT_NE(err.find("schema"), std::string::npos) << err;

    f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\": \"sec-bench-snapshot-v1\", \"cells\": [", f);
    std::fclose(f);
    EXPECT_FALSE(sj::read_snapshot(path, out, &err));
    std::remove(path.c_str());
}

TEST(BenchJsonTest, MedianOfCollapsesRepeatsPerCell) {
    auto one = [](double a, double b) {
        sj::Snapshot s;
        s.add("t", "1", "A", "Mops/s", a);
        s.add("t", "1", "B", "Mops/s", b);
        return s;
    };
    // Odd count: plain middle. A run may also re-write a cell (last wins).
    std::vector<sj::Snapshot> runs{one(1.0, 10.0), one(5.0, 30.0),
                                   one(3.0, 20.0)};
    runs[0].add("t", "1", "A", "Mops/s", 2.0);  // re-write: 1.0 -> 2.0
    const sj::Snapshot med = sj::median_of(runs);
    ASSERT_EQ(med.cells.size(), 2u);
    EXPECT_DOUBLE_EQ(med.find("t", "1", "A")->value, 3.0);
    EXPECT_DOUBLE_EQ(med.find("t", "1", "B")->value, 20.0);

    // Even count: mean of the two middles; a cell missing from some runs
    // medians over the runs that produced it.
    std::vector<sj::Snapshot> two{one(1.0, 10.0), one(2.0, 20.0)};
    two[0].add("x", "1", "C", "", 7.0);
    const sj::Snapshot med2 = sj::median_of(two);
    EXPECT_DOUBLE_EQ(med2.find("t", "1", "A")->value, 1.5);
    EXPECT_DOUBLE_EQ(med2.find("x", "1", "C")->value, 7.0);
}

TEST(BenchJsonTest, GatedUnits) {
    EXPECT_TRUE(sj::gated_unit("Mops/s"));
    EXPECT_TRUE(sj::gated_unit("Kops/s"));
    EXPECT_FALSE(sj::gated_unit("us"));
    EXPECT_FALSE(sj::gated_unit(""));
}

// Five gated cells so the median scale stays pinned at 1.0 when one cell
// moves: the compare must localize an injected regression.
sj::Snapshot gated_five(double a, double b, double c, double d, double e) {
    sj::Snapshot s;
    s.add("tp", "2", "A", "Mops/s", a);
    s.add("tp", "2", "B", "Mops/s", b);
    s.add("tp", "2", "C", "Mops/s", c);
    s.add("tp", "2", "D", "Mops/s", d);
    s.add("tp", "2", "E", "Mops/s", e);
    return s;
}

TEST(BenchJsonTest, CompareDetectsInjectedRegression) {
    const sj::Snapshot base = gated_five(16, 16, 16, 16, 16);
    const sj::Snapshot cur = gated_five(16, 16, 16, 16, 8);  // E: -50%
    const sj::CompareResult r = sj::compare(base, cur, 25.0);
    EXPECT_DOUBLE_EQ(r.scale, 1.0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.regressions, 1u);
    ASSERT_EQ(r.cells.size(), 5u);
    EXPECT_FALSE(r.cells[0].regressed);
    EXPECT_TRUE(r.cells[4].regressed);
    EXPECT_DOUBLE_EQ(r.cells[4].raw_delta_pct, -50.0);
}

TEST(BenchJsonTest, CompareToleranceEdgeIsExclusive) {
    const sj::Snapshot base = gated_five(16, 16, 16, 16, 16);
    // 12/16 = exactly -25%: sitting ON the edge passes...
    const sj::CompareResult at_edge =
        sj::compare(base, gated_five(16, 16, 16, 16, 12), 25.0);
    EXPECT_TRUE(at_edge.ok()) << at_edge.cells[4].norm_delta_pct;
    // ...one step beyond it fails.
    const sj::CompareResult beyond =
        sj::compare(base, gated_five(16, 16, 16, 16, 11), 25.0);
    EXPECT_FALSE(beyond.ok());
    EXPECT_EQ(beyond.regressions, 1u);
    // Zero tolerance: any strictly negative normalized delta regresses.
    const sj::CompareResult zero_tol =
        sj::compare(base, gated_five(16, 16, 16, 16, 15), 0.0);
    EXPECT_FALSE(zero_tol.ok());
}

TEST(BenchJsonTest, CompareNormalizesGlobalHardwareShift) {
    // Uniform 2x slowdown — a slower runner, not a regression: the median
    // scale absorbs it entirely.
    const sj::Snapshot base = gated_five(16, 32, 8, 16, 64);
    const sj::Snapshot cur = gated_five(8, 16, 4, 8, 32);
    const sj::CompareResult r = sj::compare(base, cur, 10.0);
    EXPECT_DOUBLE_EQ(r.scale, 0.5);
    EXPECT_TRUE(r.ok()) << r.regressions;
    for (const sj::CellDelta& d : r.cells) {
        EXPECT_DOUBLE_EQ(d.norm_delta_pct, 0.0);
        EXPECT_DOUBLE_EQ(d.raw_delta_pct, -50.0);
    }
}

TEST(BenchJsonTest, CompareMissingGatedCellRegressesAndExtraIsCounted) {
    sj::Snapshot base = gated_five(16, 16, 16, 16, 16);
    sj::Snapshot cur = gated_five(16, 16, 16, 16, 16);
    cur.cells.pop_back();                      // E vanished
    cur.add("tp", "2", "F", "Mops/s", 16.0);   // new current-only cell
    const sj::CompareResult r = sj::compare(base, cur, 25.0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.regressions, 1u);
    EXPECT_TRUE(r.cells[4].missing);
    EXPECT_EQ(r.extra, 1u);
}

TEST(BenchJsonTest, CompareNeverGatesUnitlessOrLatencyCells) {
    sj::Snapshot base = gated_five(16, 16, 16, 16, 16);
    base.add("lat", "2", "p99", "us", 10.0);
    base.add("micro_ops", "SEC", "erased_ns", "", 80.0);
    sj::Snapshot cur = gated_five(16, 16, 16, 16, 16);
    cur.add("lat", "2", "p99", "us", 100.0);            // 10x worse latency
    cur.add("micro_ops", "SEC", "erased_ns", "", 800.0);  // 10x worse ns/op
    const sj::CompareResult r = sj::compare(base, cur, 25.0);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.cells[5].gated);
    EXPECT_FALSE(r.cells[6].gated);
    // Still reported, so the CI log shows the movement.
    EXPECT_DOUBLE_EQ(r.cells[5].raw_delta_pct, 900.0);
}

TEST(BenchJsonTest, BuildMetadataCarriesCompileTimeFacts) {
    const sj::Metadata m = sj::build_metadata();
    EXPECT_FALSE(m.git_sha.empty());
    EXPECT_FALSE(m.compiler.empty());
    EXPECT_GT(m.cores, 0u);
    // Topology half: the system always has at least one package, core, and
    // L3 domain (the flat fallback synthesizes exactly that).
    EXPECT_GT(m.packages, 0u);
    EXPECT_GT(m.cores_per_package, 0u);
    EXPECT_GT(m.smt_width, 0u);
    EXPECT_GT(m.l3_domains, 0u);
}

// A pre-topology snapshot (all new fields absent) must still parse, with
// the topology half defaulted to zero/empty — and those defaults must
// never produce a mismatch warning.
TEST(BenchJsonTest, OldSnapshotsParseWithZeroTopologyAndNeverMismatch) {
    sj::Snapshot in = sample_snapshot();
    in.meta.packages = 0;
    in.meta.cores_per_package = 0;
    in.meta.smt_width = 0;
    in.meta.l3_domains = 0;
    in.meta.pin.clear();
    const std::string path = temp_path("sec_bench_json_oldmeta.json");
    std::string err;
    ASSERT_TRUE(sj::write_snapshot(in, path, &err)) << err;
    sj::Snapshot out;
    ASSERT_TRUE(sj::read_snapshot(path, out, &err)) << err;
    std::remove(path.c_str());
    EXPECT_EQ(out.meta.packages, 0u);
    EXPECT_EQ(out.meta.pin, "");

    sj::Metadata current = sample_snapshot().meta;  // fully populated
    EXPECT_EQ(sj::topology_mismatch(out.meta, current), "");
}

TEST(BenchJsonTest, TopologyMismatchDescribesEveryDriftedField) {
    const sj::Metadata base = sample_snapshot().meta;
    sj::Metadata same = base;
    EXPECT_EQ(sj::topology_mismatch(base, same), "");

    sj::Metadata moved = base;
    moved.packages = 1;
    moved.smt_width = 1;
    moved.pin = "none";
    const std::string desc = sj::topology_mismatch(base, moved);
    EXPECT_NE(desc.find("packages"), std::string::npos) << desc;
    EXPECT_NE(desc.find("smt"), std::string::npos) << desc;
    EXPECT_NE(desc.find("pin"), std::string::npos) << desc;
    // Unchanged fields stay out of the description.
    EXPECT_EQ(desc.find("l3"), std::string::npos) << desc;
}

}  // namespace
