// env_parse_test.cpp — EnvConfig::load's parsing contract: garbage values
// are rejected with the default kept (never silently read as 0 or a
// truncated prefix), a thread grid with any bad token is rejected whole,
// and over-bound thread counts are clamped to the library's live-thread
// bound with a warning — by clamp_thread_grid, the function the CLI path
// shares.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/common.hpp"
#include "workload/env.hpp"

namespace sb = sec::bench;

namespace {

constexpr const char* kKnobs[] = {
    "SEC_BENCH_PAPER",       "SEC_BENCH_DURATION_MS", "SEC_BENCH_RUNS",
    "SEC_BENCH_THREADS",     "SEC_BENCH_PREFILL",     "SEC_BENCH_VALUE_RANGE",
    "SEC_BENCH_SEED",        "SEC_BENCH_RECLAIM",     "SEC_BENCH_SHARDS",
    "SEC_BENCH_LOAD",        "SEC_BENCH_ARRIVAL",
};

// Every test starts and ends from a clean environment so the suite is
// immune to whatever the invoking shell exports.
class EnvParseTest : public ::testing::Test {
protected:
    void SetUp() override { clear(); }
    void TearDown() override { clear(); }
    static void clear() {
        for (const char* k : kKnobs) unsetenv(k);
    }
};

const std::vector<unsigned> kDefaultGrid = {2, 4, 8};
constexpr unsigned kThreadBound = static_cast<unsigned>(sec::kMaxThreads) - 8;

}  // namespace

TEST_F(EnvParseTest, DefaultsWithoutEnvironment) {
    const sb::EnvConfig cfg = sb::EnvConfig::load();
    EXPECT_EQ(cfg.duration_ms, 200u);
    EXPECT_EQ(cfg.runs, 1u);
    EXPECT_EQ(cfg.threads, kDefaultGrid);
}

TEST_F(EnvParseTest, ValidValuesParse) {
    setenv("SEC_BENCH_DURATION_MS", "350", 1);
    setenv("SEC_BENCH_RUNS", "3", 1);
    setenv("SEC_BENCH_PREFILL", "5000", 1);
    setenv("SEC_BENCH_SEED", "42", 1);
    const sb::EnvConfig cfg = sb::EnvConfig::load();
    EXPECT_EQ(cfg.duration_ms, 350u);
    EXPECT_EQ(cfg.runs, 3u);
    EXPECT_EQ(cfg.prefill, 5000u);
    EXPECT_EQ(cfg.seed, 42u);
}

TEST_F(EnvParseTest, GarbageDurationKeepsTheDefault) {
    // strtoul would have read "abc" as 0: a zero-length measured window.
    setenv("SEC_BENCH_DURATION_MS", "abc", 1);
    EXPECT_EQ(sb::EnvConfig::load().duration_ms, 200u);
}

TEST_F(EnvParseTest, TrailingJunkIsNotATruncatedPrefix) {
    // strtoul would have read "2OO" (letter O typos) as 2 ms.
    setenv("SEC_BENCH_DURATION_MS", "2OO", 1);
    EXPECT_EQ(sb::EnvConfig::load().duration_ms, 200u);
}

TEST_F(EnvParseTest, SignedValuesAreRejected) {
    // strtoul happily wraps "-5" to a huge unsigned value.
    setenv("SEC_BENCH_DURATION_MS", "-5", 1);
    EXPECT_EQ(sb::EnvConfig::load().duration_ms, 200u);
    setenv("SEC_BENCH_PREFILL", "+10", 1);
    EXPECT_EQ(sb::EnvConfig::load().prefill, 1000u);
}

TEST_F(EnvParseTest, ValidThreadGridParses) {
    setenv("SEC_BENCH_THREADS", "1,3,5", 1);
    const std::vector<unsigned> expected = {1, 3, 5};
    EXPECT_EQ(sb::EnvConfig::load().threads, expected);
}

TEST_F(EnvParseTest, GridWithABadTokenIsRejectedWhole) {
    // The old parser kept {4, 8} and dropped the tail — a different
    // experiment than the one asked for. Whole-grid-or-nothing instead.
    setenv("SEC_BENCH_THREADS", "4,8,x16", 1);
    EXPECT_EQ(sb::EnvConfig::load().threads, kDefaultGrid);
}

TEST_F(EnvParseTest, GridWithAZeroTokenIsRejectedWhole) {
    setenv("SEC_BENCH_THREADS", "0,4", 1);
    EXPECT_EQ(sb::EnvConfig::load().threads, kDefaultGrid);
}

TEST_F(EnvParseTest, OverBoundThreadCountIsClampedNotDropped) {
    setenv("SEC_BENCH_THREADS", "1000", 1);
    const std::vector<unsigned> expected = {kThreadBound};
    EXPECT_EQ(sb::EnvConfig::load().threads, expected);
}

TEST_F(EnvParseTest, ClampThreadGridOnlyRewritesOverBoundEntries) {
    std::vector<unsigned> grid = {10, 1000, kThreadBound};
    sb::clamp_thread_grid(grid, "test");
    const std::vector<unsigned> expected = {10, kThreadBound, kThreadBound};
    EXPECT_EQ(grid, expected);
}
