// tests/container_checkers.hpp — shared element-accounting and
// order-checking helpers for every container test (semantics, stress, and
// the shape-generic conformance suite). One home instead of per-test
// copies, so the tag scheme and the conservation oracle cannot drift.
//
// Tag tokens: every element a test inserts is stamped (producer, seq) —
// producer in the high 32 bits (offset by one so a raw 0 can never alias a
// token), seq in the low 32. Conservation checks compare multisets of
// tokens; order checks read the fields back and reason about per-producer
// seq monotonicity, which is exactly the observable each shape promises:
//
//   * FIFO — a producer's k-th insert is enqueued (and therefore dequeued)
//     before its (k+1)-th, and any single observer's removals are a
//     subsequence of the total removal order, so per (observer, producer)
//     the seqs are strictly INCREASING. This holds even under concurrent
//     churn.
//   * LIFO — with all inserts completed first (two-phase: push, join,
//     drain), a producer's elements sit in the stack with larger seqs
//     nearer the top, so per (observer, producer) the drained seqs are
//     strictly DECREASING. (Under concurrent churn LIFO makes no
//     per-producer promise an observer could check locally — elimination
//     legally short-circuits pairs — which is why the order oracle for
//     stacks runs in the quiescent drain phase.)
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/common.hpp"
#include "exec/worker_pool.hpp"

namespace sec::testing {

using Value = std::uint64_t;

constexpr Value tag(unsigned producer, std::uint32_t seq) {
    return (static_cast<Value>(producer + 1) << 32) | seq;
}

constexpr unsigned tag_producer(Value v) {
    return static_cast<unsigned>(v >> 32) - 1;
}

constexpr std::uint32_t tag_seq(Value v) {
    return static_cast<std::uint32_t>(v);
}

// Reclamation announcements come from sec::exec::quiesce_hook /
// offline_hook — the same requires-guarded helpers WorkerPool and the
// workload runner use, so the QSBR contract (quiesce between operations,
// offline at thread exit; see reclaim/qsbr.hpp) is stated in exactly one
// place. Flat-combining containers have neither hook and compile to
// no-ops.

// Everything a churn run observed, in observation order. `popped[c]` is
// consumer c's removals in its local order; `drained` is the post-join
// single-threaded sweep that empties the container.
struct ChurnResult {
    std::vector<std::vector<Value>> pushed;
    std::vector<std::vector<Value>> popped;
    std::vector<Value> drained;
};

// Balanced random churn: `threads` workers each run `ops_per_thread`
// iterations flipping a fair coin between push(tag(t, seq++)) and pop,
// recording what they saw; afterwards one thread drains the remainder.
template <class C>
ChurnResult churn(C& container, unsigned threads,
                  std::uint32_t ops_per_thread) {
    ChurnResult r;
    r.pushed.resize(threads);
    r.popped.resize(threads);
    exec::WorkerPool::run(threads, [&](exec::WorkerContext& wc) {
        const unsigned t = wc.index;
        sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
        std::uint32_t seq = 0;
        auto& mine_pushed = r.pushed[t];
        auto& mine_popped = r.popped[t];
        mine_pushed.reserve(ops_per_thread);
        mine_popped.reserve(ops_per_thread);
        for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
            exec::quiesce_hook(container);
            if (rng.next_below(2) == 0) {
                const Value v = tag(t, seq++);
                container.put(v);
                mine_pushed.push_back(v);
            } else if (auto v = container.take()) {
                mine_popped.push_back(*v);
            }
        }
        exec::offline_hook(container);
    });
    while (auto v = container.take()) r.drained.push_back(*v);
    return r;
}

// Multiset equality of two observation sets: every inserted token came out
// exactly once — no loss, no duplication, no invention.
inline void expect_same_multiset(std::vector<Value> inserted,
                                 std::vector<Value> removed) {
    std::sort(inserted.begin(), inserted.end());
    std::sort(removed.begin(), removed.end());
    ASSERT_EQ(removed.size(), inserted.size());
    EXPECT_EQ(removed, inserted)
        << "value lost, duplicated, or invented under churn";
}

inline void expect_conserved(const ChurnResult& r) {
    std::vector<Value> all_pushed;
    std::vector<Value> all_popped;
    for (const auto& p : r.pushed) {
        all_pushed.insert(all_pushed.end(), p.begin(), p.end());
    }
    for (const auto& p : r.popped) {
        all_popped.insert(all_popped.end(), p.begin(), p.end());
    }
    all_popped.insert(all_popped.end(), r.drained.begin(), r.drained.end());
    expect_same_multiset(std::move(all_pushed), std::move(all_popped));
}

// One observer's removal sequence, checked per producer for strict seq
// monotonicity in the given direction. `who` labels the failure.
inline void expect_per_producer_monotonic(const std::vector<Value>& removals,
                                          unsigned producers, bool increasing,
                                          const char* who) {
    // last seen seq per producer, offset by one so 0 means "none yet".
    std::vector<std::uint64_t> last(producers, 0);
    for (Value v : removals) {
        const unsigned p = tag_producer(v);
        ASSERT_LT(p, producers) << who << ": alien token " << v;
        const std::uint64_t seq = std::uint64_t{tag_seq(v)} + 1;
        if (last[p] != 0) {
            if (increasing) {
                EXPECT_GT(seq, last[p])
                    << who << ": producer " << p << " seq " << (seq - 1)
                    << " observed after seq " << (last[p] - 1)
                    << " — FIFO order violated";
            } else {
                EXPECT_LT(seq, last[p])
                    << who << ": producer " << p << " seq " << (seq - 1)
                    << " observed after seq " << (last[p] - 1)
                    << " — LIFO order violated";
            }
        }
        last[p] = seq;
    }
}

}  // namespace sec::testing
