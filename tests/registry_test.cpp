// registry_test.cpp — the algorithm/scenario registries and the type-erased
// AnyStack path: round-trips, legend-order columns, unknown-name reporting,
// the runner's threads==0 guard, and a smoke scenario run.
#include <gtest/gtest.h>

#include <set>

#include "../bench/bench_common.hpp"
#include "sec.hpp"
#include "workload/any_runner.hpp"
#include "workload/registry.hpp"

namespace sb = sec::bench;

TEST(AlgorithmRegistry, DefaultColumnsAreTheSixCompetitorsInLegendOrder) {
    const std::vector<std::string> expected = {"CC",  "EB",  "FC",
                                               "SEC", "TRB", "TSI"};
    EXPECT_EQ(sb::algorithm_columns(), expected);
}

TEST(AlgorithmRegistry, ListsAtLeastSixAlgorithms) {
    EXPECT_GE(sb::AlgorithmRegistry::instance().all().size(), 6u);
}

TEST(AlgorithmRegistry, UnknownNameReportsTheAvailableSet) {
    auto& reg = sb::AlgorithmRegistry::instance();
    EXPECT_EQ(reg.find("NOPE"), nullptr);
    const std::string available = reg.names_csv();
    for (const char* name : {"CC", "EB", "FC", "SEC", "TRB", "TSI"}) {
        EXPECT_NE(available.find(name), std::string::npos) << available;
    }
}

// Every registered algorithm round-trips values through the erased handle:
// pushed multiset == popped multiset (POOL is unordered, so no LIFO check
// here), and the empty structure pops nullopt.
TEST(AnyStack, EveryRegisteredAlgorithmRoundTripsPushPop) {
    for (const sb::AlgoSpec* spec : sb::AlgorithmRegistry::instance().all()) {
        SCOPED_TRACE(spec->name);
        sb::StackParams params;
        params.threads = 2;
        sec::AnyStack stack = spec->make(params);
        ASSERT_TRUE(static_cast<bool>(stack));

        std::multiset<std::uint64_t> pushed;
        for (std::uint64_t v = 1; v <= 32; ++v) {
            EXPECT_TRUE(stack.push(v));
            pushed.insert(v);
        }
        std::multiset<std::uint64_t> popped;
        for (int i = 0; i < 32; ++i) {
            const auto v = stack.pop();
            ASSERT_TRUE(v.has_value());
            popped.insert(*v);
        }
        EXPECT_EQ(pushed, popped);
        EXPECT_FALSE(stack.pop().has_value());
    }
}

TEST(AnyStack, LifoOrderThroughTheErasedHandle) {
    const sb::AlgoSpec* trb = sb::AlgorithmRegistry::instance().find("TRB");
    ASSERT_NE(trb, nullptr);
    sb::StackParams params;
    sec::AnyStack stack = trb->make(params);
    for (std::uint64_t v = 1; v <= 8; ++v) stack.push(v);
    for (int v = 8; v >= 1; --v) {
        EXPECT_EQ(stack.pop(), static_cast<std::uint64_t>(v));
    }
}

TEST(AnyStack, StatsSurfaceOnlyWhereTheConcreteTypeHasThem) {
    auto& reg = sb::AlgorithmRegistry::instance();
    sb::StackParams params;
    params.threads = 2;
    sec::Config cfg;
    cfg.max_threads = sb::tid_bound(2);
    cfg.collect_stats = true;
    params.config = &cfg;
    sec::AnyStack sec_stack = reg.find("SEC")->make(params);
    EXPECT_TRUE(sec_stack.has_stats());
    sec::AnyStack trb_stack = reg.find("TRB")->make(sb::StackParams{});
    EXPECT_FALSE(trb_stack.has_stats());
}

TEST(Runner, ZeroThreadsIsGuardedNotDividedBy) {
    const sb::RunConfig cfg = [] {
        sb::RunConfig c;
        c.threads = 0;
        c.prefill = 100;  // would previously divide by zero
        c.duration = std::chrono::milliseconds(1);
        return c;
    }();
    const sb::RunResult direct = sb::run_throughput(
        [] { return sec::make_stack<sec::TreiberStack<std::uint64_t>>(8); },
        cfg);
    EXPECT_EQ(direct.total_ops, 0u);
    EXPECT_EQ(direct.mops, 0.0);

    const sb::RunResult erased = sb::run_throughput_any(
        [] {
            return sb::AlgorithmRegistry::instance().find("TRB")->make(
                sb::StackParams{});
        },
        cfg);
    EXPECT_EQ(erased.total_ops, 0u);
}

// The statically-typed compatibility path (bench_common.hpp) fills the same
// table schema as the registry-driven series.
TEST(BenchCommon, StaticRunSeriesMatchesTableSchema) {
    sb::EnvConfig env;
    env.threads = {2};
    env.duration_ms = 10;
    env.runs = 1;
    env.prefill = 64;
    sb::Table table("compat", sb::algorithm_columns());
    sb::run_series<sec::TreiberStack<sb::Value>>(table, env, sec::kUpdateHeavy,
                                                 "TRB");
    EXPECT_EQ(table.name(), "compat");
}

TEST(AnyRunner, ThroughputRunsThroughTheErasedPath) {
    sb::RunConfig cfg;
    cfg.threads = 2;
    cfg.duration = std::chrono::milliseconds(20);
    cfg.prefill = 128;
    const sb::RunResult r = sb::run_throughput_any(
        [] {
            sb::StackParams params;
            params.threads = 2;
            return sb::AlgorithmRegistry::instance().find("SEC")->make(params);
        },
        cfg);
    EXPECT_GT(r.total_ops, 0u);
}

TEST(ScenarioRegistry, ListsAtLeastEightScenarios) {
    auto& reg = sb::ScenarioRegistry::instance();
    EXPECT_GE(reg.all().size(), 8u);
    for (const char* name :
         {"fig2", "fig3", "fig4", "table1", "latency", "reclamation",
          "ablation_backoff", "ablation_mapping", "ablation_pool", "micro"}) {
        EXPECT_NE(reg.find(name), nullptr) << name;
    }
}

TEST(ScenarioRegistry, UnknownScenarioReturnsNonZero) {
    sb::ScenarioContext ctx;
    ctx.env = sb::EnvConfig::load();
    ctx.algos = sb::AlgorithmRegistry::instance().default_set();
    EXPECT_EQ(sb::run_scenario("no_such_scenario", ctx), 2);
}

// A scenario end-to-end through the registry, tiny budget (the full
// `secbench all --smoke` pass is a ctest of the binary itself).
TEST(ScenarioRegistry, Fig2RunsOnATinyBudget) {
    sb::ScenarioContext ctx;
    ctx.smoke = true;
    ctx.env.duration_ms = 10;
    ctx.env.runs = 1;
    ctx.env.threads = {2};
    ctx.env.prefill = 64;
    ctx.algos = {sb::AlgorithmRegistry::instance().find("SEC"),
                 sb::AlgorithmRegistry::instance().find("TRB")};
    EXPECT_EQ(sb::run_scenario("fig2", ctx), 0);
}
