// registry_test.cpp — the algorithm/scenario registries and the type-erased
// AnyStack path: round-trips, legend-order columns, unknown-name reporting,
// the runner's threads==0 guard, and a smoke scenario run.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <set>
#include <string>

#include "../bench/bench_common.hpp"
#include "sec.hpp"
#include "workload/any_runner.hpp"
#include "workload/registry.hpp"
#include "workload/sweep.hpp"

namespace sb = sec::bench;

TEST(AlgorithmRegistry, DefaultColumnsAreTheSixCompetitorsInLegendOrder) {
    const std::vector<std::string> expected = {"CC",  "EB",  "FC",
                                               "SEC", "TRB", "TSI"};
    EXPECT_EQ(sb::algorithm_columns(), expected);
}

TEST(AlgorithmRegistry, ListsAtLeastSixAlgorithms) {
    EXPECT_GE(sb::AlgorithmRegistry::instance().all().size(), 6u);
}

TEST(AlgorithmRegistry, UnknownNameReportsTheAvailableSet) {
    auto& reg = sb::AlgorithmRegistry::instance();
    EXPECT_EQ(reg.find("NOPE"), nullptr);
    const std::string available = reg.names_csv();
    for (const char* name : {"CC", "EB", "FC", "SEC", "TRB", "TSI"}) {
        EXPECT_NE(available.find(name), std::string::npos) << available;
    }
}

// Every registered algorithm round-trips values through the erased handle:
// pushed multiset == popped multiset (POOL is unordered, so no LIFO check
// here), and the empty structure pops nullopt.
TEST(AnyStack, EveryRegisteredAlgorithmRoundTripsPushPop) {
    for (const sb::AlgoSpec* spec : sb::AlgorithmRegistry::instance().all()) {
        SCOPED_TRACE(spec->name);
        sb::StackParams params;
        params.threads = 2;
        sec::AnyStack stack = spec->make(params);
        ASSERT_TRUE(static_cast<bool>(stack));

        std::multiset<std::uint64_t> pushed;
        for (std::uint64_t v = 1; v <= 32; ++v) {
            EXPECT_TRUE(stack.push(v));
            pushed.insert(v);
        }
        std::multiset<std::uint64_t> popped;
        for (int i = 0; i < 32; ++i) {
            const auto v = stack.pop();
            ASSERT_TRUE(v.has_value());
            popped.insert(*v);
        }
        EXPECT_EQ(pushed, popped);
        EXPECT_FALSE(stack.pop().has_value());
    }
}

TEST(AnyStack, LifoOrderThroughTheErasedHandle) {
    const sb::AlgoSpec* trb = sb::AlgorithmRegistry::instance().find("TRB");
    ASSERT_NE(trb, nullptr);
    sb::StackParams params;
    sec::AnyStack stack = trb->make(params);
    for (std::uint64_t v = 1; v <= 8; ++v) stack.push(v);
    for (int v = 8; v >= 1; --v) {
        EXPECT_EQ(stack.pop(), static_cast<std::uint64_t>(v));
    }
}

TEST(AnyStack, StatsSurfaceOnlyWhereTheConcreteTypeHasThem) {
    auto& reg = sb::AlgorithmRegistry::instance();
    sb::StackParams params;
    params.threads = 2;
    sec::Config cfg;
    cfg.max_threads = sb::tid_bound(2);
    cfg.collect_stats = true;
    params.config = &cfg;
    sec::AnyStack sec_stack = reg.find("SEC")->make(params);
    EXPECT_TRUE(sec_stack.has_stats());
    sec::AnyStack trb_stack = reg.find("TRB")->make(sb::StackParams{});
    EXPECT_FALSE(trb_stack.has_stats());
}

TEST(Runner, ZeroThreadsIsGuardedNotDividedBy) {
    const sb::RunConfig cfg = [] {
        sb::RunConfig c;
        c.threads = 0;
        c.prefill = 100;  // would previously divide by zero
        c.duration = std::chrono::milliseconds(1);
        return c;
    }();
    const sb::RunResult direct = sb::run_throughput(
        [] { return sec::make_stack<sec::TreiberStack<std::uint64_t>>(8); },
        cfg);
    EXPECT_EQ(direct.total_ops, 0u);
    EXPECT_EQ(direct.mops, 0.0);

    const sb::RunResult erased = sb::run_throughput_any(
        [] {
            return sb::AlgorithmRegistry::instance().find("TRB")->make(
                sb::StackParams{});
        },
        cfg);
    EXPECT_EQ(erased.total_ops, 0u);
}

// The statically-typed compatibility path (bench_common.hpp) fills the same
// table schema as the registry-driven series.
TEST(BenchCommon, StaticRunSeriesMatchesTableSchema) {
    sb::EnvConfig env;
    env.threads = {2};
    env.duration_ms = 10;
    env.runs = 1;
    env.prefill = 64;
    sb::Table table("compat", sb::algorithm_columns());
    sb::run_series<sec::TreiberStack<sb::Value>>(table, env, sec::kUpdateHeavy,
                                                 "TRB");
    EXPECT_EQ(table.name(), "compat");
}

TEST(AnyRunner, ThroughputRunsThroughTheErasedPath) {
    sb::RunConfig cfg;
    cfg.threads = 2;
    cfg.duration = std::chrono::milliseconds(20);
    cfg.prefill = 128;
    const sb::RunResult r = sb::run_throughput_any(
        [] {
            sb::StackParams params;
            params.threads = 2;
            return sb::AlgorithmRegistry::instance().find("SEC")->make(params);
        },
        cfg);
    EXPECT_GT(r.total_ops, 0u);
}

TEST(ScenarioRegistry, ListsAtLeastEightScenarios) {
    auto& reg = sb::ScenarioRegistry::instance();
    EXPECT_GE(reg.all().size(), 8u);
    for (const char* name :
         {"fig2", "fig3", "fig4", "table1", "latency", "reclamation",
          "sweep", "tuning", "ablation_backoff", "ablation_mapping",
          "ablation_pool", "sharding", "micro"}) {
        EXPECT_NE(reg.find(name), nullptr) << name;
    }
}

TEST(ScenarioRegistry, UnknownScenarioReturnsNonZero) {
    sb::ScenarioContext ctx;
    ctx.env = sb::EnvConfig::load();
    ctx.algos = sb::AlgorithmRegistry::instance().default_set();
    EXPECT_EQ(sb::run_scenario("no_such_scenario", ctx), 2);
}

// ---- the sweep engine (workload/sweep.hpp) ---------------------------------

TEST(SweepSpec, ParsesRangesValuesAndSteps) {
    const auto spec = sb::SweepSpec::parse("agg=1:3,backoff=0:256");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->aggs, (std::vector<std::size_t>{1, 2, 3}));
    // Backoff ranges double from the 64ns quantum; lo==0 adds the
    // backoff-disabled point.
    EXPECT_EQ(spec->backoffs, (std::vector<std::uint64_t>{0, 64, 128, 256}));
    EXPECT_EQ(spec->combinations(), 12u);

    const auto stepped = sb::SweepSpec::parse("backoff=0:4096:1024,agg=2");
    ASSERT_TRUE(stepped.has_value());
    EXPECT_EQ(stepped->aggs, (std::vector<std::size_t>{2}));
    EXPECT_EQ(stepped->backoffs,
              (std::vector<std::uint64_t>{0, 1024, 2048, 3072, 4096}));

    // Omitted knobs pin to the Config defaults.
    const sec::Config defaults;
    const auto agg_only = sb::SweepSpec::parse("agg=1:2");
    ASSERT_TRUE(agg_only.has_value());
    EXPECT_EQ(agg_only->backoffs,
              (std::vector<std::uint64_t>{defaults.freezer_backoff_ns}));
}

TEST(SweepSpec, RejectsMalformedSpecs) {
    std::string error;
    EXPECT_FALSE(sb::SweepSpec::parse("agg=0:2", &error).has_value());
    EXPECT_NE(error.find("agg"), std::string::npos);
    EXPECT_FALSE(sb::SweepSpec::parse("agg=9", &error).has_value());
    EXPECT_FALSE(sb::SweepSpec::parse("agg=3:1", &error).has_value());
    EXPECT_FALSE(sb::SweepSpec::parse("turbo=1:2", &error).has_value());
    EXPECT_NE(error.find("turbo"), std::string::npos);
    EXPECT_FALSE(sb::SweepSpec::parse("agg", &error).has_value());
    EXPECT_FALSE(sb::SweepSpec::parse("backoff=0:100:0", &error).has_value());
    // Hostile ranges must error out, not hang, wrap, or exhaust memory.
    EXPECT_FALSE(sb::SweepSpec::parse("backoff=64:18446744073709551615",
                                      &error)
                     .has_value());
    EXPECT_FALSE(
        sb::SweepSpec::parse("backoff=0:18446744073709551615:1", &error)
            .has_value());
    EXPECT_FALSE(sb::SweepSpec::parse("agg=1:4000000000", &error).has_value());
    // Degenerate but legal: a step larger than the range yields just lo.
    const auto one = sb::SweepSpec::parse("backoff=5:5:10");
    ASSERT_TRUE(one.has_value());
    EXPECT_EQ(one->backoffs, (std::vector<std::uint64_t>{5}));
    // Duplicate knobs would silently duplicate or drop grid points.
    EXPECT_FALSE(sb::SweepSpec::parse("agg=1:2,agg=1:2", &error).has_value());
    EXPECT_FALSE(
        sb::SweepSpec::parse("backoff=0:64,backoff=128", &error).has_value());
}

// Regression: '+'-unioned segments used to pass through unsorted and with
// duplicates, inflating the cross-product and emitting duplicate CSV rows
// (one column name, several rows). The union must come back sorted and
// deduped, and out-of-range values inside a list must still be rejected.
TEST(SweepSpec, ValueListsAreSortedDedupedAndRangeChecked) {
    // Duplicates and reversed order across overlapping segments.
    const auto aggs = sb::SweepSpec::parse("agg=3+1+2:3+1");
    ASSERT_TRUE(aggs.has_value());
    EXPECT_EQ(aggs->aggs, (std::vector<std::size_t>{1, 2, 3}));

    const auto backoffs = sb::SweepSpec::parse("backoff=4096+0:64+64");
    ASSERT_TRUE(backoffs.has_value());
    EXPECT_EQ(backoffs->backoffs,
              (std::vector<std::uint64_t>{0, 64, 4096}));

    // Dedup means the cross-product (and so the CSV column set) shrinks to
    // the distinct points.
    const auto both = sb::SweepSpec::parse("agg=2+2+2,backoff=0+0");
    ASSERT_TRUE(both.has_value());
    EXPECT_EQ(both->combinations(), 1u);

    // Out-of-range and malformed members of a list still fail the parse.
    std::string error;
    EXPECT_FALSE(sb::SweepSpec::parse("agg=1+9", &error).has_value());
    EXPECT_NE(error.find("agg"), std::string::npos);
    EXPECT_FALSE(sb::SweepSpec::parse("agg=1+", &error).has_value());
    EXPECT_FALSE(sb::SweepSpec::parse("agg=+1", &error).has_value());
    EXPECT_FALSE(
        sb::SweepSpec::parse("backoff=0+281474976710656", &error).has_value());
}

// Golden schema for the sweep's long-form CSV: header row, then exactly
// `table,key,column,value` with every (agg, backoff) combination present as
// an `agg<A>_bo<B>` column plus the sweep_best summary rows.
TEST(SweepEngine, CsvMatchesTheGoldenSchema) {
    const auto spec = sb::SweepSpec::parse("agg=1:2,backoff=0:64");
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->combinations(), 4u);

    sb::ScenarioContext ctx;
    ctx.smoke = true;
    ctx.env.duration_ms = 5;
    ctx.env.runs = 1;
    ctx.env.threads = {2};
    ctx.env.prefill = 64;
    ctx.algos = {sb::AlgorithmRegistry::instance().find("SEC")};
    std::FILE* csv = std::tmpfile();
    ASSERT_NE(csv, nullptr);
    sb::Table::write_csv_header(csv);
    ctx.csv = csv;

    EXPECT_EQ(sb::run_sweep(ctx, *spec), 0);

    std::rewind(csv);
    char line[256];
    ASSERT_NE(std::fgets(line, sizeof line, csv), nullptr);
    EXPECT_EQ(std::string(line), "table,key,column,value\n");
    std::set<std::string> sweep_columns;
    std::set<std::string> tables;
    while (std::fgets(line, sizeof line, csv) != nullptr) {
        const std::string row(line);
        // table,key,column,value — 3 commas, numeric value field.
        const auto c1 = row.find(',');
        const auto c2 = row.find(',', c1 + 1);
        const auto c3 = row.find(',', c2 + 1);
        ASSERT_NE(c3, std::string::npos) << row;
        const std::string table = row.substr(0, c1);
        const std::string key = row.substr(c1 + 1, c2 - c1 - 1);
        const std::string column = row.substr(c2 + 1, c3 - c2 - 1);
        tables.insert(table);
        EXPECT_TRUE(table == "sweep" || table == "sweep_best") << row;
        EXPECT_EQ(key, "2") << row;  // the only thread count in the grid
        if (table == "sweep") sweep_columns.insert(column);
        const std::string value = row.substr(c3 + 1);
        EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(value[0])))
            << row;
    }
    std::fclose(csv);
    EXPECT_EQ(tables.size(), 2u);
    EXPECT_EQ(sweep_columns,
              (std::set<std::string>{"agg1_bo0", "agg1_bo64", "agg2_bo0",
                                     "agg2_bo64"}));
}

// Regression: two scenarios run back-to-back in ONE invocation used to
// reseed every worker identically — phase_seed was a pure function of
// (seed, worker, run, salt), so a multi-scenario --csv run replayed the
// exact same op streams in every scenario. run_scenario now advances the
// process-wide seed stream after each scenario body: streams differ across
// scenario positions, deterministically (a --seed replay of the same
// invocation reproduces the same per-position streams), and the first
// scenario keeps the historical stream-0 seeding.
TEST(ScenarioRegistry, BackToBackScenariosDrawFromIndependentSeedStreams) {
    // A no-op scenario so the test drives run_scenario itself, not a
    // benchmark body.
    sb::ScenarioRegistry::instance().add(
        {"noop_seed_probe", "seed-stream regression probe",
         [](const sb::ScenarioContext&) { return 0; }});
    sb::ScenarioContext ctx;
    ctx.env.threads = {1};
    ctx.env.duration_ms = 1;
    ctx.env.runs = 1;

    const std::uint64_t stream0 = sb::seed_stream();
    const std::uint64_t first = sb::phase_seed(42, 0, 0);
    ASSERT_EQ(sb::run_scenario("noop_seed_probe", ctx), 0);
    const std::uint64_t second = sb::phase_seed(42, 0, 0);
    ASSERT_EQ(sb::run_scenario("noop_seed_probe", ctx), 0);
    const std::uint64_t third = sb::phase_seed(42, 0, 0);

    // Each scenario position gets its own stream...
    EXPECT_EQ(sb::seed_stream(), stream0 + 2);
    EXPECT_NE(first, second);
    EXPECT_NE(second, third);
    EXPECT_NE(first, third);
    // ...and within one position the seeding stays a pure function of
    // (seed, worker, run, salt) — the --seed replay contract.
    EXPECT_EQ(third, sb::phase_seed(42, 0, 0));
    EXPECT_NE(sb::phase_seed(42, 0, 0), sb::phase_seed(42, 1, 0));
}

// A scenario end-to-end through the registry, tiny budget (the full
// `secbench all --smoke` pass is a ctest of the binary itself).
TEST(ScenarioRegistry, Fig2RunsOnATinyBudget) {
    sb::ScenarioContext ctx;
    ctx.smoke = true;
    ctx.env.duration_ms = 10;
    ctx.env.runs = 1;
    ctx.env.threads = {2};
    ctx.env.prefill = 64;
    ctx.algos = {sb::AlgorithmRegistry::instance().find("SEC"),
                 sb::AlgorithmRegistry::instance().find("TRB")};
    EXPECT_EQ(sb::run_scenario("fig2", ctx), 0);
}
