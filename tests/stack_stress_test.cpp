// stack_stress_test.cpp — multi-threaded conservation invariants for every
// container: under balanced churn at 2/4/8 threads, every popped value was
// pushed exactly once (no loss, no duplication, no invention). Tagging and
// the conservation oracle live in container_checkers.hpp, shared with the
// shape-conformance suite. Designed to run clean under -DSEC_SANITIZE=thread.
#include <gtest/gtest.h>

#include <cstdint>

#include "container_checkers.hpp"
#include "sec.hpp"

namespace {

namespace st = sec::testing;
using st::Value;

template <class S>
void churn(unsigned threads, std::uint32_t ops_per_thread) {
    auto stack = sec::make_stack<S>(threads + 8);
    st::expect_conserved(st::churn(*stack, threads, ops_per_thread));
}

template <class S>
class StackStressTest : public ::testing::Test {};

// The six LIFO competitors on their default (EBR) reclaimer, the FIFO trio
// (SEC_Q, MS, FCQ), plus the hazard-pointer variants of the CAS-spine
// structures — HP is the scheme whose per-node protect/validate traversal
// most needs the TSan soak (MS dequeue holds two hazard slots at once).
using StackTypes =
    ::testing::Types<sec::CcStack<Value>, sec::EbStack<Value>,
                     sec::FcStack<Value>, sec::SecStack<Value>,
                     sec::TreiberStack<Value>, sec::TsiStack<Value>,
                     sec::SecQueue<Value>, sec::MsQueue<Value>,
                     sec::FcQueue<Value>,
                     sec::TreiberStack<Value, sec::reclaim::HazardDomain>,
                     sec::EbStack<Value, sec::reclaim::HazardDomain>,
                     sec::SecStack<Value, sec::reclaim::HazardDomain>,
                     sec::SecQueue<Value, sec::reclaim::HazardDomain>,
                     sec::MsQueue<Value, sec::reclaim::HazardDomain>>;
TYPED_TEST_SUITE(StackStressTest, StackTypes);

TYPED_TEST(StackStressTest, BalancedChurn2Threads) {
    churn<TypeParam>(2, 40000);
}

TYPED_TEST(StackStressTest, BalancedChurn4Threads) {
    churn<TypeParam>(4, 20000);
}

TYPED_TEST(StackStressTest, BalancedChurn8Threads) {
    churn<TypeParam>(8, 10000);
}

}  // namespace
