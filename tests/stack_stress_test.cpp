// stack_stress_test.cpp — multi-threaded invariants for all six stacks:
// under balanced churn at 2/4/8 threads, every popped value was pushed
// exactly once (no loss, no duplication, no invention). Values are tagged
// (thread << 32 | seq) so provenance is checkable after the fact. Designed
// to run clean under -DSEC_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "sec.hpp"

namespace {

using Value = std::uint64_t;

constexpr Value tag(unsigned thread, std::uint32_t seq) {
    return (static_cast<Value>(thread + 1) << 32) | seq;
}

template <class S>
void churn(unsigned threads, std::uint32_t ops_per_thread) {
    auto stack = sec::make_stack<S>(threads + 8);

    std::vector<std::vector<Value>> pushed(threads);
    std::vector<std::vector<Value>> popped(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            sec::Xoshiro256 rng((t + 1) * 0x9E3779B97F4A7C15ull);
            std::uint32_t seq = 0;
            auto& mine_pushed = pushed[t];
            auto& mine_popped = popped[t];
            mine_pushed.reserve(ops_per_thread);
            mine_popped.reserve(ops_per_thread);
            for (std::uint32_t i = 0; i < ops_per_thread; ++i) {
                if (rng.next_below(2) == 0) {
                    const Value v = tag(t, seq++);
                    stack->push(v);
                    mine_pushed.push_back(v);
                } else if (auto v = stack->pop()) {
                    mine_popped.push_back(*v);
                }
            }
        });
    }
    for (auto& w : workers) w.join();

    std::vector<Value> all_pushed;
    std::vector<Value> all_popped;
    for (unsigned t = 0; t < threads; ++t) {
        all_pushed.insert(all_pushed.end(), pushed[t].begin(), pushed[t].end());
        all_popped.insert(all_popped.end(), popped[t].begin(), popped[t].end());
    }
    // Drain what is left; together with the popped values this must be
    // exactly the pushed multiset.
    while (auto v = stack->pop()) all_popped.push_back(*v);

    std::sort(all_pushed.begin(), all_pushed.end());
    std::sort(all_popped.begin(), all_popped.end());
    ASSERT_EQ(all_popped.size(), all_pushed.size());
    EXPECT_EQ(all_popped, all_pushed)
        << "value lost, duplicated, or invented under churn";
}

template <class S>
class StackStressTest : public ::testing::Test {};

// The six competitors on their default (EBR) reclaimer, plus the
// hazard-pointer variants of the CAS-spine stacks — HP is the scheme whose
// per-node protect/validate traversal most needs the TSan soak.
using StackTypes =
    ::testing::Types<sec::CcStack<Value>, sec::EbStack<Value>,
                     sec::FcStack<Value>, sec::SecStack<Value>,
                     sec::TreiberStack<Value>, sec::TsiStack<Value>,
                     sec::TreiberStack<Value, sec::reclaim::HazardDomain>,
                     sec::EbStack<Value, sec::reclaim::HazardDomain>,
                     sec::SecStack<Value, sec::reclaim::HazardDomain>>;
TYPED_TEST_SUITE(StackStressTest, StackTypes);

TYPED_TEST(StackStressTest, BalancedChurn2Threads) {
    churn<TypeParam>(2, 40000);
}

TYPED_TEST(StackStressTest, BalancedChurn4Threads) {
    churn<TypeParam>(4, 20000);
}

TYPED_TEST(StackStressTest, BalancedChurn8Threads) {
    churn<TypeParam>(8, 10000);
}

}  // namespace
